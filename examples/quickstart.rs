//! Quickstart: parse a program with jumps, slice it, and see why the
//! conventional algorithm gets it wrong.
//!
//! Run with `cargo run --example quickstart`.

use jumpslice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 3-a: a goto-structured summation loop.
    let program = parse(
        "sum = 0;
         positives = 0;
         L3: if (eof()) goto L14;
         read(x);
         if (x > 0) goto L8;
         sum = sum + f1(x);
         goto L13;
         L8: positives = positives + 1;
         if (x % 2 != 0) goto L12;
         sum = sum + f2(x);
         goto L13;
         L12: sum = sum + f3(x);
         L13: goto L3;
         L14: write(sum);
         write(positives);",
    )?;

    // All analyses (CFG, postdominators, PDG, lexical successor tree) are
    // bundled in one pass.
    let analysis = Analysis::new(&program);

    // Slice with respect to `positives` at line 15 — the write statement.
    let criterion = Criterion::at_stmt(program.at_line(15));

    println!("=== conventional slice (Figure 3-b — WRONG) ===");
    let conventional = conventional_slice(&analysis, &criterion);
    println!("{}", conventional.render(&program));

    println!("=== Agrawal's slice (Figure 3-c — correct) ===");
    let slice = agrawal_slice(&analysis, &criterion);
    println!("{}", slice.render(&program));
    println!(
        "kept lines {:?} using {} postdominator-tree traversal(s)",
        slice.lines(&program),
        slice.traversals
    );

    // The interpreter proves the point: the correct slice replays the
    // original execution exactly (projected onto its statements), the
    // conventional one does not.
    let inputs = Input::family(8);
    assert!(check_projection(&program, &slice.stmts, &slice.moved_labels, &inputs).is_ok());
    assert!(check_projection(
        &program,
        &conventional.stmts,
        &conventional.moved_labels,
        &inputs
    )
    .is_err());
    println!("oracle: correct slice replays the program; conventional slice diverges ✓");
    Ok(())
}
