//! Reproduces every slicing figure of the paper, printing each program and
//! the slices the relevant algorithms compute, annotated with what the
//! paper's figure shows.
//!
//! Run with `cargo run --example paper_figures`.

use jumpslice::core::corpus;
use jumpslice::prelude::*;

fn banner(title: &str) {
    println!("\n{}\n{}\n", "=".repeat(72), title);
}

fn show(label: &str, p: &Program, s: &Slice) {
    println!("--- {label}: lines {:?}", s.lines(p));
    println!("{}", s.render(p));
}

fn main() {
    banner("Figure 1: jump-free program; the conventional algorithm suffices");
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(12));
    println!("{}", print_program(&p));
    show(
        "conventional (Figure 1-b)",
        &p,
        &conventional_slice(&a, &crit),
    );

    banner("Figure 3: goto version; conventional vs Figure 7");
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    println!("{}", print_program(&p));
    show(
        "conventional (Figure 3-b, WRONG)",
        &p,
        &conventional_slice(&a, &crit),
    );
    let s = agrawal_slice(&a, &crit);
    show("Figure 7 algorithm (Figure 3-c)", &p, &s);
    println!("traversals: {}", s.traversals);

    banner("Figure 5: continue version");
    let p = corpus::fig5();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(14));
    println!("{}", print_program(&p));
    show(
        "conventional (Figure 5-b, WRONG)",
        &p,
        &conventional_slice(&a, &crit),
    );
    show(
        "Figure 7 algorithm (Figure 5-c)",
        &p,
        &agrawal_slice(&a, &crit),
    );

    banner("Figure 8: direct-goto version; closure pulls in predicate 9");
    let p = corpus::fig8();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    println!("{}", print_program(&p));
    show(
        "Figure 7 algorithm (Figure 8-c)",
        &p,
        &agrawal_slice(&a, &crit),
    );

    banner("Figure 10: unstructured program needing TWO traversals");
    let p = corpus::fig10();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(9));
    println!("{}", print_program(&p));
    let s = agrawal_slice(&a, &crit);
    show("Figure 7 algorithm (Figure 10-b)", &p, &s);
    println!(
        "traversals: {} (node 4 only joins in the second pass)",
        s.traversals
    );

    banner("Figure 14: switch program separating Figures 12 and 13");
    let p = corpus::fig14();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(9));
    println!("{}", print_program(&p));
    show(
        "Figure 12, precise (Figure 14-b)",
        &p,
        &structured_slice(&a, &crit),
    );
    show(
        "Figure 13, conservative (Figure 14-c)",
        &p,
        &conservative_slice(&a, &crit),
    );

    banner("Figure 16: Gallagher's algorithm is unsound here");
    let p = corpus::fig16();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(10));
    println!("{}", print_program(&p));
    show(
        "Gallagher (Figure 16-b, WRONG)",
        &p,
        &gallagher_slice(&a, &crit),
    );
    show(
        "Figure 7 algorithm (Figure 16-c)",
        &p,
        &agrawal_slice(&a, &crit),
    );

    banner("Related work on Figures 3/5/8 (§5)");
    let p = corpus::fig5();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(14));
    show(
        "Lyle on Figure 5 (keeps both continues)",
        &p,
        &lyle_slice(&a, &crit),
    );
    let p = corpus::fig8();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    show(
        "Jiang–Zhou–Robson on Figure 8 (misses 11 and 13)",
        &p,
        &jzr_slice(&a, &crit),
    );
    show(
        "Ball–Horwitz on Figure 8 (equals Figure 7)",
        &p,
        &ball_horwitz_slice(&a, &crit),
    );
}
