//! Beyond subprogram slices: the two §5 alternatives this workspace also
//! implements.
//!
//! 1. **Choi–Ferrante synthesized slices** — executable slices built from
//!    *fresh* jump statements instead of the program's own, which can be
//!    smaller than any subprogram slice (paper §5).
//! 2. **Dynamic slicing** — the paper's §1 debugging motivation ([1]): keep
//!    only what affected the criterion on *this* run.
//!
//! Run with `cargo run --example beyond_subprograms`.

use jumpslice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = corpus::fig3();
    let analysis = Analysis::new(&program);
    let criterion = Criterion::at_stmt(program.at_line(15));

    println!("Original (Figure 3-a):\n{}", print_program(&program));

    // The paper's subprogram slice.
    let fig7 = agrawal_slice(&analysis, &criterion);
    println!(
        "Figure 7 subprogram slice — {} statements, lines {:?}:\n{}",
        fig7.len(),
        fig7.lines(&program),
        fig7.render(&program)
    );

    // Choi–Ferrante: same behavior, fresh jumps, fewer original statements.
    let synth = synthesize_slice(&analysis, &criterion)?;
    println!(
        "Choi–Ferrante synthesized slice — {} original statements (vs {}), flat form:\n{}",
        synth.stmts.len(),
        fig7.len(),
        print_program(&synth.program)
    );
    assert!(synth.stmts.len() < fig7.len());

    // Dynamic slicing: one concrete run, often smaller still.
    let input = Input {
        seed: 3,
        eof_after: 4,
        ..Input::default()
    };
    let dynamic = dynamic_slice(&program, &input, &DynCriterion::last(program.at_line(15)));
    let mut dyn_lines: Vec<usize> = dynamic.stmts.iter().map(|s| program.line_of(s)).collect();
    dyn_lines.sort_unstable();
    println!(
        "Dynamic slice of the same write on one run (seed 3): lines {dyn_lines:?} \
         ({} events collapsed onto {} statements)",
        dynamic.events.len(),
        dynamic.stmts.len()
    );

    // The containment chain the theory promises.
    let conventional = conventional_slice(&analysis, &criterion);
    assert!(dynamic.stmts.is_subset(&conventional.stmts));
    assert!(conventional.subset_of(&fig7));
    println!("\ncontainment verified: dynamic ⊆ conventional ⊆ Figure 7 ✓");
    Ok(())
}
