//! Compares all seven slicing algorithms over generated corpora: average
//! slice size (precision), agreement with Ball–Horwitz, and oracle-checked
//! soundness rate. This is the "who wins, by how much" view that the
//! benches quantify in time.
//!
//! Run with `cargo run --release --example algorithm_comparison`.

use jumpslice::prelude::*;
use jumpslice_lang::StmtKind;

type Algo = (&'static str, fn(&Analysis<'_>, &Criterion) -> Slice);

const ALGOS: &[Algo] = &[
    ("conventional", conventional_slice),
    ("fig7-agrawal", agrawal_slice),
    ("fig12-structured", structured_slice),
    ("fig13-conservative", conservative_slice),
    ("ball-horwitz", ball_horwitz_slice),
    ("lyle", lyle_slice),
    ("gallagher", gallagher_slice),
    ("jzr", jzr_slice),
];

struct Row {
    name: &'static str,
    total_size: usize,
    bh_equal: usize,
    sound: usize,
    cases: usize,
}

fn criteria(p: &Program, a: &Analysis<'_>) -> Vec<StmtId> {
    p.stmt_ids()
        .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && a.is_live(s))
        .collect()
}

fn run_corpus(label: &str, programs: &[Program], structured_only_algos: bool) {
    let mut rows: Vec<Row> = ALGOS
        .iter()
        .map(|&(name, _)| Row {
            name,
            total_size: 0,
            bh_equal: 0,
            sound: 0,
            cases: 0,
        })
        .collect();

    let inputs = Input::family(4);
    for p in programs {
        let a = Analysis::new(p);
        for c in criteria(p, &a) {
            let crit = Criterion::at_stmt(c);
            let bh = ball_horwitz_slice(&a, &crit);
            for (row, &(name, f)) in rows.iter_mut().zip(ALGOS) {
                if !structured_only_algos
                    && (name == "fig12-structured") // only defined for structured programs
                    && !is_structured(&a)
                {
                    continue;
                }
                let s = f(&a, &crit);
                row.cases += 1;
                row.total_size += s.len();
                row.bh_equal += usize::from(s.stmts == bh.stmts);
                row.sound +=
                    usize::from(check_projection(p, &s.stmts, &s.moved_labels, &inputs).is_ok());
            }
        }
    }

    println!("\n== {label} ==");
    println!(
        "{:<20} {:>10} {:>12} {:>10}",
        "algorithm", "avg size", "== BH", "sound"
    );
    for r in rows {
        if r.cases == 0 {
            continue;
        }
        println!(
            "{:<20} {:>10.2} {:>11.0}% {:>9.0}%",
            r.name,
            r.total_size as f64 / r.cases as f64,
            100.0 * r.bh_equal as f64 / r.cases as f64,
            100.0 * r.sound as f64 / r.cases as f64,
        );
    }
}

fn main() {
    let structured: Vec<Program> = (0..30)
        .map(|seed| gen_structured(&GenConfig::sized(seed, 60)))
        .collect();
    run_corpus(
        "structured corpus (30 programs, ~60 stmts)",
        &structured,
        true,
    );

    let unstructured: Vec<Program> = (0..30)
        .map(|seed| {
            gen_unstructured(&GenConfig {
                jump_density: 0.3,
                ..GenConfig::sized(seed, 40)
            })
        })
        .collect();
    run_corpus(
        "unstructured goto corpus (30 programs, ~40 stmts)",
        &unstructured,
        false,
    );

    println!(
        "\nReading: lower avg size = more precise. `== BH` is exact agreement with \
         Ball–Horwitz. `sound` = slices that replay the original execution \
         (conventional/gallagher/jzr are expected to fail on jump-heavy programs)."
    );
}
