//! A debugging scenario — the paper's §1 motivation ("program slices have
//! applications in ... debugging").
//!
//! A report comes in: the `failures` counter printed at the end of a batch
//! job is wrong. The program is a few dozen lines of early-exit-heavy code;
//! slicing on the bad output throws away everything that cannot have
//! contributed, and doing it with jump-aware slicing keeps the early exits
//! that a conventional slicer would silently drop.
//!
//! Run with `cargo run --example debugging_session`.

use jumpslice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(
        "total = 0;
         failures = 0;
         retries = 0;
         while (!eof()) {
           read(status);
           total = total + 1;
           if (status == 0)
             continue;
           if (status < 0) {
             retries = retries + 1;
             continue;
           }
           failures = failures + 1;
         }
         write(total);
         write(retries);
         write(failures);",
    )?;
    let analysis = Analysis::new(&program);

    // The bad observable: write(failures), the last statement.
    let bad_output = program.at_line(15);
    assert_eq!(
        program.line_of(bad_output),
        15,
        "write(failures) is line 15 in lexical numbering"
    );
    let criterion = Criterion::at_stmt(bad_output);

    println!("Full program ({} statements):", program.len());
    println!("{}", print_program(&program));

    let slice = agrawal_slice(&analysis, &criterion);
    println!(
        "Slice on the bad `failures` output — {} of {} statements left to inspect:",
        slice.len(),
        program.len()
    );
    println!("{}", slice.render(&program));

    // The slice keeps the `continue` on line 8 — on a zero status, control
    // must skip the failure count. A conventional slicer drops it, which
    // would send the debugger hunting through a residual program that
    // counts every record as a failure.
    let continue_stmt = program.at_line(8);
    assert!(slice.contains(continue_stmt));
    let conv = conventional_slice(&analysis, &criterion);
    assert!(!conv.contains(continue_stmt));
    println!("jump-aware slice keeps the early `continue` — the conventional one loses it\n");

    // `retries` bookkeeping is provably irrelevant to the bad output and
    // disappears (the guarding if stays: its continue reroutes control).
    assert!(!slice.contains(program.at_line(10)));
    println!(
        "irrelevant bookkeeping (retries) eliminated: inspect {} statements instead of {}",
        slice.len(),
        program.len()
    );

    // And the residual program really does reproduce the failure behavior:
    for input in Input::family(5) {
        let full = run(&program, &input);
        let masked = run_masked(
            &program,
            &input,
            &|s| slice.contains(s),
            &slice.moved_labels,
        )?;
        // write(failures) is the only write in the slice.
        assert_eq!(full.outputs.last(), masked.outputs.last());
    }
    println!("residual program reproduces the buggy output on every test input ✓");
    Ok(())
}
