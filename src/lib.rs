//! **jumpslice** — program slicing in the presence of jump statements.
//!
//! A complete implementation of Hiralal Agrawal, *"On Slicing Programs with
//! Jump Statements"*, PLDI 1994, together with every substrate it needs: a
//! mini-C front end, control-flow graphs, dominator/postdominator trees,
//! dataflow analyses, program dependence graphs, the lexical successor
//! tree, a deterministic interpreter with a slice-correctness oracle, and
//! random program generators for property testing and benchmarking.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and offers a [`prelude`] for the common path.
//!
//! # Quick start
//!
//! ```
//! use jumpslice::prelude::*;
//!
//! let program = parse(
//!     "positives = 0;
//!      L3: if (eof()) goto L14;
//!      read(x);
//!      if (x > 0) goto L8;
//!      goto L3;
//!      L8: positives = positives + 1;
//!      goto L3;
//!      L14: write(positives);",
//! )?;
//! let analysis = Analysis::new(&program);
//! let slice = agrawal_slice(&analysis, &Criterion::at_stmt(program.at_line(8)));
//! println!("{}", slice.render(&program));
//! assert!(slice.lines(&program).contains(&7), "the goto L3 guarding the loop");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Batch slicing
//!
//! Many criteria over one program share a single lazily-cached
//! [`Analysis`](prelude::Analysis) through
//! [`BatchSlicer`](prelude::BatchSlicer):
//!
//! ```
//! use jumpslice::prelude::*;
//!
//! let program = parse("read(x); y = x + 1; write(y); write(x);")?;
//! let analysis = Analysis::new(&program);
//! let slices = BatchSlicer::new(&analysis).slice_all_writes(agrawal_slice);
//! assert_eq!(slices.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Observability: trace events, phase timers, counters, JSON emission.
pub use jumpslice_obs as obs;

/// The mini-C language: lexer, parser, AST, builder, printer.
pub use jumpslice_lang as lang;

/// Directed graphs, dominator trees, SCCs.
pub use jumpslice_graph as graph;

/// Control-flow graph construction.
pub use jumpslice_cfg as cfg;

/// Reaching definitions, data dependence, live variables.
pub use jumpslice_dataflow as dataflow;

/// Control dependence and program dependence graphs.
pub use jumpslice_pdg as pdg;

/// The slicing algorithms (the paper's contribution) and baselines.
pub use jumpslice_core as core;

/// The deterministic interpreter and the projection oracle.
pub use jumpslice_interp as interp;

/// Random program generators.
pub use jumpslice_progen as progen;

/// Dynamic slicing over execution trajectories.
pub use jumpslice_dynslice as dynslice;

/// Incremental edit-and-reslice sessions.
pub use jumpslice_incr as incr;

/// Differential fuzzing of the slicers against the projection oracle.
pub use jumpslice_difftest as difftest;

/// One-import access to the common workflow: parse → analyze → slice →
/// render/check.
pub mod prelude {
    pub use jumpslice_core::baselines::{
        ball_horwitz_slice, gallagher_slice, jzr_slice, lyle_slice,
    };
    pub use jumpslice_core::synthesize::synthesize_slice;
    pub use jumpslice_core::{
        agrawal_slice, agrawal_slice_traced, chop, chop_executable, conservative_slice,
        conventional_slice, corpus, forward_slice, is_structured, structured_slice, Analysis,
        AnalysisStats, BatchRunStats, BatchSlicer, Criterion, LexSuccTree, Provenance, Slice,
        SliceFn, Why,
    };
    pub use jumpslice_dataflow::StmtSet;
    pub use jumpslice_difftest::{
        run_difftest, run_incrtest, DiffConfig, DiffReport, IncrConfig, IncrReport,
    };
    pub use jumpslice_dynslice::{dynamic_slice, dynamic_slice_of_trace, DynCriterion};
    pub use jumpslice_incr::{
        apply_edit, ApplyPath, Edit, EditExpr, EditSession, JumpKind, NewStmt,
    };
    pub use jumpslice_interp::{
        check_projection, run, run_masked, ExecError, Input, ProjectionError, ProjectionReport,
    };
    pub use jumpslice_lang::{parse, print_program, print_slice, Program, ProgramBuilder, StmtId};
    pub use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};
}
