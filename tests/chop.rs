//! Forward slices and chops: lattice containments on generated corpora
//! plus a pinned paper-figure case.
//!
//! The load-bearing invariant is the definitional one: a chop from
//! `source` to `sink` never strays outside the backward slice of the sink
//! or the forward slice of the source, and the executable variant stays
//! inside the jump-repaired (Figure 7) backward slice while containing
//! the plain chop.

use jumpslice::prelude::*;
use jumpslice_core::corpus;
use jumpslice_lang::StmtId;

/// Statement pairs worth chopping: every definition or read as a source,
/// the last write as the sink.
fn pairs(p: &Program) -> Vec<(StmtId, StmtId)> {
    let sink = p
        .stmt_ids()
        .filter(|&s| p.uses(s).len() == 1 && p.defs(s).is_none() && !p.stmt(s).kind.is_jump())
        .last();
    let Some(sink) = sink else { return Vec::new() };
    p.stmt_ids()
        .filter(|&s| p.defs(s).is_some())
        .take(12)
        .map(|src| (src, sink))
        .collect()
}

fn assert_chop_containments(p: &Program, label: &str) {
    let a = Analysis::new(p);
    for (source, sink) in pairs(p) {
        let fwd = forward_slice(&a, source);
        let bwd = conventional_slice(&a, &Criterion::at_stmt(sink));
        let c = chop(&a, source, sink);
        let ce = chop_executable(&a, source, sink);
        let repaired = agrawal_slice(&a, &Criterion::at_stmt(sink));

        for s in c.stmts.iter() {
            assert!(
                fwd.stmts.contains(s),
                "{label}: chop strays outside forward({source:?})"
            );
            assert!(
                bwd.stmts.contains(s),
                "{label}: chop strays outside backward({sink:?})"
            );
            assert!(
                ce.stmts.contains(s),
                "{label}: executable chop must contain the plain chop"
            );
        }
        for s in ce.stmts.iter() {
            assert!(
                repaired.stmts.contains(s),
                "{label}: executable chop strays outside the repaired backward slice"
            );
        }
        // Endpoint membership is symmetric: the source joins the chop
        // exactly when it feeds the sink, the sink exactly when it is fed.
        assert_eq!(
            c.stmts.contains(source),
            bwd.stmts.contains(source),
            "{label}: source membership"
        );
        assert_eq!(
            c.stmts.contains(sink),
            fwd.stmts.contains(sink),
            "{label}: sink membership"
        );
    }
}

#[test]
fn chop_containments_on_paper_corpus() {
    for (name, p, _) in corpus::all() {
        assert_chop_containments(&p, name);
    }
}

#[test]
fn chop_containments_on_generated_families() {
    for seed in 0..30u64 {
        let structured = gen_structured(&GenConfig::sized(seed, 25));
        assert_chop_containments(&structured, "structured");
        let cfg = GenConfig {
            jump_density: 0.3,
            ..GenConfig::sized(seed, 25)
        };
        assert_chop_containments(&gen_unstructured(&cfg), "unstructured");
    }
}

/// Figure 1-a, pinned: how does `read(x)` influence `write(positives)`?
/// The sum-accumulation lines must fall out of the chop even though they
/// are influenced by the source, because they never feed the sink.
#[test]
fn paper_figure_chop_read_to_positives() {
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let source = p.at_line(4); // read(x)
    let sink = p.at_line(12); // write(positives)

    // read(x) feeds positives only through the sign test guarding the
    // increment; the loop predicate tests eof(), which x never feeds, so
    // the while head stays out of the *plain* chop.
    let c = chop(&a, source, sink);
    assert_eq!(c.lines(&p), vec![4, 5, 7, 12]);

    // The executable variant keeps the loop predicate (repair keeps
    // predicates so the result still replays), but still drops the sum
    // arithmetic and the dead initializer.
    let ce = chop_executable(&a, source, sink);
    let lines = ce.lines(&p);
    for must in [3, 4, 5, 7, 12] {
        assert!(lines.contains(&must), "executable chop lost line {must}");
    }
    for sum_line in [1, 6, 9, 10, 11] {
        assert!(
            !lines.contains(&sum_line),
            "sum accumulation (line {sum_line}) cannot reach write(positives)"
        );
    }

    // And the forward slice of the source alone reaches both writes.
    let f = forward_slice(&a, source);
    assert!(f.stmts.contains(p.at_line(11)));
    assert!(f.stmts.contains(p.at_line(12)));
}
