//! End-to-end reproduction of every figure in the paper's evaluation,
//! asserted through the public facade (see DESIGN.md §3 for the index).

use jumpslice::prelude::*;
use jumpslice_core::corpus;

fn lines(p: &Program, s: &Slice) -> Vec<usize> {
    s.lines(p)
}

/// Figures 1/2: the jump-free example and its conventional slice.
#[test]
fn fig1_conventional_slice() {
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let s = conventional_slice(&a, &Criterion::at_stmt(p.at_line(12)));
    assert_eq!(lines(&p, &s), vec![2, 3, 4, 5, 7, 12]);
    // Without jumps, every algorithm agrees (the paper's premise that the
    // conventional algorithm is fine for jump-free programs).
    for s2 in [
        agrawal_slice(&a, &Criterion::at_stmt(p.at_line(12))),
        structured_slice(&a, &Criterion::at_stmt(p.at_line(12))),
        conservative_slice(&a, &Criterion::at_stmt(p.at_line(12))),
        ball_horwitz_slice(&a, &Criterion::at_stmt(p.at_line(12))),
    ] {
        assert_eq!(s.stmts, s2.stmts);
    }
}

/// Figure 2: the four graphs of Figure 1-a have the shapes the paper draws.
#[test]
fn fig2_graph_shapes() {
    let p = corpus::fig1();
    let cfg = jumpslice::cfg::Cfg::build(&p);
    let pdg = jumpslice::pdg::Pdg::build(&p, &cfg);
    // 2-b data dependence: 12 <- {2, 7}; 11 <- {1, 6, 9, 10}.
    let deps = |l: usize| -> Vec<usize> {
        let mut v: Vec<usize> = pdg
            .data()
            .deps(p.at_line(l))
            .iter()
            .map(|&s| p.line_of(s))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(deps(12), vec![2, 7]);
    assert_eq!(deps(11), vec![1, 6, 9, 10]);
    // 2-c control dependence: 4,5 on 3; 6,7,8 on 5; 9,10 on 8.
    let cd = |l: usize| -> Vec<usize> {
        pdg.control()
            .deps(p.at_line(l))
            .iter()
            .map(|&s| p.line_of(s))
            .collect()
    };
    assert_eq!(cd(4), vec![3]);
    assert_eq!(cd(6), vec![5]);
    assert_eq!(cd(9), vec![8]);
    // Node 0 (entry) controls the top level: 1, 2, 3, 11, 12.
    let top: Vec<usize> = pdg
        .control()
        .entry_controlled()
        .iter()
        .map(|&s| p.line_of(s))
        .collect();
    assert_eq!(top, vec![1, 2, 3, 11, 12]);
}

/// Figure 3: conventional (incorrect) vs. the paper's slice.
#[test]
fn fig3_slices() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    assert_eq!(
        lines(&p, &conventional_slice(&a, &crit)),
        vec![2, 3, 4, 5, 8, 15],
        "Figure 3-b"
    );
    let s = agrawal_slice(&a, &crit);
    assert_eq!(lines(&p, &s), vec![2, 3, 4, 5, 7, 8, 13, 15], "Figure 3-c");
    assert_eq!(s.traversals, 1);
    // Rendered slice carries the re-associated L14 on write(positives).
    let text = s.render(&p);
    assert!(text.contains("L14: write(positives);"), "{text}");
}

/// Figure 4: postdominator tree and LST facts the walkthrough quotes.
#[test]
fn fig4_graph_facts() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let cfg = a.cfg();
    let pdom = a.pdom();
    let node = |l: usize| cfg.node(p.at_line(l));
    // "nodes 3 and 15 are the nearest postdominator and the nearest lexical
    // successor ... of node 13 in the slice" — structurally: ipdom(13)=3.
    assert_eq!(pdom.idom(node(13)), Some(node(3)));
    assert_eq!(pdom.idom(node(7)), Some(node(13)));
    assert_eq!(pdom.idom(node(11)), Some(node(13)));
    assert_eq!(pdom.idom(node(3)), Some(node(14)));
    // LST of the flat program is the lexical chain.
    assert_eq!(a.lst().immediate(p.at_line(13)), Some(p.at_line(14)));
}

/// Figure 5: the continue version.
#[test]
fn fig5_slices() {
    let p = corpus::fig5();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(14));
    assert_eq!(
        lines(&p, &conventional_slice(&a, &crit)),
        vec![2, 3, 4, 5, 8, 14],
        "Figure 5-b"
    );
    let s = agrawal_slice(&a, &crit);
    assert_eq!(lines(&p, &s), vec![2, 3, 4, 5, 7, 8, 14], "Figure 5-c");
    // The residual program renders with the kept continue inside the if.
    let text = s.render(&p);
    assert!(text.contains("continue;"), "{text}");
}

/// Figure 8: direct-goto version; jumps 7, 11, 13 and predicate 9 join.
#[test]
fn fig8_slices() {
    let p = corpus::fig8();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    assert_eq!(
        lines(&p, &conventional_slice(&a, &crit)),
        vec![2, 3, 4, 5, 8, 15],
        "Figure 8-b"
    );
    let s = agrawal_slice(&a, &crit);
    assert_eq!(
        lines(&p, &s),
        vec![2, 3, 4, 5, 7, 8, 9, 11, 13, 15],
        "Figure 8-c"
    );
    assert_eq!(s.traversals, 1, "single traversal suffices (§3)");
}

/// Figure 10: the program that needs two traversals.
#[test]
fn fig10_two_traversals() {
    let p = corpus::fig10();
    let a = Analysis::new(&p);
    let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(9)));
    assert_eq!(lines(&p, &s), vec![1, 2, 3, 4, 7, 9], "Figure 10-b");
    assert_eq!(s.traversals, 2, "§3: node 4 joins in the second traversal");
}

/// Figure 11: the pdom/lexsucc pair (4, 7) driving the two traversals.
#[test]
fn fig11_pair_facts() {
    let p = corpus::fig10();
    let a = Analysis::new(&p);
    let pdom = a.pdom();
    let n4 = a.cfg().node(p.at_line(4));
    let n7 = a.cfg().node(p.at_line(7));
    assert!(pdom.dominates(n4, n7), "node 4 postdominates node 7");
    assert!(
        a.lst().is_successor(p.at_line(7), p.at_line(4)),
        "node 7 lexically succeeds node 4"
    );
}

/// Figures 12/13/14: the structured-program algorithms and their gap.
#[test]
fn fig14_structured_vs_conservative() {
    let p = corpus::fig14();
    let a = Analysis::new(&p);
    assert!(is_structured(&a));
    let crit = Criterion::at_stmt(p.at_line(9));
    let fig12 = structured_slice(&a, &crit);
    let fig13 = conservative_slice(&a, &crit);
    assert_eq!(lines(&p, &fig12), vec![1, 3, 4, 9], "Figure 14-b");
    assert_eq!(lines(&p, &fig13), vec![1, 3, 4, 5, 7, 9], "Figure 14-c");
    assert!(fig12.subset_of(&fig13));
    // And both agree with the general algorithm where the paper proves they
    // must (Figure 12 == Figure 7 on structured programs).
    assert_eq!(fig12.stmts, agrawal_slice(&a, &crit).stmts);
}

/// Figure 16: correct slice with label L6 re-associated.
#[test]
fn fig16_label_reassociation() {
    let p = corpus::fig16();
    let a = Analysis::new(&p);
    let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(10)));
    assert_eq!(lines(&p, &s), vec![1, 2, 3, 4, 5, 10], "Figure 16-c");
    let l6 = p.label("L6").unwrap();
    assert_eq!(s.moved_labels, vec![(l6, Some(p.at_line(10)))]);
    let text = s.render(&p);
    assert!(text.contains("L6: L10: write(y);"), "{text}");
    assert!(!text.contains("g2"), "z = g2(y) must not survive");
}

/// The figure programs round-trip through the printer.
#[test]
fn corpus_print_parse_roundtrip() {
    for (name, p, _) in corpus::all() {
        let text = print_program(&p);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
        assert_eq!(
            p.lexical_order().len(),
            p2.lexical_order().len(),
            "{name} changed shape:\n{text}"
        );
    }
}

/// Every slice of every figure program, by every correct algorithm, passes
/// the projection oracle.
#[test]
fn corpus_slices_pass_projection_oracle() {
    let inputs = Input::family(10);
    for (name, p, line) in corpus::all() {
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(line));
        let mut slices = vec![
            ("fig7", agrawal_slice(&a, &crit)),
            ("ball-horwitz", ball_horwitz_slice(&a, &crit)),
        ];
        if is_structured(&a) {
            slices.push(("fig12", structured_slice(&a, &crit)));
            slices.push(("fig13", conservative_slice(&a, &crit)));
        }
        for (alg, s) in slices {
            check_projection(&p, &s.stmts, &s.moved_labels, &inputs)
                .unwrap_or_else(|e| panic!("{name}/{alg}: {e}"));
        }
    }
}

/// The conventional slice is genuinely *wrong* on the jump programs — the
/// paper's motivating claim, witnessed by the oracle.
#[test]
fn conventional_fails_projection_on_jump_programs() {
    let inputs = Input::family(10);
    for (name, p, line) in corpus::all() {
        if name == "fig1" || name == "fig14" {
            continue; // no unconditional jumps on the relevant paths
        }
        let a = Analysis::new(&p);
        let s = conventional_slice(&a, &Criterion::at_stmt(p.at_line(line)));
        let res = check_projection(&p, &s.stmts, &s.moved_labels, &inputs);
        assert!(
            res.is_err(),
            "{name}: conventional slice unexpectedly passed the oracle"
        );
    }
}
