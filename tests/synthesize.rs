//! Semantic validation of the Choi–Ferrante synthesized slices
//! (`jumpslice_core::synthesize`): the flat program with fresh jumps must
//! replay the original execution projected onto the slice statements —
//! same statements (via the origin mapping), same order, same values.

use jumpslice::prelude::*;
use jumpslice_core::synthesize::{synthesize_slice, SynthesizedSlice};
use jumpslice_interp::run_with_sites;
use jumpslice_lang::StmtKind;

/// (original line, value) events of a run, restricted to `stmts`.
fn original_projection(
    p: &Program,
    s: &SynthesizedSlice,
    input: &Input,
) -> (Vec<(StmtId, Option<i64>)>, bool) {
    let t = run(p, input);
    (
        t.events
            .iter()
            .filter(|e| s.stmts.contains(e.stmt))
            .map(|e| (e.stmt, e.value))
            .collect(),
        t.fuel_exhausted,
    )
}

/// Events of the synthesized program, mapped back to original statements.
fn synthesized_events(s: &SynthesizedSlice, input: &Input) -> (Vec<(StmtId, Option<i64>)>, bool) {
    let key = s.site_key();
    let t = run_with_sites(&s.program, input, &key);
    (
        t.events
            .iter()
            .filter_map(|e| s.origin_of(e.stmt).map(|o| (o, e.value)))
            .collect(),
        t.fuel_exhausted,
    )
}

fn check_replay(p: &Program, s: &SynthesizedSlice, inputs: &[Input]) -> Result<(), String> {
    for input in inputs {
        let (expected, fuel_a) = original_projection(p, s, input);
        let (actual, fuel_b) = synthesized_events(s, input);
        let ok = if fuel_a || fuel_b {
            let n = expected.len().min(actual.len());
            expected[..n] == actual[..n]
        } else {
            expected == actual
        };
        if !ok {
            return Err(format!(
                "input {input:?}: expected {} events, synthesized produced {}\nexpected: {expected:?}\nactual:   {actual:?}",
                expected.len(),
                actual.len()
            ));
        }
    }
    Ok(())
}

#[test]
fn corpus_figures_replay() {
    let inputs = Input::family(10);
    for (name, p, line) in jumpslice_core::corpus::all() {
        if name == "fig14" {
            continue; // switch: synthesize returns Err by design
        }
        let a = Analysis::new(&p);
        let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(line)))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        check_replay(&p, &s, &inputs).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn fig3_output_matches_figure_shape() {
    // Figure 3: the synthesized slice re-expresses the conventional slice
    // {2,3,4,5,8,15} with fresh jumps — no original goto survives, yet the
    // loop structure is rebuilt.
    let p = jumpslice_core::corpus::fig3();
    let a = Analysis::new(&p);
    let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(15))).unwrap();
    let text = print_program(&s.program);
    assert!(text.contains("goto"), "the flat form needs jumps:\n{text}");
    // And it is smaller than the Figure-7 subprogram slice, the paper's
    // point about this algorithm.
    let fig7 = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
    assert!(s.stmts.len() < fig7.stmts.len());
}

#[test]
fn synthesized_programs_are_flat_and_valid() {
    for (name, p, line) in jumpslice_core::corpus::all() {
        if name == "fig14" {
            continue;
        }
        let a = Analysis::new(&p);
        let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(line))).unwrap();
        for st in s.program.stmt_ids() {
            assert!(
                !s.program.stmt(st).kind.is_compound(),
                "{name}: compound statement in flat output"
            );
        }
        // Output parses back (printer + parser agree on it).
        let text = print_program(&s.program);
        parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
    }
}

fn replay_case(seed: u64, size: usize) {
    let p = gen_unstructured(&GenConfig {
        jump_density: 0.3,
        ..GenConfig::sized(seed, size)
    });
    let a = Analysis::new(&p);
    let inputs = Input::family(5);
    let writes: Vec<StmtId> = p
        .stmt_ids()
        .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && a.is_live(s))
        .take(3)
        .collect();
    for c in writes {
        let s = synthesize_slice(&a, &Criterion::at_stmt(c))
            .expect("unstructured corpus has no switches");
        check_replay(&p, &s, &inputs).unwrap_or_else(|e| panic!("seed {seed} size {size}: {e}"));
    }
}

#[test]
fn synthesized_slices_replay_on_unstructured() {
    jumpslice_testkit::check(24, |rng| {
        replay_case(rng.gen_range(0u64..300), rng.gen_range(10usize..35));
    });
}

/// Regression pinned from an earlier property-test failure (divergent
/// predicate promotion on a goto-dense program).
#[test]
fn replay_regression_seed_105() {
    replay_case(105, 10);
}
