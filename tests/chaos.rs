//! The chaos harness as a test suite: a fixed-seed smoke sweep, the two
//! known-bug self-tests that prove the detectors fire, and one pinned
//! representative fault schedule per fault class.
//!
//! The per-class schedules are `run_plan` replays with `stress_clients: 0`,
//! so they are fully deterministic: faults are addressed by call count and
//! cancellation by checkpoint fuel, never by wall-clock. Each test asserts
//! both halves of the contract — the fault actually *fired* (a schedule
//! that misses its call count tests nothing) and the daemon absorbed it
//! without violating a single invariant.

use jumpslice_chaos::{
    run_chaos, run_plan, self_test_forged_snapshot_detected, self_test_lease_eviction_detected,
    ChaosConfig, FaultPlan, IoFault, IoFaultKind, SliceFaultAt,
};

/// Deterministic single-plan configuration for the pinned schedules: no
/// stress clients, a 2-slot cache over 3 programs so eviction and
/// store-restore churn is constant.
fn pinned_cfg() -> ChaosConfig {
    ChaosConfig {
        stress_clients: 0,
        ..ChaosConfig::smoke()
    }
}

fn assert_clean_and_fired(plan: FaultPlan, fired: &str) {
    let outcome = run_plan(&pinned_cfg(), 0, &plan);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "plan {} violated",
        plan.describe()
    );
    assert!(
        outcome.io_fired.iter().any(|f| f.starts_with(fired)),
        "plan {} never fired its {fired} fault (fired: {:?})",
        plan.describe(),
        outcome.io_fired
    );
}

/// A small fixed-seed sweep of *sampled* plans must finish with zero
/// invariant violations while actually exercising the fault plane: IO
/// faults fire, injected panics are recovered, scheduled rejections are
/// served, and snapshots restore.
#[test]
fn fixed_seed_chaos_smoke_run_is_clean() {
    let report = run_chaos(&ChaosConfig::smoke());
    assert!(
        report.findings.is_empty(),
        "violating plans: {:#?}",
        report
            .findings
            .iter()
            .map(|f| (&f.shrunk, &f.violations))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.plans, 8);
    assert!(report.cases > 0 && report.requests > 0);
    assert!(report.io_faults_fired > 0, "no IO fault ever fired");
    assert!(report.panics > 0, "no injected panic was exercised");
    assert!(report.rejected > 0, "no queue rejection was exercised");
    assert!(report.restored > 0, "no snapshot restore was exercised");
}

/// The harness must detect a cache that evicts leased entries — the lease
/// tracker flags the injected bug and stays silent on the correct cache.
/// If this fails, a green chaos run proves nothing about lease safety.
#[test]
fn harness_detects_injected_leased_eviction() {
    self_test_lease_eviction_detected().expect("lease-eviction detector");
}

/// The harness must detect a forged snapshot — a record that passes the
/// checksum, the version gate, the decoder, and the source equality check,
/// but carries another program's analysis. Only the slice-identity
/// invariant can see it. If this fails, a green chaos run proves nothing
/// about corruption safety.
#[test]
fn harness_detects_forged_snapshot() {
    let scratch = std::env::temp_dir().join(format!(
        "jumpslice-chaos-pinned-selftest-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let result = self_test_forged_snapshot_detected(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    result.expect("forged-snapshot detector");
}

/// Read-error class: a failed snapshot read is a cache miss, never a
/// served error — the engine reparses from source.
#[test]
fn pinned_schedule_read_error() {
    assert_clean_and_fired(
        FaultPlan {
            io_faults: vec![IoFault {
                at: 0,
                kind: IoFaultKind::ReadErr,
            }],
            ..FaultPlan::quiet(0)
        },
        "read-err",
    );
}

/// Bit-flip class: a snapshot corrupted on disk fails the checksum and is
/// discarded — it must never be decoded into a served analysis.
#[test]
fn pinned_schedule_read_bit_flip() {
    assert_clean_and_fired(
        FaultPlan {
            io_faults: vec![IoFault {
                at: 0,
                kind: IoFaultKind::ReadBitFlip(0x5eed),
            }],
            ..FaultPlan::quiet(0)
        },
        "read-bit-flip",
    );
}

/// Write-error class: a failed persist costs the snapshot, not the
/// response — and the store's accounting stays consistent.
#[test]
fn pinned_schedule_write_error() {
    assert_clean_and_fired(
        FaultPlan {
            io_faults: vec![IoFault {
                at: 0,
                kind: IoFaultKind::WriteErr,
            }],
            ..FaultPlan::quiet(0)
        },
        "write-err",
    );
}

/// Torn-write class: a partial tmp file is cleaned up, never renamed into
/// place, and the restart over the same directory serves nothing corrupt.
/// The schedule also injects a remove failure so the orphaned tmp file
/// survives the cleanup — the reopened store must skip it.
#[test]
fn pinned_schedule_torn_write_with_failed_cleanup() {
    let plan = FaultPlan {
        io_faults: vec![
            IoFault {
                at: 1,
                kind: IoFaultKind::TornWrite(17),
            },
            IoFault {
                at: 0,
                kind: IoFaultKind::RemoveErr,
            },
        ],
        ..FaultPlan::quiet(0)
    };
    let outcome = run_plan(&pinned_cfg(), 0, &plan);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "plan {} violated",
        plan.describe()
    );
    assert!(
        outcome.io_fired.iter().any(|f| f.starts_with("torn-write")),
        "torn write never fired: {:?}",
        outcome.io_fired
    );
}

/// Rename-error class: the commit step of the write-tmp-then-rename
/// protocol fails; the snapshot is lost but nothing partial is published.
#[test]
fn pinned_schedule_rename_error() {
    assert_clean_and_fired(
        FaultPlan {
            io_faults: vec![IoFault {
                at: 0,
                kind: IoFaultKind::RenameErr,
            }],
            ..FaultPlan::quiet(0)
        },
        "rename-err",
    );
}

/// Worker-panic class: a panicking slice request costs exactly one
/// response; the client reloads and retries to a byte-identical answer,
/// and the poisoned cache entry is never served without re-registration.
#[test]
fn pinned_schedule_worker_panic() {
    let plan = FaultPlan {
        slice_faults: vec![SliceFaultAt {
            at: 0,
            cancel_fuel: None,
        }],
        ..FaultPlan::quiet(0)
    };
    let outcome = run_plan(&pinned_cfg(), 0, &plan);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "plan {} violated",
        plan.describe()
    );
    assert!(outcome.panics >= 1, "the scheduled panic never fired");
}

/// Deadline class: checkpoint fuel runs out mid-slice and the whole batch
/// degrades to exactly the direct Figure-13 conservative answer — verified
/// byte-for-byte against the oracle, plus the §4 superset contract on
/// structured programs.
#[test]
fn pinned_schedule_deadline_degradation() {
    let plan = FaultPlan {
        slice_faults: vec![SliceFaultAt {
            at: 0,
            cancel_fuel: Some(0),
        }],
        ..FaultPlan::quiet(0)
    };
    let outcome = run_plan(&pinned_cfg(), 0, &plan);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "plan {} violated",
        plan.describe()
    );
    assert!(
        outcome.degraded >= 1,
        "the scheduled cancellation never degraded a response"
    );
}

/// Queue-rejection class: scheduled back-pressure is served as a
/// structured `queue full` error and the retry succeeds — exactly as many
/// rejections fire as the schedule holds.
#[test]
fn pinned_schedule_queue_rejection() {
    let plan = FaultPlan {
        reject_enqueues: vec![0, 3],
        ..FaultPlan::quiet(0)
    };
    let outcome = run_plan(&pinned_cfg(), 0, &plan);
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "plan {} violated",
        plan.describe()
    );
    assert_eq!(outcome.rejected, 2, "both scheduled rejections must fire");
}

/// Composite schedule: every fault class at once, replayed twice — the
/// outcome must be identical both times (full determinism of the
/// sequential and restart phases) and clean both times.
#[test]
fn pinned_schedule_composite_is_deterministic_and_clean() {
    let plan = FaultPlan {
        io_faults: vec![
            IoFault {
                at: 1,
                kind: IoFaultKind::WriteErr,
            },
            IoFault {
                at: 2,
                kind: IoFaultKind::RenameErr,
            },
            IoFault {
                at: 0,
                kind: IoFaultKind::ReadBitFlip(99),
            },
        ],
        slice_faults: vec![
            SliceFaultAt {
                at: 2,
                cancel_fuel: None,
            },
            SliceFaultAt {
                at: 5,
                cancel_fuel: Some(0),
            },
        ],
        reject_enqueues: vec![1],
        ..FaultPlan::quiet(7)
    };
    let a = run_plan(&pinned_cfg(), 7, &plan);
    let b = run_plan(&pinned_cfg(), 7, &plan);
    assert_eq!(a.violations, Vec::<String>::new(), "first replay violated");
    assert_eq!(b.violations, Vec::<String>::new(), "second replay violated");
    assert_eq!(a.io_fired, b.io_fired, "IO fault firing order diverged");
    assert_eq!(
        (a.cases, a.degraded, a.panics, a.rejected),
        (b.cases, b.degraded, b.panics, b.rejected),
        "replay outcome diverged"
    );
}
