//! Reproduction findings: where this workspace's *language extensions*
//! weaken the paper's precision-equivalence theorem (§3: Figure 7 slices ≡
//! Ball–Horwitz slices) without ever compromising soundness.
//!
//! The paper's figure language is if/while + goto/break/continue/return.
//! Two constructs we additionally support create "interior postdominators":
//! statements that postdominate an entire construct while not being lexical
//! successors of statements before/inside it. There the paper's
//! npd-≠-nls test is sufficient for soundness but no longer necessary, so
//! Figure 7 conservatively keeps jumps Ball–Horwitz proves removable.
//!
//! Both cases below were found by the property tests in
//! `tests/equivalence.rs` (which therefore restrict their corpus to the
//! paper's core fragment) and are pinned here as regressions.

use jumpslice::prelude::*;

fn slices(src: &str, crit_line: usize) -> (Program, Slice, Slice) {
    let p = parse(src).unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(crit_line));
    let fig7 = agrawal_slice(&a, &crit);
    let bh = ball_horwitz_slice(&a, &crit);
    (p, fig7, bh)
}

/// `do-while`: the loop predicate executes *after* its body, so the
/// postdominator chain of a statement before the loop threads through the
/// body before reaching the predicate, while the lexical successor chain
/// points at the construct directly. npd and nls then disagree on an
/// irrelevant `continue`.
#[test]
fn do_while_breaks_precision_equivalence() {
    let src = "read(v1);
               do { continue; } while (!eof());
               do { v0 = f3(v2); write(v1); } while (!eof());";
    // Lines: 1 read, 2 do-while, 3 continue, 4 do-while, 5 assign, 6 write.
    let (p, fig7, bh) = slices(src, 6);
    assert_eq!(bh.lines(&p), vec![1, 4, 6], "BH drops the no-op loop");
    assert_eq!(
        fig7.lines(&p),
        vec![1, 2, 3, 4, 6],
        "Figure 7 conservatively keeps the continue and its loop"
    );
    assert!(bh.subset_of(&fig7));
    // Both remain sound.
    let inputs = Input::family(8);
    check_projection(&p, &fig7.stmts, &fig7.moved_labels, &inputs).unwrap();
    check_projection(&p, &bh.stmts, &bh.moved_labels, &inputs).unwrap();
}

/// `switch` fall-through: the shared tail arm (here the `default`)
/// postdominates the whole switch, so it appears on postdominator chains of
/// earlier statements while never being their lexical successor. An
/// irrelevant `break` before the switch then trips npd ≠ nls.
#[test]
fn switch_fallthrough_breaks_precision_equivalence() {
    let src = "read(v1);
               while (!eof()) { v2 = 4; break; }
               switch (f1(v0)) {
                 case 0: write(f3(v1));
                 default: v3 = v1;
               }
               write(v3);";
    // Lines: 1 read, 2 while, 3 assign, 4 break, 5 switch, 6 write,
    // 7 assign(v3), 8 write(v3).
    let (p, fig7, bh) = slices(src, 8);
    assert_eq!(bh.lines(&p), vec![1, 7, 8]);
    assert_eq!(
        fig7.lines(&p),
        vec![1, 2, 4, 7, 8],
        "Figure 7 keeps the while/break pair"
    );
    assert!(bh.subset_of(&fig7));
    let inputs = Input::family(8);
    check_projection(&p, &fig7.stmts, &fig7.moved_labels, &inputs).unwrap();
    check_projection(&p, &bh.stmts, &bh.moved_labels, &inputs).unwrap();
}

/// On the paper's own fragment the equivalence is exact — spot-checked here
/// on the corpus, exhaustively checked by `tests/equivalence.rs`.
#[test]
fn equivalence_exact_on_paper_fragment() {
    use jumpslice_core::corpus;
    for (name, p, _) in corpus::all() {
        let a = Analysis::new(&p);
        for line in 1..=p.lexical_order().len() {
            let crit = Criterion::at_stmt(p.at_line(line));
            assert_eq!(
                agrawal_slice(&a, &crit).stmts,
                ball_horwitz_slice(&a, &crit).stmts,
                "{name} line {line}"
            );
        }
    }
}

/// The soundness side of the do-while gap: a body that always `break`s
/// leaves the loop condition dead, so the paper's npd-vs-nls test sees no
/// reason to keep the break — but deleting it *resurrects* the loop. The
/// `Analysis::dowhile_hazard` extension guard repairs all three paper
/// algorithms; Ball–Horwitz needs no repair (its pseudo edge makes the
/// condition control dependent on the break). Found by property testing.
#[test]
fn dowhile_dead_condition_break_is_kept() {
    let src = "read(v1);
               do { v2 = -2 * v1; v2 = -2; break; } while (!eof());
               write(v2);";
    // Lines: 1 read, 2 do-while, 3 assign, 4 assign, 5 break, 6 write.
    let p = parse(src).unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(6));
    let inputs = Input::family(8);
    for (name, s) in [
        ("fig7", agrawal_slice(&a, &crit)),
        ("fig12", structured_slice(&a, &crit)),
        ("fig13", conservative_slice(&a, &crit)),
        ("ball-horwitz", ball_horwitz_slice(&a, &crit)),
    ] {
        assert!(
            s.lines(&p).contains(&5),
            "{name} must keep the break: {:?}",
            s.lines(&p)
        );
        check_projection(&p, &s.stmts, &s.moved_labels, &inputs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Reproduction finding on the paper's *own* language (if + goto, no
/// extensions): §3 claims the Figure 7 slices coincide exactly with
/// Ball–Horwitz slices, but the algorithm's npd-vs-nls judgements are made
/// against the *evolving* slice and additions are permanent. In the
/// generated program below (gen_unstructured, seed 120, 16 slots, jump
/// density 0.45), the conventional slice for write(-2) on line 13 is
/// {4, 13, 21}; the traversal examines the no-op `goto L1` (line 6) while
/// the predicate on line 7 is still outside the slice — npd (21) and nls
/// (13) differ, so lines 5 and 6 are added — and the very next addition
/// (`goto L8`'s closure, which brings in line 7) would have equalized the
/// test. Figure 7 therefore computes a *sound superset* of the
/// Ball–Horwitz slice rather than an equal slice. Exact equality does
/// hold on every figure of the paper (`equivalence_exact_on_paper_fragment`).
#[test]
fn goto_history_dependence_breaks_exact_equivalence() {
    let src = "read(v0);
               read(v1);
               read(v2);
               read(v3);
               L0: if (-3 < 1) {
                 goto L1;
               }
               L1: if (v2 <= 2) {
                 goto L8;
               }
               L2: goto L7;
               L3: if (v1 > -2) {
                 L4: v2 = v3;
               }
               L5: v0 = v0;
               L6: write(-2);
               L7: if (f3(v3) == 1) {
                 L8: read(v2);
                 L9: v2 = v2;
               }
               L10: if (!eof()) {
                 L11: v1 = v2 * -2;
               }
               L12: v1 = v3 - v1;
               L13: write(-3 + v1 % v3);
               L14: if (v3 == 1) goto L3;
               L15: write(-3);
               LEND: write(v0);
               write(v1);
               write(v2);
               write(v3);";
    let p = parse(src).unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(13));
    let f7 = agrawal_slice(&a, &crit);
    let bh = ball_horwitz_slice(&a, &crit);
    assert_eq!(bh.lines(&p), vec![3, 4, 7, 8, 9, 13, 21]);
    assert_eq!(
        f7.lines(&p),
        vec![3, 4, 5, 6, 7, 8, 9, 13, 21],
        "Figure 7 additionally keeps the no-op goto (6) and its if (5)"
    );
    assert!(bh.stmts.is_subset(&f7.stmts));
    // Both slices execute correctly.
    let inputs = Input::family(8);
    check_projection(&p, &f7.stmts, &f7.moved_labels, &inputs).unwrap();
    check_projection(&p, &bh.stmts, &bh.moved_labels, &inputs).unwrap();
}
