//! Algorithm-relation properties on randomly generated programs (DESIGN.md
//! §6, experiment EQ):
//!
//! * Figure 7 slices ≡ Ball–Horwitz slices on structured programs of the
//!   paper's fragment; on adversarial unstructured programs the equivalence
//!   weakens to Ball–Horwitz ⊆ Figure 7 (a reproduction finding — see
//!   `tests/extension_gaps.rs::goto_history_dependence`);
//! * Figure 12 ≡ Figure 7 and Figure 12 ⊆ Figure 13 on structured programs;
//! * the conventional slice is contained in every repaired slice;
//! * the traversal drivers (postdominator tree vs LST preorder) both
//!   over-approximate Ball–Horwitz and coincide on structured programs;
//! * the dense-bitset slice engine agrees with `BTreeSet` semantics for
//!   every algorithm, and the parallel batch engine with the sequential
//!   loop.

use jumpslice::prelude::*;
use jumpslice_core::{
    agrawal_slice_reference, agrawal_slice_traced_reference, agrawal_slice_with_order, BatchSlicer,
    SliceFn,
};
use jumpslice_dataflow::StmtSet;
use jumpslice_testkit::Rng;
use std::collections::BTreeSet;

/// Every slicing algorithm in the workspace, paper order then baselines —
/// the same table the bench harness sweeps.
const ALL_ALGOS: &[(&str, SliceFn)] = &[
    ("conventional", conventional_slice),
    ("fig7-agrawal", agrawal_slice),
    ("fig12-structured", structured_slice),
    ("fig13-conservative", conservative_slice),
    ("ball-horwitz", ball_horwitz_slice),
    ("lyle", lyle_slice),
    ("gallagher", gallagher_slice),
    ("jzr", jzr_slice),
];

/// Criterion statements worth slicing on: every *reachable* write, plus the
/// last statement (criteria must be live code; slicing on dead statements is
/// degenerate and outside the paper's assumptions).
fn criteria(p: &Program) -> Vec<StmtId> {
    let a = Analysis::new(p);
    let mut out: Vec<StmtId> = p
        .stmt_ids()
        .filter(|&s| {
            matches!(p.stmt(s).kind, jumpslice::lang::StmtKind::Write { .. }) && a.is_live(s)
        })
        .collect();
    if let Some(&last) = p.lexical_order().last() {
        if !out.contains(&last) && a.is_live(last) {
            out.push(last);
        }
    }
    out
}

/// The equivalence corpus sticks to the paper's core language: no
/// `do-while`, no `switch` (see `tests/extension_gaps.rs` for why those
/// weaken precision-equivalence without affecting soundness).
fn arb_structured(rng: &mut Rng) -> Program {
    let seed = rng.gen_range(0u64..500);
    let size = rng.gen_range(15usize..60);
    let depth = rng.gen_range(1usize..4);
    gen_structured(&GenConfig {
        seed,
        target_stmts: size,
        max_depth: depth,
        do_while: false,
        switches: false,
        ..GenConfig::default()
    })
}

fn arb_unstructured(rng: &mut Rng) -> Program {
    let seed = rng.gen_range(0u64..500);
    let size = rng.gen_range(10usize..40);
    let dens = rng.gen_range(1usize..10);
    gen_unstructured(&GenConfig {
        seed,
        target_stmts: size,
        jump_density: dens as f64 / 20.0,
        do_while: false,
        switches: false,
        ..GenConfig::default()
    })
}

#[test]
fn fig7_equals_ball_horwitz_structured() {
    jumpslice_testkit::check(48, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            assert_eq!(
                agrawal_slice(&a, &crit).stmts,
                ball_horwitz_slice(&a, &crit).stmts
            );
        }
    });
}

#[test]
fn ball_horwitz_within_fig7_unstructured() {
    // Exact equality fails on adversarial goto programs (the npd/nls
    // judgements are history dependent; see extension_gaps.rs). The
    // robust relation is containment: Figure 7 conservatively includes
    // at least everything Ball–Horwitz does.
    jumpslice_testkit::check(48, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let f7 = agrawal_slice(&a, &crit);
            let bh = ball_horwitz_slice(&a, &crit);
            assert!(bh.stmts.is_subset(&f7.stmts));
        }
    });
}

#[test]
fn fig12_equals_fig7_on_structured() {
    jumpslice_testkit::check(48, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        assert!(is_structured(&a));
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            assert_eq!(
                structured_slice(&a, &crit).stmts,
                agrawal_slice(&a, &crit).stmts
            );
        }
    });
}

#[test]
fn fig12_within_fig13_on_structured() {
    jumpslice_testkit::check(48, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let s12 = structured_slice(&a, &crit);
            let s13 = conservative_slice(&a, &crit);
            assert!(s12.subset_of(&s13));
        }
    });
}

#[test]
fn conventional_within_all() {
    jumpslice_testkit::check(48, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let conv = conventional_slice(&a, &crit);
            for s in [
                agrawal_slice(&a, &crit),
                ball_horwitz_slice(&a, &crit),
                lyle_slice(&a, &crit),
                gallagher_slice(&a, &crit),
                jzr_slice(&a, &crit),
            ] {
                assert!(conv.subset_of(&s));
                assert!(s.contains(c), "criterion statement stays in slice");
            }
        }
    });
}

#[test]
fn traversal_drivers_both_cover_ball_horwitz() {
    // §3 claims either tree's preorder yields the same slice; like the
    // Ball–Horwitz equivalence this is exact on the figures (checked in
    // tests/paper_figures.rs and core's unit tests) but only holds as
    // mutual over-approximation of Ball–Horwitz on adversarial
    // programs.
    jumpslice_testkit::check(48, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        let lst_order = a.jumps_in_lst_preorder();
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let by_pdom = agrawal_slice(&a, &crit);
            let by_lst = agrawal_slice_with_order(&a, &crit, &lst_order);
            let bh = ball_horwitz_slice(&a, &crit);
            assert!(bh.stmts.is_subset(&by_pdom.stmts));
            assert!(bh.stmts.is_subset(&by_lst.stmts));
        }
    });
}

#[test]
fn no_property1_pairs_in_structured_programs() {
    jumpslice_testkit::check(48, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        assert!(!jumpslice_core::has_pdom_lexsucc_pair(&a));
        // And indeed a single traversal always suffices.
        for c in criteria(&p) {
            let s = agrawal_slice(&a, &Criterion::at_stmt(c));
            assert!(s.traversals <= 1, "structured => one traversal");
        }
    });
}

#[test]
fn slices_are_monotone_in_criterion_closure() {
    // Slicing on a statement already inside a slice never escapes it:
    // slice(c2) ⊆ slice(c1) for c2 ∈ slice(c1) is NOT generally true for
    // jump-repaired slices, but it is for the conventional closure.
    jumpslice_testkit::check(48, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        for c in criteria(&p).into_iter().take(2) {
            let s1 = conventional_slice(&a, &Criterion::at_stmt(c));
            for c2 in s1.stmts.iter().take(5) {
                let s2 = conventional_slice(&a, &Criterion::at_stmt(c2));
                assert!(s2.subset_of(&s1));
            }
        }
    });
}

/// The reference `BTreeSet` worklist closure the engine used before the
/// bitset migration — kept here as the semantic oracle for
/// [`bitset_engine_matches_btreeset_semantics`].
fn btreeset_backward_closure(a: &Analysis<'_>, seeds: Vec<StmtId>) -> BTreeSet<StmtId> {
    let mut out: BTreeSet<StmtId> = BTreeSet::new();
    let mut work = seeds;
    while let Some(s) = work.pop() {
        if !out.insert(s) {
            continue;
        }
        work.extend(a.pdg().deps(s));
    }
    out
}

/// Tentpole regression: the dense-bitset slice sets behave exactly like the
/// `BTreeSet`s they replaced, for every one of the eight algorithms —
/// sorted duplicate-free iteration, membership, subset, equality — and the
/// PDG's bitset closure matches an independent `BTreeSet` worklist closure.
#[test]
fn bitset_engine_matches_btreeset_semantics() {
    jumpslice_testkit::check(32, |rng| {
        let p = if rng.gen_bool(0.5) {
            arb_structured(rng)
        } else {
            arb_unstructured(rng)
        };
        let a = Analysis::new(&p);
        for c in criteria(&p).into_iter().take(3) {
            let crit = Criterion::at_stmt(c);

            // The closure the conventional slicer is built on, against the
            // old representation computed independently.
            let seeds: Vec<StmtId> = crit.seeds(&a);
            let reference = btreeset_backward_closure(&a, seeds.clone());
            let bitset = a.pdg().backward_closure(seeds);
            assert_eq!(
                bitset.iter().collect::<Vec<_>>(),
                reference.iter().copied().collect::<Vec<_>>(),
                "bitset closure == BTreeSet closure, in order"
            );

            for (name, algo) in ALL_ALGOS {
                let s = algo(&a, &crit);
                let tree: BTreeSet<StmtId> = s.stmts.iter().collect();
                // Iteration is sorted and duplicate-free (== BTreeSet order).
                assert_eq!(
                    s.stmts.iter().collect::<Vec<_>>(),
                    tree.iter().copied().collect::<Vec<_>>(),
                    "{name}: iteration order"
                );
                assert_eq!(s.stmts.len(), tree.len(), "{name}: len");
                // Membership agrees statement-by-statement.
                for x in p.stmt_ids() {
                    assert_eq!(s.stmts.contains(x), tree.contains(&x), "{name}: contains");
                }
                // Round-trip through the tree is the identity.
                let back: StmtSet = tree.iter().copied().collect();
                assert_eq!(back, s.stmts, "{name}: round-trip equality");
            }
        }
    });
}

/// Sparse-kernel tentpole, paper corpora: the change-driven Figure-7
/// engine behind `agrawal_slice` is bit-identical — statements,
/// `traversals`, `moved_labels` — to the dense round-based
/// `agrawal_slice_reference` loop on every figure program, at every
/// reasonable criterion. Figure 14 brings a `switch`, Figure 10 the
/// two-round fixpoint.
#[test]
fn sparse_equals_dense_on_paper_corpus() {
    use jumpslice_core::corpus;
    for p in [
        corpus::fig3(),
        corpus::fig5(),
        corpus::fig8(),
        corpus::fig10(),
        corpus::fig14(),
        corpus::fig16(),
    ] {
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let sparse = agrawal_slice(&a, &crit);
            let dense = agrawal_slice_reference(&a, &crit);
            assert_eq!(sparse, dense, "criterion line {}", p.line_of(c));
        }
    }
}

/// Sparse-kernel tentpole, generated programs: both progen families at
/// jump densities 0, 0.1, and 0.3, checking full `Slice` equality plus
/// statement-by-statement provenance agreement between the traced sparse
/// and traced dense slicers.
#[test]
fn sparse_equals_dense_on_progen_families() {
    jumpslice_testkit::check(24, |rng| {
        let seed = rng.gen_range(0u64..500);
        let size = rng.gen_range(15usize..50);
        for density in [0.0, 0.1, 0.3] {
            let cfg = GenConfig {
                seed,
                target_stmts: size,
                jump_density: density,
                ..GenConfig::default()
            };
            for p in [gen_structured(&cfg), gen_unstructured(&cfg)] {
                let a = Analysis::new(&p);
                for c in criteria(&p).into_iter().take(4) {
                    let crit = Criterion::at_stmt(c);
                    assert_eq!(
                        agrawal_slice(&a, &crit),
                        agrawal_slice_reference(&a, &crit),
                        "density {density}, criterion line {}",
                        p.line_of(c)
                    );
                    let (ts, tp) = agrawal_slice_traced(&a, &crit);
                    let (rs, rp) = agrawal_slice_traced_reference(&a, &crit);
                    assert_eq!(ts, rs, "traced slices agree");
                    for s in p.stmt_ids() {
                        assert_eq!(
                            tp.why(s),
                            rp.why(s),
                            "provenance for line {} agrees",
                            p.line_of(s)
                        );
                    }
                }
            }
        }
    });
}

/// The parallel batch engine returns bit-for-bit the sequential results,
/// for every algorithm, in criterion order.
#[test]
fn batch_engine_matches_sequential() {
    jumpslice_testkit::check(12, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        let crits: Vec<Criterion> = criteria(&p).into_iter().map(Criterion::at_stmt).collect();
        let batch = BatchSlicer::new(&a).with_threads(4);
        for (name, algo) in ALL_ALGOS {
            let sequential: Vec<Slice> = crits.iter().map(|c| algo(&a, c)).collect();
            let fanned = batch.slice_all(*algo, &crits);
            assert_eq!(fanned, sequential, "{name}: batch == sequential");
        }
    });
}
