//! Algorithm-relation properties on randomly generated programs (DESIGN.md
//! §6, experiment EQ):
//!
//! * Figure 7 slices ≡ Ball–Horwitz slices on structured programs of the
//!   paper's fragment; on adversarial unstructured programs the equivalence
//!   weakens to Ball–Horwitz ⊆ Figure 7 (a reproduction finding — see
//!   `tests/extension_gaps.rs::goto_history_dependence`);
//! * Figure 12 ≡ Figure 7 and Figure 12 ⊆ Figure 13 on structured programs;
//! * the conventional slice is contained in every repaired slice;
//! * the traversal drivers (postdominator tree vs LST preorder) both
//!   over-approximate Ball–Horwitz and coincide on structured programs.

use jumpslice::prelude::*;
use jumpslice_core::agrawal_slice_with_order;
use proptest::prelude::*;

/// Criterion statements worth slicing on: every *reachable* write, plus the
/// last statement (criteria must be live code; slicing on dead statements is
/// degenerate and outside the paper's assumptions).
fn criteria(p: &Program) -> Vec<StmtId> {
    let a = Analysis::new(p);
    let mut out: Vec<StmtId> = p
        .stmt_ids()
        .filter(|&s| {
            matches!(p.stmt(s).kind, jumpslice::lang::StmtKind::Write { .. }) && a.is_live(s)
        })
        .collect();
    if let Some(&last) = p.lexical_order().last() {
        if !out.contains(&last) && a.is_live(last) {
            out.push(last);
        }
    }
    out
}

/// The equivalence corpus sticks to the paper's core language: no
/// `do-while`, no `switch` (see `tests/extension_gaps.rs` for why those
/// weaken precision-equivalence without affecting soundness).
fn arb_structured() -> impl Strategy<Value = Program> {
    (0u64..500, 15usize..60, 1usize..4).prop_map(|(seed, size, depth)| {
        gen_structured(&GenConfig {
            seed,
            target_stmts: size,
            max_depth: depth,
            do_while: false,
            switches: false,
            ..GenConfig::default()
        })
    })
}

fn arb_unstructured() -> impl Strategy<Value = Program> {
    (0u64..500, 10usize..40, 1usize..10).prop_map(|(seed, size, dens)| {
        gen_unstructured(&GenConfig {
            seed,
            target_stmts: size,
            jump_density: dens as f64 / 20.0,
            do_while: false,
            switches: false,
            ..GenConfig::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fig7_equals_ball_horwitz_structured(p in arb_structured()) {
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            prop_assert_eq!(
                agrawal_slice(&a, &crit).stmts,
                ball_horwitz_slice(&a, &crit).stmts
            );
        }
    }

    #[test]
    fn ball_horwitz_within_fig7_unstructured(p in arb_unstructured()) {
        // Exact equality fails on adversarial goto programs (the npd/nls
        // judgements are history dependent; see extension_gaps.rs). The
        // robust relation is containment: Figure 7 conservatively includes
        // at least everything Ball–Horwitz does.
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let f7 = agrawal_slice(&a, &crit);
            let bh = ball_horwitz_slice(&a, &crit);
            prop_assert!(bh.stmts.is_subset(&f7.stmts));
        }
    }

    #[test]
    fn fig12_equals_fig7_on_structured(p in arb_structured()) {
        let a = Analysis::new(&p);
        prop_assert!(is_structured(&a));
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            prop_assert_eq!(
                structured_slice(&a, &crit).stmts,
                agrawal_slice(&a, &crit).stmts
            );
        }
    }

    #[test]
    fn fig12_within_fig13_on_structured(p in arb_structured()) {
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let s12 = structured_slice(&a, &crit);
            let s13 = conservative_slice(&a, &crit);
            prop_assert!(s12.subset_of(&s13));
        }
    }

    #[test]
    fn conventional_within_all(p in arb_unstructured()) {
        let a = Analysis::new(&p);
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let conv = conventional_slice(&a, &crit);
            for s in [
                agrawal_slice(&a, &crit),
                ball_horwitz_slice(&a, &crit),
                lyle_slice(&a, &crit),
                gallagher_slice(&a, &crit),
                jzr_slice(&a, &crit),
            ] {
                prop_assert!(conv.subset_of(&s));
                prop_assert!(s.contains(c), "criterion statement stays in slice");
            }
        }
    }

    #[test]
    fn traversal_drivers_both_cover_ball_horwitz(p in arb_unstructured()) {
        // §3 claims either tree's preorder yields the same slice; like the
        // Ball–Horwitz equivalence this is exact on the figures (checked in
        // tests/paper_figures.rs and core's unit tests) but only holds as
        // mutual over-approximation of Ball–Horwitz on adversarial
        // programs.
        let a = Analysis::new(&p);
        let lst_order = a.jumps_in_lst_preorder();
        for c in criteria(&p) {
            let crit = Criterion::at_stmt(c);
            let by_pdom = agrawal_slice(&a, &crit);
            let by_lst = agrawal_slice_with_order(&a, &crit, &lst_order);
            let bh = ball_horwitz_slice(&a, &crit);
            prop_assert!(bh.stmts.is_subset(&by_pdom.stmts));
            prop_assert!(bh.stmts.is_subset(&by_lst.stmts));
        }
    }

    #[test]
    fn no_property1_pairs_in_structured_programs(p in arb_structured()) {
        let a = Analysis::new(&p);
        prop_assert!(!jumpslice_core::has_pdom_lexsucc_pair(&a));
        // And indeed a single traversal always suffices.
        for c in criteria(&p) {
            let s = agrawal_slice(&a, &Criterion::at_stmt(c));
            prop_assert!(s.traversals <= 1, "structured => one traversal");
        }
    }

    #[test]
    fn slices_are_monotone_in_criterion_closure(p in arb_structured()) {
        // Slicing on a statement already inside a slice never escapes it:
        // slice(c2) ⊆ slice(c1) for c2 ∈ slice(c1) is NOT generally true for
        // jump-repaired slices, but it is for the conventional closure.
        let a = Analysis::new(&p);
        for c in criteria(&p).into_iter().take(2) {
            let s1 = conventional_slice(&a, &Criterion::at_stmt(c));
            for &c2 in s1.stmts.iter().take(5) {
                let s2 = conventional_slice(&a, &Criterion::at_stmt(c2));
                prop_assert!(s2.subset_of(&s1));
            }
        }
    }
}
