//! Printer/parser round-trip properties on generated programs: rendering a
//! program and re-parsing it preserves structure, line numbering, and —
//! the strongest form — slicing results.

use jumpslice::prelude::*;
use jumpslice_lang::StmtKind;

fn kind_tag(p: &Program, s: StmtId) -> &'static str {
    match &p.stmt(s).kind {
        StmtKind::Assign { .. } => "assign",
        StmtKind::Read { .. } => "read",
        StmtKind::Write { .. } => "write",
        StmtKind::Skip => "skip",
        StmtKind::If { .. } => "if",
        StmtKind::While { .. } => "while",
        StmtKind::DoWhile { .. } => "dowhile",
        StmtKind::Switch { .. } => "switch",
        StmtKind::Goto { .. } => "goto",
        StmtKind::CondGoto { .. } => "condgoto",
        StmtKind::Break => "break",
        StmtKind::Continue => "continue",
        StmtKind::Return { .. } => "return",
    }
}

fn shape(p: &Program) -> Vec<&'static str> {
    p.lexical_order().iter().map(|&s| kind_tag(p, s)).collect()
}

#[test]
fn structured_programs_roundtrip() {
    jumpslice_testkit::check(32, |rng| {
        let seed = rng.gen_range(0u64..400);
        let size = rng.gen_range(10usize..60);
        let p = gen_structured(&GenConfig::sized(seed, size));
        let text = print_program(&p);
        let q = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(shape(&p), shape(&q));
    });
}

#[test]
fn unstructured_programs_roundtrip() {
    jumpslice_testkit::check(32, |rng| {
        let seed = rng.gen_range(0u64..400);
        let size = rng.gen_range(10usize..40);
        let p = gen_unstructured(&GenConfig {
            jump_density: 0.35,
            ..GenConfig::sized(seed, size)
        });
        let text = print_program(&p);
        let q = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(shape(&p), shape(&q));
    });
}

/// The strongest round-trip: slices of the reparsed program match the
/// original's, line for line.
#[test]
fn slices_survive_roundtrip() {
    jumpslice_testkit::check(32, |rng| {
        let seed = rng.gen_range(0u64..150);
        let size = rng.gen_range(10usize..30);
        let p = gen_unstructured(&GenConfig {
            jump_density: 0.3,
            ..GenConfig::sized(seed, size)
        });
        let q = parse(&print_program(&p)).unwrap();
        let (pa, qa) = (Analysis::new(&p), Analysis::new(&q));
        let last = p.lexical_order().len();
        assert_eq!(last, q.lexical_order().len());
        for line in [1, last / 2 + 1, last] {
            let sp = agrawal_slice(&pa, &Criterion::at_stmt(p.at_line(line)));
            let sq = agrawal_slice(&qa, &Criterion::at_stmt(q.at_line(line)));
            assert_eq!(sp.lines(&p), sq.lines(&q), "line {line}");
        }
    });
}

/// Executions also survive: the reparsed program produces the same
/// trajectory values line-by-line.
#[test]
fn executions_survive_roundtrip() {
    jumpslice_testkit::check(32, |rng| {
        let seed = rng.gen_range(0u64..150);
        let size = rng.gen_range(10usize..30);
        let p = gen_structured(&GenConfig::sized(seed, size));
        let q = parse(&print_program(&p)).unwrap();
        // Statement ids coincide positionally only through lexical order;
        // compare (lexical position, value) streams.
        let order_p = p.lexical_order();
        let order_q = q.lexical_order();
        let pos = |order: &[StmtId], s: StmtId| order.iter().position(|&x| x == s).unwrap();
        for input in Input::family(3) {
            let tp = run(&p, &input);
            let tq = run(&q, &input);
            // Input sites are keyed by arena index, which parsing may
            // permute; compare outputs only when no reads are involved...
            // instead: compare event shapes (lexical position sequences).
            let ep: Vec<usize> = tp.events.iter().map(|e| pos(&order_p, e.stmt)).collect();
            let eq_: Vec<usize> = tq.events.iter().map(|e| pos(&order_q, e.stmt)).collect();
            // Arena order == creation order differs between builder and
            // parser, so read streams can differ; require only that both
            // executions visit the same statement positions until the first
            // read-influenced divergence — conservatively: same first event.
            if p.stmt_ids()
                .all(|s| !matches!(p.stmt(s).kind, StmtKind::Read { .. }))
            {
                assert_eq!(ep, eq_);
            } else if !(ep.is_empty() || eq_.is_empty()) {
                assert_eq!(ep[0], eq_[0]);
            }
        }
    });
}
