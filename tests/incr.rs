//! The incremental edit-and-reslice session, driven through the facade:
//! the session's answers must be indistinguishable from a from-scratch
//! analysis after every edit, the fast paths must actually engage, and
//! structure-changing edits must take the counted rebuild path rather
//! than serving stale postdominators or a stale lexical successor tree.

use jumpslice::prelude::*;
use jumpslice_lang::{BlockSel, StmtPath};

/// Every-slicer, every-criterion identity between the session's warm
/// analysis and a cold one.
fn assert_matches_scratch(session: &mut EditSession) {
    let prog = session.prog().clone();
    let scratch = Analysis::new(&prog);
    session.with_analysis(|a| {
        for s in prog.stmt_ids() {
            let c = Criterion::at_stmt(s);
            for (name, f) in [
                ("conventional", conventional_slice as SliceFn),
                ("agrawal", agrawal_slice),
                ("conservative", conservative_slice),
                ("ball-horwitz", ball_horwitz_slice),
            ] {
                let warm = f(a, &c);
                let cold = f(&scratch, &c);
                assert_eq!(warm.stmts, cold.stmts, "{name} at {s:?}");
                assert_eq!(
                    warm.moved_labels, cold.moved_labels,
                    "{name} labels at {s:?}"
                );
            }
        }
    });
}

#[test]
fn edit_script_matches_scratch_through_the_facade() {
    let p = parse(
        "read(n);
         i = 0;
         sum = 0;
         while (i < n) {
           sum = sum + i;
           i = i + 1;
         }
         write(sum);
         write(i);",
    )
    .unwrap();
    let mut s = EditSession::new(p);
    s.with_analysis(|a| a.warm());

    // Replace, insert, delete, toggle — one edit per path family.
    let script: Vec<Edit> = vec![
        Edit::ReplaceExpr {
            at: StmtPath::root(1),
            with: EditExpr::Num(3),
        },
        Edit::InsertStmt {
            at: StmtPath::root(3).child(BlockSel::Body, 0),
            stmt: NewStmt::Assign {
                var: "sum".into(),
                rhs: EditExpr::Num(0),
            },
        },
        Edit::DeleteStmt {
            at: StmtPath::root(2),
        },
        Edit::ToggleJump {
            at: StmtPath::root(2).child(BlockSel::Body, 1),
            jump: JumpKind::Break,
        },
    ];
    for e in &script {
        s.apply(e).expect("scripted edits are valid");
        assert_matches_scratch(&mut s);
    }
    let stats = s.stats();
    assert_eq!(stats.edits, 4);
    assert_eq!(stats.expr_patches, 1);
    assert_eq!(stats.seeded_resolves, 2);
    assert_eq!(stats.full_rebuilds, 1, "the jump toggle must fall back");
}

#[test]
fn fast_paths_reuse_warm_artifacts() {
    let p = parse("read(a); b = a + 1; c = b * 2; write(c); write(b);").unwrap();
    let mut s = EditSession::new(p);
    s.with_analysis(|a| a.warm());

    // An expression patch keeps all four lazy artifacts: the next warm()
    // must recompute nothing.
    s.apply(&Edit::ReplaceExpr {
        at: StmtPath::root(2),
        with: EditExpr::Num(9),
    })
    .unwrap();
    let st = s.with_analysis(|a| {
        a.warm();
        a.stats()
    });
    assert_eq!(st.reaching_defs, 0);
    assert_eq!(st.pdg_builds, 0);
    assert_eq!(st.pdom_builds, 0);
    assert_eq!(st.lst_builds, 0);

    // A seeded re-solve carries reaching and the PDG over pre-resolved;
    // only the LST is rebuilt lazily.
    s.apply(&Edit::InsertStmt {
        at: StmtPath::root(4),
        stmt: NewStmt::Write {
            arg: EditExpr::Var("b".into()),
        },
    })
    .unwrap();
    let st = s.with_analysis(|a| {
        a.warm();
        a.stats()
    });
    assert_eq!(st.reaching_defs, 0, "reaching arrived warm from the seed");
    assert_eq!(st.pdg_builds, 0, "the PDG was patched, not rebuilt");
    assert_eq!(
        st.pdom_builds, 0,
        "postdominators were shared from the re-solve"
    );
    assert_eq!(st.lst_builds, 1, "lexical positions shifted");
    assert_matches_scratch(&mut s);
}

/// Satellite invariant: a structure-changing edit may not leave stale
/// postdominators or a stale LST behind. The toggle below changes which
/// statements the jump-repair must pull in — if either artifact survived
/// the edit, the session's Figure-7 slice would differ from scratch.
#[test]
fn structure_changing_edits_force_rebuild_not_stale_artifacts() {
    let p = parse(
        "read(n);
         x = 0;
         while (x < n) {
           x = x + 1;
           ;
         }
         write(x);",
    )
    .unwrap();
    let mut s = EditSession::new(p);
    // Warm everything so there *are* stale artifacts to serve by mistake.
    s.with_analysis(|a| a.warm());
    let before = s.with_analysis(|a| {
        agrawal_slice(a, &Criterion::at_stmt(a.prog().at_line(6))).lines(a.prog())
    });
    assert_eq!(before, vec![1, 2, 3, 4, 6], "pinned pre-edit slice");

    // Turn the skip into a break: the loop's postdominator structure and
    // lexical successor relations both change.
    let out = s
        .apply(&Edit::ToggleJump {
            at: StmtPath::root(2).child(BlockSel::Body, 1),
            jump: JumpKind::Break,
        })
        .unwrap();
    assert_eq!(out.path, ApplyPath::FullRebuild);
    assert_eq!(
        out.reused_phases, 0,
        "nothing may survive a structural edit"
    );
    assert_eq!(s.stats().full_rebuilds, 1);

    let after = s.with_analysis(|a| {
        agrawal_slice(a, &Criterion::at_stmt(a.prog().at_line(6))).lines(a.prog())
    });
    assert_eq!(
        after,
        vec![1, 2, 3, 4, 5, 6],
        "pinned post-edit slice: the repair must now carry the break"
    );
    assert_ne!(
        before, after,
        "stale postdominators/LST would reproduce `before`"
    );
    assert_matches_scratch(&mut s);

    // Deleting a jump statement is also structural and must also rebuild.
    let out = s
        .apply(&Edit::DeleteStmt {
            at: StmtPath::root(2).child(BlockSel::Body, 1),
        })
        .unwrap();
    assert_eq!(out.path, ApplyPath::FullRebuild);
    assert_eq!(s.stats().full_rebuilds, 2);
    assert_matches_scratch(&mut s);
}
