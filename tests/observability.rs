//! The observability layer, pinned end-to-end: exact trace events on the
//! paper's figure programs, cache hit/miss exactness through `Analysis`,
//! JSON round-tripping of real captured traces, provenance chains, and the
//! batch engine's per-run counters.

use jumpslice::obs;
use jumpslice::prelude::*;
use jumpslice_core::corpus;

/// The jump admissions an event stream contains, as `(algo, line, round)`.
fn admissions(events: &[obs::Event]) -> Vec<(&'static str, u32, u32)> {
    events
        .iter()
        .filter_map(|e| match e {
            obs::Event::JumpAdmitted {
                algo, line, round, ..
            } => Some((*algo, *line, *round)),
            _ => None,
        })
        .collect()
}

/// The fixpoint-round summaries, as `(round, admitted)`.
fn rounds(events: &[obs::Event]) -> Vec<(u32, u32)> {
    events
        .iter()
        .filter_map(|e| match e {
            obs::Event::Round {
                round, admitted, ..
            } => Some((*round, *admitted)),
            _ => None,
        })
        .collect()
}

/// Figure 3 at line 15: Figure 7 admits the two gotos in one productive
/// round, with the paper's pdom-vs-lexical-successor disagreements.
#[test]
fn fig3_fig7_trace_is_exact() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let (s, events) = obs::capture(|| agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15))));
    assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 13, 15]);
    assert_eq!(s.traversals, 1);
    assert_eq!(
        admissions(&events),
        vec![("fig7", 13, 1), ("fig7", 7, 1)],
        "both gotos admitted in round 1, in pdom-preorder visit order"
    );
    assert_eq!(rounds(&events), vec![(1, 2), (2, 0)]);
    // The admission reasons are the paper's: npd-in-slice != nls-in-slice.
    for e in &events {
        if let obs::Event::JumpAdmitted { line, reason, .. } = e {
            match (line, reason) {
                (
                    13,
                    obs::AdmitReason::PdomLexsuccDisagree {
                        npd_line: Some(3),
                        nls_line: Some(15),
                    },
                )
                | (
                    7,
                    obs::AdmitReason::PdomLexsuccDisagree {
                        npd_line: Some(13),
                        nls_line: Some(8),
                    },
                ) => {}
                other => panic!("unexpected admission {other:?}"),
            }
        }
    }
}

/// Figure 10 at line 9 needs two productive rounds: line 4's goto only
/// becomes admissible after round 1 pulls lines 2 and 7 into the slice.
#[test]
fn fig10_fig7_needs_two_rounds() {
    let p = corpus::fig10();
    let a = Analysis::new(&p);
    let (s, events) = obs::capture(|| agrawal_slice(&a, &Criterion::at_stmt(p.at_line(9))));
    assert_eq!(s.lines(&p), vec![1, 2, 3, 4, 7, 9]);
    assert_eq!(s.traversals, 2);
    assert_eq!(
        admissions(&events),
        vec![("fig7", 7, 1), ("fig7", 2, 1), ("fig7", 4, 2)]
    );
    assert_eq!(rounds(&events), vec![(1, 2), (2, 1), (3, 0)]);
}

/// Figures 12 and 13 on the switch program of Figure 14, criterion line 9
/// (`write(x)`): one-pass Figure 12 admits only case 1's break, for the
/// Figure-7 reason; conservative Figure 13 admits every break merely for
/// being control dependent on an included predicate.
#[test]
fn fig12_fig13_admissions_on_fig14() {
    let p = corpus::fig14();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(9));

    let (s12, ev12) = obs::capture(|| structured_slice(&a, &crit));
    assert_eq!(s12.lines(&p), vec![1, 3, 4, 9]);
    assert_eq!(admissions(&ev12), vec![("fig12", 3, 1)]);
    assert!(ev12.iter().any(|e| matches!(
        e,
        obs::Event::JumpAdmitted {
            algo: "fig12",
            line: 3,
            reason: obs::AdmitReason::PdomLexsuccDisagree {
                npd_line: Some(9),
                nls_line: Some(4),
            },
            ..
        }
    )));

    let (s13, ev13) = obs::capture(|| conservative_slice(&a, &crit));
    assert_eq!(s13.lines(&p), vec![1, 3, 4, 5, 7, 9]);
    assert_eq!(
        admissions(&ev13),
        vec![("fig13", 3, 1), ("fig13", 5, 1), ("fig13", 7, 1)]
    );
    for e in &ev13 {
        if let obs::Event::JumpAdmitted { reason, .. } = e {
            assert_eq!(
                *reason,
                obs::AdmitReason::OnIncludedPredicate { predicate_line: 1 },
                "figure 13 admits on the included switch predicate alone"
            );
        }
    }
}

/// Jump-free programs emit no admissions and no fixpoint rounds beyond the
/// mandatory confirming one.
#[test]
fn fig1_conventional_emits_no_jump_events() {
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let (s, events) = obs::capture(|| agrawal_slice(&a, &Criterion::at_stmt(p.at_line(12))));
    assert_eq!(s.traversals, 0);
    assert!(admissions(&events).is_empty());
    assert_eq!(rounds(&events), vec![(1, 0)]);
}

/// Each `Analysis` artifact is computed exactly once; every later request
/// is a hit. The first Figure-7 slice on a cold analysis misses all five
/// artifacts (the four classic ones plus the sparse kernel's chain index,
/// whose build forces the LST); an identical second slice misses none. The
/// warm slice runs entirely off the chain index — it no longer touches the
/// LST at all.
#[test]
fn analysis_cache_events_are_exact() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));

    let (_, first) = obs::capture(|| agrawal_slice(&a, &crit));
    let m1 = obs::Metrics::of(&first);
    for artifact in ["reaching_defs", "pdg", "pdom", "lst", "chain_index"] {
        assert_eq!(
            m1.cache_misses.get(artifact),
            Some(&1),
            "cold analysis computes {artifact} exactly once"
        );
    }

    let (_, second) = obs::capture(|| agrawal_slice(&a, &crit));
    let m2 = obs::Metrics::of(&second);
    assert!(
        m2.cache_misses.is_empty(),
        "warm analysis recomputes nothing: {:?}",
        m2.cache_misses
    );
    for artifact in ["pdg", "pdom", "chain_index"] {
        assert!(
            m2.cache_hits.get(artifact).is_some_and(|&h| h >= 1),
            "warm analysis hits {artifact}"
        );
    }
    assert_eq!(
        m2.cache_hits.get("lst"),
        None,
        "the warm sparse kernel answers every nearest-successor query from \
         the chain index, never walking the LST"
    );
}

/// The sparse kernel's re-test counter on Figure 10, the two-round
/// program: the dirty-jump worklist runs strictly fewer jump tests than
/// the dense loop's jumps × rounds budget, and the exact count is pinned
/// so a regression to dense re-testing is caught immediately.
#[test]
fn fig10_sparse_retests_stay_below_dense_budget() {
    let p = corpus::fig10();
    let a = Analysis::new(&p);
    let (s, events) = obs::capture(|| agrawal_slice(&a, &Criterion::at_stmt(p.at_line(9))));
    assert_eq!(s.traversals, 2);
    let m = obs::Metrics::of(&events);
    let jumps = a.jumps_in_pdom_preorder().len() as u64;
    let rounds = rounds(&events).len() as u64;
    let retests = m.counts["sparse.retests"];
    assert!(
        retests < jumps * rounds,
        "sparse re-tests ({retests}) must undercut the dense budget \
         ({jumps} jumps x {rounds} rounds)"
    );
    assert_eq!(retests, 4, "exact re-test count on Figure 10");
}

/// A real captured batch-sweep trace (phases, caches, admissions, rounds,
/// batch counters) survives the JSON round trip event-for-event.
#[test]
fn real_trace_round_trips_through_json() {
    let p = corpus::fig8();
    let a = Analysis::new(&p);
    let criteria: Vec<Criterion> = [9usize, 15]
        .iter()
        .map(|&l| Criterion::at_stmt(p.at_line(l)))
        .collect();
    let (_, events) = obs::capture(|| {
        BatchSlicer::new(&a)
            .with_threads(1)
            .slice_all(agrawal_slice, &criteria)
    });
    assert!(!events.is_empty());
    let text = obs::trace_to_json(&events).write_pretty();
    let parsed = obs::Json::parse(&text).expect("emitted trace parses");
    let back = obs::events_from_json(&parsed).expect("parsed trace decodes");
    assert_eq!(back, events);
}

/// Per-phase timings cover the whole pipeline on a cold slice.
#[test]
fn phase_timers_cover_the_pipeline() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let (_, events) = obs::capture(|| agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15))));
    let m = obs::Metrics::of(&events);
    for phase in [
        "reaching_defs",
        "pdg_build",
        "postdominators",
        "lst_build",
        "conventional_closure",
        "fixpoint_round",
        "label_reassoc",
    ] {
        assert!(
            m.phase_count.get(phase).is_some_and(|&c| c >= 1),
            "cold Figure-7 slice times phase {phase}; saw {:?}",
            m.phase_count
        );
    }
    assert_eq!(
        m.phase_count["fixpoint_round"], 2,
        "productive + confirming"
    );
}

/// Provenance: every sliced statement explains itself back to the
/// criterion, and the admitted jumps carry their Figure-7 justification.
#[test]
fn provenance_chains_reach_the_criterion() {
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(15));
    let (s, prov) = agrawal_slice_traced(&a, &crit);
    assert_eq!(s.stmts, agrawal_slice(&a, &crit).stmts);

    for stmt in s.stmts.iter() {
        let chain = prov
            .chain(stmt)
            .unwrap_or_else(|| panic!("line {} has no chain", p.line_of(stmt)));
        let (last, why) = *chain.last().expect("chains are non-empty");
        assert!(
            matches!(why, Why::Criterion | Why::SeedDef | Why::Jump { .. }),
            "chain for line {} ends at a root, got {why:?}",
            p.line_of(stmt)
        );
        if matches!(why, Why::Criterion) {
            assert_eq!(last, p.at_line(15));
        }
    }
    // The two admitted gotos are roots of kind Jump, tagged with the round.
    for line in [7usize, 13] {
        match prov.why(p.at_line(line)) {
            Some(Why::Jump { round: 1, .. }) => {}
            other => panic!("line {line} should be a round-1 jump root, got {other:?}"),
        }
    }
    // And the same chains are available from the untraced slice on demand.
    let replay = s.provenance(&a, &crit).expect("provenance of own slice");
    assert_eq!(replay.why(p.at_line(7)), prov.why(p.at_line(7)));
}

/// The batch engine reports fresh per-run statistics and mirrors them as
/// counter events on the coordinating thread.
#[test]
fn batch_stats_and_counters_agree() {
    let p = corpus::fig8();
    let a = Analysis::new(&p);
    a.warm();
    let criteria: Vec<Criterion> = [9usize, 11, 15]
        .iter()
        .map(|&l| Criterion::at_stmt(p.at_line(l)))
        .collect();
    let batch = BatchSlicer::new(&a).with_threads(2);
    let ((slices, stats), events) =
        obs::capture(|| batch.slice_all_stats(agrawal_slice, &criteria));
    assert_eq!(slices.len(), 3);
    assert_eq!(stats.criteria, 3);
    assert_eq!(stats.threads, 2);
    assert_eq!(stats.per_worker_slices.iter().sum::<usize>(), 3);

    let m = obs::Metrics::of(&events);
    assert_eq!(m.counts["batch.criteria"], 3);
    assert_eq!(m.counts["batch.threads"], 2);
    assert_eq!(m.counts["batch.wall_ns"], stats.wall_ns);
    assert_eq!(m.counts["batch.busy_ns"], stats.busy_ns);
    assert_eq!(m.counts["batch.queue_wait_ns"], stats.queue_wait_ns);
    assert_eq!(m.phase_count["batch_run"], 1, "one BatchRun phase per run");

    // A second run reports its own snapshot, not an accumulation.
    let (_, stats2) = batch.slice_all_stats(agrawal_slice, &criteria[..1]);
    assert_eq!(stats2.criteria, 1);
}
