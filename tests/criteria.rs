//! Weiser-style ⟨location, variable-set⟩ criteria: the general
//! [`Criterion::vars_at`] form, combined with each slicing algorithm.

use jumpslice::prelude::*;
use jumpslice_core::corpus;

#[test]
fn vars_at_matches_statement_criterion_on_writes() {
    // For `write(v)` the statement criterion and the ⟨write, {v}⟩ criterion
    // agree except for the write itself (and the predicates guarding only
    // it): the paper slices by statement, Weiser by variables.
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let v = p.name("positives").unwrap();
    let by_stmt = conventional_slice(&a, &Criterion::at_stmt(p.at_line(12)));
    let by_vars = conventional_slice(&a, &Criterion::vars_at(p.at_line(12), vec![v]));
    let mut expect = by_stmt.stmts.clone();
    expect.remove(p.at_line(12));
    assert_eq!(by_vars.stmts, expect);
}

#[test]
fn multi_variable_criterion_unions_sources() {
    let p = parse(
        "read(a);
         read(b);
         x = a + 1;
         y = b + 1;
         z = 0;
         write(0);",
    )
    .unwrap();
    let an = Analysis::new(&p);
    let (x, y) = (p.name("x").unwrap(), p.name("y").unwrap());
    let crit = Criterion::vars_at(p.at_line(6), vec![x, y]);
    let s = conventional_slice(&an, &crit);
    assert_eq!(s.lines(&p), vec![1, 2, 3, 4], "z = 0 is not a source");
}

#[test]
fn vars_at_with_jump_repair_passes_oracle() {
    // Slicing fig3 on the *variable* positives at the final write: the
    // repaired slice must still replay (the criterion statement itself need
    // not be in the slice, so project on the slice set only).
    let p = corpus::fig3();
    let a = Analysis::new(&p);
    let v = p.name("positives").unwrap();
    let crit = Criterion::vars_at(p.at_line(15), vec![v]);
    let s = agrawal_slice(&a, &crit);
    // Same repair as the statement criterion, minus the write.
    assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 13]);
    check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).unwrap();
}

#[test]
fn variable_not_flowing_to_location_gives_empty_slice() {
    let p = parse("x = 1; L: write(9); y = x;").unwrap();
    let a = Analysis::new(&p);
    let y = p.name("y").unwrap();
    // No definition of y reaches line 2.
    let s = conventional_slice(&a, &Criterion::vars_at(p.at_line(2), vec![y]));
    assert!(s.is_empty());
}

#[test]
fn criterion_at_predicate_statement() {
    // Slicing on a predicate keeps what decides it, not what it guards.
    let p = corpus::fig1();
    let a = Analysis::new(&p);
    let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(8)));
    // Line 8 is `if (x % 2 == 0)`: needs x (line 4), its guards (5, 3).
    assert_eq!(s.lines(&p), vec![3, 4, 5, 8]);
}
