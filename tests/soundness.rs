//! Semantic soundness of the slicing algorithms, checked by executing
//! residual programs against the trajectory-projection oracle (DESIGN.md
//! §4.3, §6).

use jumpslice::prelude::*;
use jumpslice_dataflow::StmtSet;
use jumpslice_testkit::Rng;

/// Reachable write statements — slicing criteria must be live code: a slice
/// "with respect to" a statement that can never execute is degenerate (the
/// paper implicitly assumes reachable criteria throughout).
fn writes(p: &Program) -> Vec<StmtId> {
    let a = Analysis::new(p);
    p.stmt_ids()
        .filter(|&s| {
            matches!(p.stmt(s).kind, jumpslice::lang::StmtKind::Write { .. }) && a.is_live(s)
        })
        .collect()
}

fn check(p: &Program, s: &Slice, inputs: &[Input], what: &str) {
    check_projection(p, &s.stmts, &s.moved_labels, inputs)
        .unwrap_or_else(|e| panic!("{what}: {e}\n{}", print_program(p)));
}

fn arb_structured(rng: &mut Rng) -> Program {
    let seed = rng.gen_range(0u64..300);
    let size = rng.gen_range(15usize..50);
    gen_structured(&GenConfig::sized(seed, size))
}

fn arb_unstructured(rng: &mut Rng) -> Program {
    let seed = rng.gen_range(0u64..300);
    let size = rng.gen_range(10usize..35);
    gen_unstructured(&GenConfig {
        jump_density: 0.3,
        ..GenConfig::sized(seed, size)
    })
}

#[test]
fn fig7_slices_are_sound_on_structured() {
    jumpslice_testkit::check(32, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        let inputs = Input::family(5);
        for c in writes(&p).into_iter().take(4) {
            let s = agrawal_slice(&a, &Criterion::at_stmt(c));
            check(&p, &s, &inputs, "fig7");
        }
    });
}

#[test]
fn fig7_slices_are_sound_on_unstructured() {
    jumpslice_testkit::check(32, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        let inputs = Input::family(5);
        for c in writes(&p).into_iter().take(4) {
            let s = agrawal_slice(&a, &Criterion::at_stmt(c));
            check(&p, &s, &inputs, "fig7");
        }
    });
}

#[test]
fn fig12_and_fig13_are_sound_on_structured() {
    jumpslice_testkit::check(32, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        assert!(is_structured(&a));
        let inputs = Input::family(5);
        for c in writes(&p).into_iter().take(3) {
            let crit = Criterion::at_stmt(c);
            check(&p, &structured_slice(&a, &crit), &inputs, "fig12");
            check(&p, &conservative_slice(&a, &crit), &inputs, "fig13");
        }
    });
}

#[test]
fn ball_horwitz_is_sound_everywhere() {
    jumpslice_testkit::check(32, |rng| {
        let p = arb_unstructured(rng);
        let a = Analysis::new(&p);
        let inputs = Input::family(4);
        for c in writes(&p).into_iter().take(3) {
            let s = ball_horwitz_slice(&a, &Criterion::at_stmt(c));
            check(&p, &s, &inputs, "ball-horwitz");
        }
    });
}

#[test]
fn full_program_is_its_own_slice() {
    jumpslice_testkit::check(32, |rng| {
        let p = arb_unstructured(rng);
        let all: StmtSet = p.stmt_ids().collect();
        let inputs = Input::family(4);
        check_projection(&p, &all, &[], &inputs).unwrap_or_else(|e| panic!("{e}"));
    });
}

#[test]
fn criterion_outputs_are_preserved() {
    // Weiser's original statement: the value sequence written at the
    // criterion is identical in program and slice.
    jumpslice_testkit::check(32, |rng| {
        let p = arb_structured(rng);
        let a = Analysis::new(&p);
        let inputs = Input::family(4);
        for c in writes(&p).into_iter().take(3) {
            let s = agrawal_slice(&a, &Criterion::at_stmt(c));
            for input in &inputs {
                let full = run(&p, input);
                let masked = run_masked(&p, input, &|x| s.contains(x), &s.moved_labels).unwrap();
                if full.fuel_exhausted || masked.fuel_exhausted {
                    continue;
                }
                let vals = |t: &jumpslice::interp::Trajectory| -> Vec<i64> {
                    t.events
                        .iter()
                        .filter(|e| e.stmt == c)
                        .map(|e| e.value.unwrap())
                        .collect()
                };
                assert_eq!(vals(&full), vals(&masked));
            }
        }
    });
}

/// Reproduction finding: Gallagher's rule is unsound even on *structured*
/// programs, not just on the paper's goto-based Figure 16. A `break` whose
/// target block (the statement after the loop) misses the slice is dropped
/// although its omission changes how often the loop body's slice statements
/// execute. Found by property testing; pinned here.
#[test]
fn gallagher_unsound_on_structured_break() {
    let p = parse(
        "read(c);
         read(d);
         read(x);
         while (c) {
           if (d)
             break;
           x = 1;
         }
         while (e) { }
         write(x);",
    )
    .unwrap();
    // Lines: 1-3 reads, 4 while(c), 5 if(d), 6 break, 7 x=1, 8 while(e),
    // 9 write(x).
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(9));
    let g = gallagher_slice(&a, &crit);
    // The break's target block is {while(e)}, which is not in the slice, so
    // Gallagher drops the break...
    assert!(!g.lines(&p).contains(&6), "{:?}", g.lines(&p));
    // ...which the oracle catches:
    let inputs = Input::family(8);
    assert!(check_projection(&p, &g.stmts, &g.moved_labels, &inputs).is_err());
    // The paper's algorithm keeps it and stays sound.
    let s = agrawal_slice(&a, &crit);
    assert!(s.lines(&p).contains(&6));
    check_projection(&p, &s.stmts, &s.moved_labels, &inputs).unwrap();
}

/// After the dead-code refinements, the Figure-13 conservative slice stays
/// sound on programs containing unreachable jumps.
#[test]
fn dead_jumps_never_join_slices() {
    let p = parse(
        "read(v0);
         switch (v0) {
           case 0:
             break;
             break;
         }
         v1 = v0;
         write(v1);",
    )
    .unwrap();
    // Line 4 is the dead second break.
    let a = Analysis::new(&p);
    for line in [5usize, 6] {
        let crit = Criterion::at_stmt(p.at_line(line));
        for s in [
            agrawal_slice(&a, &crit),
            conservative_slice(&a, &crit),
            ball_horwitz_slice(&a, &crit),
            gallagher_slice(&a, &crit),
            lyle_slice(&a, &crit),
            jzr_slice(&a, &crit),
        ] {
            assert!(!s.contains(p.at_line(4)), "dead break included");
            check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(6)).unwrap();
        }
    }
}
