//! The differential fuzzer as a test suite: a fixed-seed smoke run, the
//! shrunk counterexamples it produced (checked in verbatim as emitted by
//! `difftest --record-expected`), and end-to-end label re-association
//! cases exercised through the projection oracle.

use jumpslice::prelude::*;

/// A small fixed-seed differential run must complete with zero pinned-claim
/// violations: every algorithm that claims soundness on a scope passes the
/// projection oracle there, every pinned lattice relation holds, and no
/// slicer panics.
#[test]
fn fixed_seed_differential_run_is_clean() {
    let cfg = DiffConfig {
        seeds: 3,
        target_stmts: 20,
        num_inputs: 3,
        ..DiffConfig::smoke()
    };
    let report = run_difftest(&cfg);
    assert_eq!(
        report.hard_findings().count(),
        0,
        "pinned-claim violations: {:#?}",
        report.hard_findings().collect::<Vec<_>>()
    );
    assert!(report.programs > 0 && report.verified > 0);
    assert!(report.lattice_checks > 0);
    assert!(
        report.dynamic_checks > 0,
        "dynamic containment (dynamic ⊆ conventional) must be fuzzed too"
    );
}

/// Dynamic-containment witness, shrunk from the fuzzer's Property-3 sweep
/// to the smallest program where the containment is *strict*: a two-armed
/// branch of which any one input executes exactly one arm. The dynamic
/// slice keeps only the executed arm; the conventional static slice must
/// keep both; and the dynamic slice must never stray outside it.
#[test]
fn difftest_dynamic_strictly_inside_conventional() {
    let p = parse(
        "read(x);
         if (x > 0) {
           y = 1;
         } else {
           y = 2;
         }
         write(y);",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let sink = p.at_line(5); // write(y)
    let stat = conventional_slice(&a, &Criterion::at_stmt(sink));
    assert!(
        stat.contains(p.at_line(3)) && stat.contains(p.at_line(4)),
        "statically, both arms can define y: {}",
        stat.render(&p)
    );

    for input in Input::family(8) {
        let d = dynamic_slice(&p, &input, &DynCriterion::last(sink));
        assert!(d.criterion_found, "write(y) always executes");
        // Containment: every dynamically relevant statement is statically
        // relevant (the property the fuzzer checks on random programs).
        for s in d.stmts.iter() {
            assert!(
                stat.contains(s),
                "dynamic slice strays outside conventional at {s:?}"
            );
        }
        // Strictness: exactly one arm executed, so exactly one is kept.
        let arms = [p.at_line(3), p.at_line(4)]
            .into_iter()
            .filter(|&s| d.stmts.contains(s))
            .count();
        assert_eq!(arms, 1, "one concrete run takes one arm");
        assert!(d.stmts.len() < stat.stmts.len());
    }
}

// ---------------------------------------------------------------------------
// Shrunk counterexamples, exactly as emitted by the fuzzer. Each documents a
// *known* unsoundness (the paper's motivation); the companion assertion
// checks Figure 7 stays sound on the very same program and criterion.
// ---------------------------------------------------------------------------

/// Shrunk by the difftest fuzzer (seed 0, paper-fragment family).
///
/// Dropping the `break` from the slice resurrects the infinite outer loop:
/// the residual program spins until fuel runs out instead of producing the
/// original three-event trajectory.
#[test]
fn difftest_conventional_projection_paper_fragment_seed0() {
    let p = parse(
        "while (1) {\n\
           while (0) {\n\
             v2 = v2;\n\
           }\n\
           break;\n\
         }\n\
         write(v2);",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(5));
    let s = conventional_slice(&a, &crit);
    // Known-unsound algorithm: the projection oracle must catch it.
    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());
    // The paper's algorithm keeps the break and stays sound.
    let ag = agrawal_slice(&a, &crit);
    check_projection(&p, &ag.stmts, &ag.moved_labels, &Input::family(8)).unwrap();
}

/// Shrunk by the difftest fuzzer (seed 0, paper-fragment family).
#[test]
fn difftest_gallagher_projection_paper_fragment_seed0() {
    let p = parse(
        "while (1) {\n\
           while (0) {\n\
             v2 = v2;\n\
           }\n\
           break;\n\
         }\n\
         while (0) {\n\
         }\n\
         write(v2);",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(6));
    let s = gallagher_slice(&a, &crit);
    // Known-unsound algorithm: the projection oracle must catch it.
    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());
    let ag = agrawal_slice(&a, &crit);
    check_projection(&p, &ag.stmts, &ag.moved_labels, &Input::family(8)).unwrap();
}

/// Shrunk by the difftest fuzzer (seed 0, unstructured family).
///
/// `write(0)` is bypassed by `goto L21` in the original program; a slice
/// that drops the goto lets the write execute — one extra trajectory event.
#[test]
fn difftest_conventional_projection_unstructured_seed0() {
    let p = parse(
        "L10: if (1) {\n\
           goto L21;\n\
         }\n\
         L18: write(0);\n\
         L21: if (0) goto L22;\n\
         L22: v1 = 0;",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(3));
    let s = conventional_slice(&a, &crit);
    // Known-unsound algorithm: the projection oracle must catch it.
    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());
    let ag = agrawal_slice(&a, &crit);
    check_projection(&p, &ag.stmts, &ag.moved_labels, &Input::family(8)).unwrap();
}

/// Shrunk by the difftest fuzzer (seed 0, unstructured family).
///
/// Lyle's "include the whole loop" hedge is genuinely unsound on goto
/// programs — the paper says as much in §5, and the fuzzer confirms it on a
/// six-statement program.
#[test]
fn difftest_lyle_projection_unstructured_seed0() {
    let p = parse(
        "L10: if (1) {\n\
           goto L21;\n\
         }\n\
         L18: write(0);\n\
         L21: if (0) goto L22;\n\
         L22: v1 = 0;",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(3));
    let s = lyle_slice(&a, &crit);
    // Known-unsound algorithm: the projection oracle must catch it.
    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());
    let ag = agrawal_slice(&a, &crit);
    check_projection(&p, &ag.stmts, &ag.moved_labels, &Input::family(8)).unwrap();
}

/// Shrunk by the difftest fuzzer (seed 1, unstructured family).
#[test]
fn difftest_conventional_projection_unstructured_seed1() {
    let p = parse(
        "L26: if (1) {\n\
           goto LEND;\n\
         }\n\
         L29: v1 = v0;\n\
         LEND: write(v0);\n\
         write(v1);",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(5));
    let s = conventional_slice(&a, &crit);
    // Known-unsound algorithm: the projection oracle must catch it.
    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());
    let ag = agrawal_slice(&a, &crit);
    check_projection(&p, &ag.stmts, &ag.moved_labels, &Input::family(8)).unwrap();
}

// ---------------------------------------------------------------------------
// Label re-association, end to end: slice → moved_labels → residual
// execution through the oracle (the paths satellite 4 pins down).
// ---------------------------------------------------------------------------

/// Two gotos share one label whose carrier falls out of the slice. The
/// label must be re-associated exactly once (one `moved_labels` entry, not
/// one per goto) and the residual program must still replay the original
/// trajectory.
#[test]
fn shared_dangling_label_is_reassociated_once() {
    let p = parse(
        "read(x);
         if (x > 0) goto SKIP;
         if (x < 0) goto SKIP;
         y = 1;
         SKIP: z = 5;
         write(y);",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(6));
    let s = agrawal_slice(&a, &crit);

    // Both gotos can bypass `y = 1`, so both are in the slice; `z = 5` is
    // irrelevant to `write(y)` and stays out, leaving SKIP dangling.
    assert!(s.contains(p.at_line(2)) && s.contains(p.at_line(3)));
    assert!(!s.contains(p.at_line(5)), "{}", s.render(&p));

    assert_eq!(s.moved_labels.len(), 1, "{:?}", s.moved_labels);
    let (label, dest) = s.moved_labels[0];
    assert_eq!(p.label_str(label), "SKIP");
    // Nearest postdominator of `z = 5` inside the slice is `write(y)`.
    assert_eq!(dest, Some(p.at_line(6)));

    check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).unwrap();
}

/// A dangling label whose target has no postdominator left in the slice is
/// re-associated with the program exit (`SlicePoint` = `None`), and the
/// interpreter treats a jump there as normal termination.
#[test]
fn dangling_label_reassociates_to_exit() {
    let p = parse(
        "read(y);
         if (y > 0) goto END;
         write(y);
         END: z = 1;",
    )
    .unwrap();
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(3));
    let s = agrawal_slice(&a, &crit);

    assert!(s.contains(p.at_line(2)), "goto can bypass the criterion");
    assert!(!s.contains(p.at_line(4)), "{}", s.render(&p));

    assert_eq!(s.moved_labels.len(), 1, "{:?}", s.moved_labels);
    let (label, dest) = s.moved_labels[0];
    assert_eq!(p.label_str(label), "END");
    assert_eq!(dest, None, "END must move to the exit");

    check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).unwrap();
}
