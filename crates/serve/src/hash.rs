//! Content hashing for cache keys.
//!
//! Programs are registered under the FNV-1a 64-bit hash of their source
//! text: cheap, dependency-free, and stable across processes, so a client
//! can compute the key itself and skip the `load` round-trip for programs
//! it knows the daemon has seen. Keys print as fixed-width hex
//! (`"a1b2…"`), the form every request's `program` field uses.

/// FNV-1a 64-bit over the raw source bytes.
pub fn content_hash(source: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in source.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The wire form of a cache key: 16 lowercase hex digits.
pub fn key_string(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses the wire form back; `None` for anything that is not exactly 16
/// hex digits.
pub fn parse_key(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a 64 test vectors: empty input is the offset basis.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash("a"), content_hash("b"));
    }

    #[test]
    fn key_round_trips() {
        for src in ["", "x = 1;", "read(x); write(x);"] {
            let h = content_hash(src);
            assert_eq!(parse_key(&key_string(h)), Some(h));
        }
        assert_eq!(parse_key("nope"), None);
        assert_eq!(parse_key("00000000000000000"), None, "17 digits");
        assert_eq!(parse_key("zzzzzzzzzzzzzzzz"), None);
    }
}
