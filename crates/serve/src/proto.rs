//! The JSON-lines wire protocol.
//!
//! One request per line, one response per line, in order. Every request is
//! a JSON object with an `"op"` field; an optional `"id"` (any JSON value)
//! is echoed verbatim in the response so clients can correlate. Responses
//! always carry `"ok": true|false`; failures add `"error"` with a
//! human-readable message and never kill the daemon.
//!
//! Ops:
//!
//! | op        | fields                                                        |
//! |-----------|---------------------------------------------------------------|
//! | `load`    | `source` (program text)                                       |
//! | `slice`   | `program` (key), `algo`, `criteria`, opt. `deadline_ms`       |
//! | `edit`    | `program` (key), `edit` (see [`parse_edit`])                  |
//! | `chop`    | `program` (key), `source_line`, `sink_line`, opt. `executable`|
//! | `explain` | `program` (key), `line`                                       |
//! | `stats`   | —                                                             |
//! | `shutdown`| —                                                             |
//!
//! `criteria` is an array of `{"line": N}` (slice on everything the
//! statement uses, [`jumpslice_core::Criterion::at_stmt`] semantics when the statement
//! writes) or `{"line": N, "vars": ["x", …]}`. `program` keys are the
//! 16-hex-digit content hashes `load` returns.
//!
//! This module only *parses* requests into [`Request`]; execution lives in
//! [`crate::engine`], and everything here is pure and panic-free on
//! arbitrary input.

use crate::hash;
use jumpslice_incr::{Edit, EditExpr, JumpKind, NewStmt};
use jumpslice_lang::{parse, BlockSel, StmtKind, StmtPath};
use jumpslice_obs::Json;

/// A slicing criterion as transmitted: a 1-based lexical line, plus an
/// optional explicit variable set (by name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CritSpec {
    /// 1-based lexical line of the criterion statement.
    pub line: usize,
    /// Variables of interest; `None` means "what the statement uses".
    pub vars: Option<Vec<String>>,
}

/// A parsed, typed request.
#[derive(Debug)]
pub enum Request {
    /// Register a program; responds with its content key.
    Load {
        /// Source text of the program.
        source: String,
    },
    /// Slice a loaded program at one or more criteria.
    Slice {
        /// Content key from a prior `load`.
        program: u64,
        /// Registered algorithm name (`fig7`, `conventional`, `fig12`,
        /// `fig13`).
        algo: String,
        /// Criteria to answer, in request order.
        criteria: Vec<CritSpec>,
        /// Soft compute budget; blowing it degrades the answer rather than
        /// failing it (see `crate::engine`).
        deadline_ms: Option<u64>,
    },
    /// Apply one edit to a loaded program; the program moves to the new
    /// content key returned in the response.
    Edit {
        /// Content key from a prior `load` (or prior `edit` response).
        program: u64,
        /// The edit to apply.
        edit: Edit,
    },
    /// Statements on some dependence path from `source_line` to
    /// `sink_line`.
    Chop {
        /// Content key.
        program: u64,
        /// 1-based line of the chop source.
        source_line: usize,
        /// 1-based line of the chop sink.
        sink_line: usize,
        /// Restrict to executable (jump-pruned) paths.
        executable: bool,
    },
    /// Provenance report for the Figure-7 slice at `line`.
    Explain {
        /// Content key.
        program: u64,
        /// 1-based line of the criterion.
        line: usize,
    },
    /// Cache and request counters.
    Stats,
    /// Drain and exit cleanly.
    Shutdown,
}

fn field<'j>(obj: &'j Json, key: &str, op: &str) -> Result<&'j Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("op '{op}' requires field '{key}'"))
}

fn str_field(obj: &Json, key: &str, op: &str) -> Result<String, String> {
    field(obj, key, op)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field '{key}' must be a string"))
}

fn line_field(obj: &Json, key: &str, op: &str) -> Result<usize, String> {
    let n = field(obj, key, op)?
        .as_num()
        .ok_or_else(|| format!("field '{key}' must be a number"))?;
    if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
        return Err(format!("field '{key}' must be a non-negative integer"));
    }
    Ok(n as usize)
}

fn program_field(obj: &Json, op: &str) -> Result<u64, String> {
    let key = str_field(obj, "program", op)?;
    hash::parse_key(&key).ok_or_else(|| format!("'{key}' is not a program key (16 hex digits)"))
}

/// Parses one request line. Errors are complete sentences suitable for the
/// response's `error` field.
pub fn parse_request(j: &Json) -> Result<Request, String> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request must be an object with a string 'op' field")?;
    match op {
        "load" => Ok(Request::Load {
            source: str_field(j, "source", op)?,
        }),
        "slice" => {
            let criteria = field(j, "criteria", op)?
                .as_arr()
                .ok_or("field 'criteria' must be an array")?
                .iter()
                .map(|c| {
                    let line = line_field(c, "line", op)?;
                    let vars = match c.get("vars") {
                        None | Some(Json::Null) => None,
                        Some(Json::Arr(vs)) => Some(
                            vs.iter()
                                .map(|v| {
                                    v.as_str()
                                        .map(str::to_owned)
                                        .ok_or_else(|| "'vars' entries must be strings".to_owned())
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        ),
                        Some(_) => return Err("'vars' must be an array of strings".to_owned()),
                    };
                    Ok(CritSpec { line, vars })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if criteria.is_empty() {
                return Err("'criteria' must not be empty".to_owned());
            }
            let deadline_ms = match j.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    let n = v.as_num().ok_or("'deadline_ms' must be a number")?;
                    if n.fract() != 0.0 || n < 0.0 {
                        return Err("'deadline_ms' must be a non-negative integer".to_owned());
                    }
                    Some(n as u64)
                }
            };
            Ok(Request::Slice {
                program: program_field(j, op)?,
                algo: str_field(j, "algo", op)?,
                criteria,
                deadline_ms,
            })
        }
        "edit" => Ok(Request::Edit {
            program: program_field(j, op)?,
            edit: parse_edit(field(j, "edit", op)?)?,
        }),
        "chop" => Ok(Request::Chop {
            program: program_field(j, op)?,
            source_line: line_field(j, "source_line", op)?,
            sink_line: line_field(j, "sink_line", op)?,
            executable: match j.get("executable") {
                None | Some(Json::Null) => false,
                Some(v) => v.as_bool().ok_or("'executable' must be a boolean")?,
            },
        }),
        "explain" => Ok(Request::Explain {
            program: program_field(j, op)?,
            line: line_field(j, "line", op)?,
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Parses a structural path: an array of `[selector, index]` steps, where
/// the selector is `"body"`, `"then"`, `"else"`, or `{"arm": N}`. The
/// first step always selects in the program's top-level body, so its
/// selector must be `"body"`.
pub fn parse_path(j: &Json) -> Result<StmtPath, String> {
    let steps = j.as_arr().ok_or("edit 'path' must be an array of steps")?;
    let mut path: Option<StmtPath> = None;
    for step in steps {
        let pair = step
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or("each path step must be a [selector, index] pair")?;
        let index = pair[1]
            .as_num()
            // Bounded like `line_field`: a 1e308 index would silently
            // saturate the cast instead of being the nonsense it is.
            .filter(|n| n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(n))
            .ok_or("path step index must be a non-negative integer")? as usize;
        let sel = match &pair[0] {
            Json::Str(s) => match s.as_str() {
                "body" => BlockSel::Body,
                "then" => BlockSel::Then,
                "else" => BlockSel::Else,
                other => return Err(format!("unknown path selector '{other}'")),
            },
            obj @ Json::Obj(_) => {
                let arm = obj
                    .get("arm")
                    .and_then(Json::as_num)
                    .filter(|n| n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(n))
                    .ok_or("object path selector must be {\"arm\": N}")?;
                BlockSel::Arm(arm as usize)
            }
            _ => return Err("path selector must be a string or {\"arm\": N}".to_owned()),
        };
        path = Some(match path {
            None => {
                if sel != BlockSel::Body {
                    return Err("the first path step must select in 'body'".to_owned());
                }
                StmtPath::root(index)
            }
            Some(p) => p.child(sel, index),
        });
    }
    path.ok_or_else(|| "edit 'path' must have at least one step".to_owned())
}

/// Parses an expression payload by round-tripping it through the program
/// parser (`x = (<text>);`), so the wire syntax is exactly the language's
/// expression syntax.
pub fn parse_expr_text(text: &str) -> Result<EditExpr, String> {
    let wrapped = format!("x = {text};");
    let p = parse(&wrapped).map_err(|e| format!("cannot parse expression '{text}': {e}"))?;
    let root = *p
        .body()
        .first()
        .ok_or_else(|| format!("cannot parse expression '{text}'"))?;
    match &p.stmt(root).kind {
        StmtKind::Assign { rhs, .. } => Ok(EditExpr::from_expr(&p, rhs)),
        _ => Err(format!("cannot parse expression '{text}'")),
    }
}

/// Parses the `edit` payload of an `edit` request:
///
/// ```json
/// {"kind": "replace_expr", "path": [["body",0]], "expr": "x + 1"}
/// {"kind": "insert", "path": [["body",2]], "stmt": {"kind":"assign","var":"x","expr":"0"}}
/// {"kind": "delete", "path": [["body",1],["then",0]]}
/// {"kind": "toggle_jump", "path": [["body",3]], "jump": "break"}
/// {"kind": "toggle_jump", "path": [["body",3]], "jump": {"goto": "L"}}
/// ```
pub fn parse_edit(j: &Json) -> Result<Edit, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("edit must be an object with a string 'kind' field")?;
    let at = parse_path(field(j, "path", "edit")?)?;
    match kind {
        "replace_expr" => Ok(Edit::ReplaceExpr {
            at,
            with: parse_expr_text(&str_field(j, "expr", "edit")?)?,
        }),
        "insert" => {
            let s = field(j, "stmt", "edit")?;
            let skind = s
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("inserted 'stmt' must have a string 'kind'")?;
            let stmt = match skind {
                "assign" => NewStmt::Assign {
                    var: str_field(s, "var", "insert")?,
                    rhs: parse_expr_text(&str_field(s, "expr", "insert")?)?,
                },
                "read" => NewStmt::Read {
                    var: str_field(s, "var", "insert")?,
                },
                "write" => NewStmt::Write {
                    arg: parse_expr_text(&str_field(s, "expr", "insert")?)?,
                },
                "skip" => NewStmt::Skip,
                other => return Err(format!("unknown inserted statement kind '{other}'")),
            };
            Ok(Edit::InsertStmt { at, stmt })
        }
        "delete" => Ok(Edit::DeleteStmt { at }),
        "toggle_jump" => {
            let jump = match field(j, "jump", "edit")? {
                Json::Str(s) => match s.as_str() {
                    "break" => JumpKind::Break,
                    "continue" => JumpKind::Continue,
                    "return" => JumpKind::Return,
                    other => return Err(format!("unknown jump kind '{other}'")),
                },
                obj @ Json::Obj(_) => JumpKind::Goto(str_field(obj, "goto", "toggle_jump")?),
                _ => return Err("'jump' must be a string or {\"goto\": label}".to_owned()),
            };
            Ok(Edit::ToggleJump { at, jump })
        }
        other => Err(format!("unknown edit kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> Result<Request, String> {
        parse_request(&Json::parse(line).expect("test JSON parses"))
    }

    #[test]
    fn parses_every_op() {
        assert!(matches!(
            req(r#"{"op":"load","source":"x = 1;"}"#),
            Ok(Request::Load { .. })
        ));
        let r = req(r#"{"op":"slice","program":"00000000000000ff","algo":"fig7",
               "criteria":[{"line":3},{"line":1,"vars":["x"]}],"deadline_ms":50}"#);
        match r {
            Ok(Request::Slice {
                program,
                criteria,
                deadline_ms,
                ..
            }) => {
                assert_eq!(program, 0xff);
                assert_eq!(criteria.len(), 2);
                assert_eq!(criteria[1].vars.as_deref(), Some(&["x".to_owned()][..]));
                assert_eq!(deadline_ms, Some(50));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(req(r#"{"op":"stats"}"#), Ok(Request::Stats)));
        assert!(matches!(req(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown)));
        assert!(matches!(
            req(
                r#"{"op":"chop","program":"0000000000000001","source_line":1,
                   "sink_line":4,"executable":true}"#
            ),
            Ok(Request::Chop {
                executable: true,
                ..
            })
        ));
    }

    #[test]
    fn hostile_requests_become_errors_not_panics() {
        for bad in [
            r#"{"op":"slice"}"#,
            r#"{"op":"slice","program":"zz"}"#,
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":[]}"#,
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":[{"line":-1}]}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"no_op_at_all":true}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"replace_expr","path":[],"expr":"x"}}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"replace_expr","path":[["then",0]],"expr":"x"}}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"replace_expr","path":[["body",0]],"expr":"x ="}}"#,
            // Hostile shapes (ISSUE 9 hardening): wrong field types,
            // oversized/overflowing numbers, and truncated structures must
            // be rejections, not panics or bogus acceptances.
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":"not-an-array"}"#,
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":[{"line":1.5}]}"#,
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":[{"line":1e308}]}"#,
            r#"{"op":"slice","program":"0000000000000001","algo":"fig7","criteria":[{"line":1,"vars":[42]}]}"#,
            r#"{"op":"slice","program":"00000000000000010000","algo":"fig7","criteria":[{"line":1}]}"#,
            r#"{"op":"slice","program":17,"algo":"fig7","criteria":[{"line":1}]}"#,
            r#"{"op":"load","source":12345}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":"not-an-object"}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"replace_expr","path":[["body",1e308]],"expr":"x"}}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"insert","path":[["body",0]],"stmt":{"kind":"assign"}}}"#,
            r#"{"op":"edit","program":"0000000000000001","edit":{"kind":"toggle_jump","path":[["body",0]],"jump":{"warp":"L"}}}"#,
            r#"{"op":"chop","program":"0000000000000001"}"#,
        ] {
            assert!(req(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn edit_payloads_round_trip_through_the_wire_forms() {
        let e = parse_edit(
            &Json::parse(
                r#"{"kind":"replace_expr","path":[["body",1],["then",0]],"expr":"a + b * 2"}"#,
            )
            .unwrap(),
        )
        .expect("valid edit");
        assert!(matches!(e, Edit::ReplaceExpr { .. }));

        let e = parse_edit(
            &Json::parse(r#"{"kind":"insert","path":[["body",0]],"stmt":{"kind":"assign","var":"t","expr":"0"}}"#)
                .unwrap(),
        )
        .expect("valid edit");
        assert!(matches!(e, Edit::InsertStmt { .. }));

        let e = parse_edit(
            &Json::parse(r#"{"kind":"toggle_jump","path":[["body",2]],"jump":{"goto":"L"}}"#)
                .unwrap(),
        )
        .expect("valid edit");
        assert!(matches!(
            e,
            Edit::ToggleJump {
                jump: JumpKind::Goto(_),
                ..
            }
        ));
    }
}
