//! The multi-program analysis cache.
//!
//! The daemon's whole value is *reuse*: the first request against a
//! program pays for parsing and the lazy analyses; every later request —
//! including edits, which selectively invalidate — rides the warm
//! [`EditSession`]. Entries are keyed by the content hash of the source
//! text (see [`crate::hash`]), so identical programs loaded by different
//! clients share one session, and an edited program *moves* to its new
//! content key instead of duplicating.
//!
//! Eviction is byte-budgeted LRU: each entry carries a size estimate
//! (source text plus the bitset-quadratic analysis artifacts), and
//! inserting past the budget evicts least-recently-used entries — except
//! the newest one, so a single oversized program still serves, and except
//! checked-out entries, which a worker is actively using.
//!
//! Concurrency is **check-out/check-in**: a worker takes the whole entry
//! out of the map (leaving a marker), works on it without any lock held,
//! and checks it back in — possibly under a new key, when an edit changed
//! the program's content. A second worker needing the same program waits
//! on a condvar rather than spinning. Counters mirror onto the `obs` layer
//! (`serve.cache.hit/miss/evict`) for single-threaded in-process callers
//! with a trace sink installed; the daemon's `stats` op reads the same
//! numbers through [`CacheStats`].

use jumpslice_incr::EditSession;
use jumpslice_obs as obs;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// A cached program: the warm session plus the bookkeeping the cache
/// needs.
#[derive(Debug)]
pub struct Entry {
    /// The warm edit-and-reslice session (owns the program and every
    /// analysis artifact computed for it so far).
    pub session: EditSession,
    /// The source text the entry was registered under (the preimage of its
    /// key).
    pub source: String,
    /// Estimated resident bytes (see [`estimate_bytes`]).
    pub bytes: usize,
}

impl Entry {
    /// Builds an entry, estimating its resident size.
    pub fn new(session: EditSession, source: String) -> Entry {
        let bytes = estimate_bytes(source.len(), session.prog().len());
        Entry {
            session,
            source,
            bytes,
        }
    }
}

/// Resident-size estimate for one cached program: the source text plus the
/// analysis artifacts. The dominant warm artifacts are bitset-quadratic
/// (reaching-defs IN sets, PDG closures scratch, chain masks ≈ n²/8 bits
/// each), plus per-statement structures; the constants here deliberately
/// round *up* so the budget errs toward evicting.
pub fn estimate_bytes(source_len: usize, stmts: usize) -> usize {
    source_len + 512 + stmts * 256 + (stmts * stmts) / 2
}

/// A snapshot of the cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident (including checked-out ones).
    pub entries: usize,
    /// Estimated resident bytes (including checked-out entries).
    pub bytes: usize,
    /// Requests that found their program resident.
    pub hits: u64,
    /// Requests that missed (including `load`s of new programs).
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

/// One map slot: the entry itself, or a marker that a worker has it.
enum Slot {
    /// Resident; `tick` is the last-touch stamp LRU eviction orders by.
    Present { entry: Box<Entry>, tick: u64 },
    /// A worker checked the entry out; `bytes` keeps the budget accounting
    /// honest while it is away.
    CheckedOut { bytes: usize },
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
    bytes: usize,
    stats: CacheStats,
}

/// The shared LRU described in the module docs.
pub struct AnalysisCache {
    byte_budget: usize,
    inner: Mutex<Inner>,
    /// Signalled on every check-in and abort, waking workers queued behind
    /// a checked-out entry.
    returned: Condvar,
}

impl AnalysisCache {
    /// An empty cache evicting past `byte_budget` estimated bytes.
    pub fn new(byte_budget: usize) -> AnalysisCache {
        AnalysisCache {
            byte_budget,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                bytes: 0,
                stats: CacheStats::default(),
            }),
            returned: Condvar::new(),
        }
    }

    /// Registers `entry` under `key`. An existing resident entry for the
    /// same content is kept (it is at least as warm) and counted as a hit;
    /// a new registration counts as a miss and may evict others. Returns
    /// whether the program was already resident.
    pub fn insert(&self, key: u64, entry: Entry) -> bool {
        let mut g = self.inner.lock().expect("cache lock");
        g.tick += 1;
        let tick = g.tick;
        match g.slots.get_mut(&key) {
            Some(Slot::Present { tick: t, .. }) => {
                *t = tick;
                g.stats.hits += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.hit",
                    value: g.stats.hits,
                });
                true
            }
            Some(Slot::CheckedOut { .. }) => {
                // A worker is using this very program; the registration is
                // a hit and the in-flight entry stays canonical.
                g.stats.hits += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.hit",
                    value: g.stats.hits,
                });
                true
            }
            None => {
                g.bytes += entry.bytes;
                g.slots.insert(
                    key,
                    Slot::Present {
                        entry: Box::new(entry),
                        tick,
                    },
                );
                g.stats.misses += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.miss",
                    value: g.stats.misses,
                });
                self.evict_over_budget(&mut g);
                false
            }
        }
    }

    /// Takes the entry for `key` out of the map, waiting while another
    /// worker has it. `None` means the program is not resident (never
    /// loaded, or evicted) — counted as a miss.
    pub fn checkout(&self, key: u64) -> Option<Entry> {
        let mut g = self.inner.lock().expect("cache lock");
        loop {
            match g.slots.get(&key) {
                Some(Slot::Present { .. }) => {
                    g.tick += 1;
                    let Some(Slot::Present { entry, .. }) = g.slots.remove(&key) else {
                        unreachable!("matched Present above");
                    };
                    g.slots.insert(key, Slot::CheckedOut { bytes: entry.bytes });
                    g.stats.hits += 1;
                    obs::record(|| obs::Event::Count {
                        name: "serve.cache.hit",
                        value: g.stats.hits,
                    });
                    return Some(*entry);
                }
                Some(Slot::CheckedOut { .. }) => {
                    g = self.returned.wait(g).expect("cache lock");
                }
                None => {
                    g.stats.misses += 1;
                    obs::record(|| obs::Event::Count {
                        name: "serve.cache.miss",
                        value: g.stats.misses,
                    });
                    return None;
                }
            }
        }
    }

    /// Returns a checked-out entry, under `new_key` (== `old_key` unless an
    /// edit changed the program's content). If the new key collides with a
    /// resident entry — the edit recreated a program someone else has
    /// loaded — the returned session wins: it is warmer.
    pub fn checkin(&self, old_key: u64, new_key: u64, entry: Entry) {
        let mut g = self.inner.lock().expect("cache lock");
        if let Some(Slot::CheckedOut { bytes }) = g.slots.remove(&old_key) {
            g.bytes = g.bytes.saturating_sub(bytes);
        }
        if let Some(old) = g.slots.remove(&new_key) {
            // Collision: drop the colder twin (or a stale marker — workers
            // waiting on it will re-probe and find the fresh entry).
            if let Slot::Present { entry: e, .. } = old {
                g.bytes = g.bytes.saturating_sub(e.bytes);
            } else if let Slot::CheckedOut { bytes } = old {
                g.bytes = g.bytes.saturating_sub(bytes);
            }
        }
        g.tick += 1;
        let tick = g.tick;
        g.bytes += entry.bytes;
        g.slots.insert(
            new_key,
            Slot::Present {
                entry: Box::new(entry),
                tick,
            },
        );
        self.evict_over_budget(&mut g);
        drop(g);
        self.returned.notify_all();
    }

    /// Drops a checked-out entry instead of returning it — the safety
    /// valve for a request that panicked mid-use, where the session's
    /// internal state can no longer be trusted.
    pub fn abort_checkout(&self, key: u64) {
        let mut g = self.inner.lock().expect("cache lock");
        if let Some(Slot::CheckedOut { bytes }) = g.slots.remove(&key) {
            g.bytes = g.bytes.saturating_sub(bytes);
        }
        drop(g);
        self.returned.notify_all();
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: g.slots.len(),
            bytes: g.bytes,
            ..g.stats
        }
    }

    /// Evicts least-recently-touched resident entries until the estimate
    /// fits the budget. Never evicts checked-out entries, and always keeps
    /// at least one resident entry, so a single over-budget program still
    /// serves rather than thrashing.
    fn evict_over_budget(&self, g: &mut Inner) {
        while g.bytes > self.byte_budget {
            let resident = g
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Present { tick, .. } => Some((*k, *tick)),
                    Slot::CheckedOut { .. } => None,
                })
                .collect::<Vec<_>>();
            if resident.len() <= 1 {
                break;
            }
            let (victim, _) = resident
                .into_iter()
                .min_by_key(|&(_, tick)| tick)
                .expect("len > 1 checked");
            if let Some(Slot::Present { entry, .. }) = g.slots.remove(&victim) {
                g.bytes = g.bytes.saturating_sub(entry.bytes);
                g.stats.evictions += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.evict",
                    value: g.stats.evictions,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::content_hash;
    use jumpslice_lang::parse;

    fn entry(src: &str) -> (u64, Entry) {
        let p = parse(src).expect("test source parses");
        let session = EditSession::try_new(p).expect("analyzable");
        (content_hash(src), Entry::new(session, src.to_owned()))
    }

    #[test]
    fn checkout_checkin_round_trip() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        assert!(!cache.insert(k, e), "first registration is new");
        let got = cache.checkout(k).expect("resident");
        assert_eq!(got.source, "x = 1; write(x);");
        cache.checkin(k, k, got);
        assert!(cache.checkout(k).is_some(), "still resident after checkin");
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn reloading_a_resident_program_is_a_hit() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let (_, e2) = entry("x = 1; write(x);");
        assert!(cache.insert(k, e2), "second registration hits");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_but_keeps_the_newest() {
        let (k1, e1) = entry("a = 1; write(a);");
        let budget = e1.bytes; // room for roughly one entry
        let cache = AnalysisCache::new(budget);
        cache.insert(k1, e1);
        let (k2, e2) = entry("b = 2; write(b);");
        cache.insert(k2, e2);
        assert!(cache.checkout(k1).is_none(), "LRU victim evicted");
        let got = cache.checkout(k2).expect("newest survives");
        cache.checkin(k2, k2, got);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn touching_reorders_the_lru() {
        let (k1, e1) = entry("a = 1; write(a);");
        let (k2, e2) = entry("b = 2; write(b);");
        let budget = e1.bytes + e2.bytes;
        let cache = AnalysisCache::new(budget);
        cache.insert(k1, e1);
        cache.insert(k2, e2);
        // Touch k1 so k2 becomes the LRU, then overflow with a third.
        let got = cache.checkout(k1).expect("resident");
        cache.checkin(k1, k1, got);
        let (k3, e3) = entry("c = 3; write(c);");
        cache.insert(k3, e3);
        assert!(cache.checkout(k2).is_none(), "k2 was least recent");
        assert!(cache.checkout(k1).is_some(), "k1 was touched, survives");
    }

    #[test]
    fn checkin_under_a_new_key_moves_the_entry() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let got = cache.checkout(k).expect("resident");
        let k2 = content_hash("x = 2; write(x);");
        cache.checkin(k, k2, got);
        assert!(cache.checkout(k).is_none(), "old key gone");
        assert!(cache.checkout(k2).is_some(), "entry rides to the new key");
    }

    #[test]
    fn abort_checkout_drops_the_entry() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let _dropped = cache.checkout(k).expect("resident");
        cache.abort_checkout(k);
        assert!(cache.checkout(k).is_none(), "aborted entry is gone");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);
    }
}
