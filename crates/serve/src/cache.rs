//! The multi-program analysis cache.
//!
//! The daemon's whole value is *reuse*: the first request against a
//! program pays for parsing and the lazy analyses; every later request —
//! including edits, which selectively invalidate — rides the warm
//! [`EditSession`]. Entries are keyed by the content hash of the source
//! text (see [`crate::hash`]), so identical programs loaded by different
//! clients share one session, and an edited program *moves* to its new
//! content key instead of duplicating.
//!
//! Eviction is byte-budgeted LRU: each entry carries a size estimate
//! (source text plus the bitset-quadratic analysis artifacts), and
//! inserting past the budget evicts least-recently-used entries — except
//! the newest one, so a single oversized program still serves, and except
//! checked-out entries, which a worker is actively using.
//!
//! Concurrency is **check-out/check-in**: a worker takes the whole entry
//! out of the map (leaving a marker), works on it without any lock held,
//! and checks it back in — possibly under a new key, when an edit changed
//! the program's content. A second worker needing the same program waits
//! on a condvar rather than spinning. Counters mirror onto the `obs` layer
//! (`serve.cache.hit/miss/evict`) for single-threaded in-process callers
//! with a trace sink installed; the daemon's `stats` op reads the same
//! numbers through [`CacheStats`].

use crate::fault::{LeaseEvent, SharedFaultHook};
use jumpslice_incr::EditSession;
use jumpslice_obs as obs;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// A cached program: the warm session plus the bookkeeping the cache
/// needs.
#[derive(Debug)]
pub struct Entry {
    /// The warm edit-and-reslice session (owns the program and every
    /// analysis artifact computed for it so far).
    pub session: EditSession,
    /// The source text the entry was registered under (the preimage of its
    /// key).
    pub source: String,
    /// Estimated resident bytes (see [`estimate_bytes`]).
    pub bytes: usize,
}

impl Entry {
    /// Builds an entry, estimating its resident size.
    pub fn new(session: EditSession, source: String) -> Entry {
        let bytes = estimate_bytes(source.len(), session.prog().len());
        Entry {
            session,
            source,
            bytes,
        }
    }
}

/// Resident-size estimate for one cached program: the source text plus the
/// analysis artifacts. The dominant warm artifacts are bitset-quadratic
/// (reaching-defs IN sets, PDG closures scratch, chain masks ≈ n²/8 bits
/// each), plus per-statement structures; the constants here deliberately
/// round *up* so the budget errs toward evicting.
pub fn estimate_bytes(source_len: usize, stmts: usize) -> usize {
    source_len + 512 + stmts * 256 + (stmts * stmts) / 2
}

/// A snapshot of the cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident (including checked-out ones).
    pub entries: usize,
    /// Estimated resident bytes (including checked-out entries).
    pub bytes: usize,
    /// Requests that found their program resident.
    pub hits: u64,
    /// Requests that missed (including `load`s of new programs).
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

/// One map slot: the entry itself, or a marker that a worker has it.
enum Slot {
    /// Resident; `tick` is the last-touch stamp LRU eviction orders by.
    Present { entry: Box<Entry>, tick: u64 },
    /// A worker checked the entry out; `bytes` keeps the budget accounting
    /// honest while it is away.
    CheckedOut { bytes: usize },
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
    bytes: usize,
    stats: CacheStats,
}

/// The shared LRU described in the module docs.
pub struct AnalysisCache {
    byte_budget: usize,
    inner: Mutex<Inner>,
    /// Signalled on every check-in and abort, waking workers queued behind
    /// a checked-out entry.
    returned: Condvar,
    /// Fault-plane probe (see [`crate::fault`]); `None` in production.
    hook: Option<SharedFaultHook>,
}

impl AnalysisCache {
    /// An empty cache evicting past `byte_budget` estimated bytes.
    pub fn new(byte_budget: usize) -> AnalysisCache {
        AnalysisCache {
            byte_budget,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                bytes: 0,
                stats: CacheStats::default(),
            }),
            returned: Condvar::new(),
            hook: None,
        }
    }

    /// Installs a fault hook (chaos testing only); every lease event is
    /// reported to it and its overrides are honored.
    pub fn set_fault_hook(&mut self, hook: SharedFaultHook) {
        self.hook = Some(hook);
    }

    fn probe(&self, event: LeaseEvent) {
        if let Some(h) = &self.hook {
            h.lease(event);
        }
    }

    /// Registers `entry` under `key`. An existing resident entry for the
    /// same content is kept (it is at least as warm) and counted as a hit;
    /// a new registration counts as a miss and may evict others. Returns
    /// whether the program was already resident.
    pub fn insert(&self, key: u64, entry: Entry) -> bool {
        let mut g = self.inner.lock().expect("cache lock");
        g.tick += 1;
        let tick = g.tick;
        match g.slots.get_mut(&key) {
            Some(Slot::Present { tick: t, .. }) => {
                *t = tick;
                g.stats.hits += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.hit",
                    value: g.stats.hits,
                });
                true
            }
            Some(Slot::CheckedOut { .. }) => {
                // A worker is using this very program; the registration is
                // a hit and the in-flight entry stays canonical.
                g.stats.hits += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.hit",
                    value: g.stats.hits,
                });
                true
            }
            None => {
                g.bytes += entry.bytes;
                g.slots.insert(
                    key,
                    Slot::Present {
                        entry: Box::new(entry),
                        tick,
                    },
                );
                g.stats.misses += 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.cache.miss",
                    value: g.stats.misses,
                });
                self.probe(LeaseEvent::Insert { key });
                self.evict_over_budget(&mut g);
                false
            }
        }
    }

    /// Takes the entry for `key` out of the map, waiting while another
    /// worker has it. `None` means the program is not resident (never
    /// loaded, or evicted) — counted as a miss.
    pub fn checkout(&self, key: u64) -> Option<Entry> {
        let mut g = self.inner.lock().expect("cache lock");
        loop {
            match g.slots.get(&key) {
                Some(Slot::Present { .. }) => {
                    g.tick += 1;
                    let Some(Slot::Present { entry, .. }) = g.slots.remove(&key) else {
                        unreachable!("matched Present above");
                    };
                    g.slots.insert(key, Slot::CheckedOut { bytes: entry.bytes });
                    g.stats.hits += 1;
                    obs::record(|| obs::Event::Count {
                        name: "serve.cache.hit",
                        value: g.stats.hits,
                    });
                    self.probe(LeaseEvent::Checkout { key });
                    return Some(*entry);
                }
                Some(Slot::CheckedOut { .. }) => {
                    g = self.returned.wait(g).expect("cache lock");
                }
                None => {
                    g.stats.misses += 1;
                    obs::record(|| obs::Event::Count {
                        name: "serve.cache.miss",
                        value: g.stats.misses,
                    });
                    self.probe(LeaseEvent::Miss { key });
                    return None;
                }
            }
        }
    }

    /// Returns a checked-out entry, under `new_key` (== `old_key` unless an
    /// edit changed the program's content). If the new key collides with a
    /// resident entry — the edit recreated a program someone else has
    /// loaded — the returned session wins: it is warmer.
    pub fn checkin(&self, old_key: u64, new_key: u64, entry: Entry) {
        let mut g = self.inner.lock().expect("cache lock");
        // Clear the marker this lease left — but only if it is still a
        // marker. A concurrent edit can check *its* entry in under our
        // `old_key` (content collision), replacing the marker with a fresh
        // `Present` entry; removing that entry here would silently drop a
        // warm session and leak its bytes into the accounting forever
        // (found by chaos concurrency stress: the cache then believed it
        // was full and thrashed every later insert).
        if let Some(Slot::CheckedOut { bytes }) = g.slots.get(&old_key) {
            let bytes = *bytes;
            g.slots.remove(&old_key);
            g.bytes = g.bytes.saturating_sub(bytes);
        }
        if let Some(old) = g.slots.remove(&new_key) {
            // Collision: drop the colder twin (or a stale marker — workers
            // waiting on it will re-probe and find the fresh entry).
            if let Slot::Present { entry: e, .. } = old {
                g.bytes = g.bytes.saturating_sub(e.bytes);
            } else if let Slot::CheckedOut { bytes } = old {
                g.bytes = g.bytes.saturating_sub(bytes);
            }
        }
        g.tick += 1;
        let tick = g.tick;
        g.bytes += entry.bytes;
        g.slots.insert(
            new_key,
            Slot::Present {
                entry: Box::new(entry),
                tick,
            },
        );
        self.probe(LeaseEvent::Checkin { old_key, new_key });
        self.evict_over_budget(&mut g);
        drop(g);
        self.returned.notify_all();
    }

    /// Drops a checked-out entry instead of returning it — the safety
    /// valve for a request that panicked mid-use, where the session's
    /// internal state can no longer be trusted.
    pub fn abort_checkout(&self, key: u64) {
        let mut g = self.inner.lock().expect("cache lock");
        // Same collision guard as `checkin`: only the marker this lease
        // left may be cleared; a colliding edit's fresh entry stays.
        if let Some(Slot::CheckedOut { bytes }) = g.slots.get(&key) {
            let bytes = *bytes;
            g.slots.remove(&key);
            g.bytes = g.bytes.saturating_sub(bytes);
        }
        self.probe(LeaseEvent::Abort { key });
        drop(g);
        self.returned.notify_all();
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: g.slots.len(),
            bytes: g.bytes,
            ..g.stats
        }
    }

    /// Evicts least-recently-touched resident entries until the estimate
    /// fits the budget. Never evicts checked-out entries, and always keeps
    /// at least one resident entry, so a single over-budget program still
    /// serves rather than thrashing.
    ///
    /// The only exception to the checked-out pin is the fault hook's
    /// [`evict_leased`](crate::fault::FaultHook::evict_leased) known-bug
    /// override: with it the LRU victimizes lease markers too (treated as
    /// infinitely old). That is a deliberate invariant violation — the
    /// chaos harness's self-test injects it to prove its lease tracker
    /// catches exactly this class of bug.
    fn evict_over_budget(&self, g: &mut Inner) {
        let evict_leased = self.hook.as_ref().is_some_and(|h| h.evict_leased());
        while g.bytes > self.byte_budget {
            let resident = g
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Present { tick, .. } => Some((*k, *tick)),
                    Slot::CheckedOut { .. } if evict_leased => Some((*k, 0)),
                    Slot::CheckedOut { .. } => None,
                })
                .collect::<Vec<_>>();
            if resident.len() <= 1 {
                break;
            }
            let (victim, _) = resident
                .into_iter()
                .min_by_key(|&(_, tick)| tick)
                .expect("len > 1 checked");
            match g.slots.remove(&victim) {
                Some(Slot::Present { entry, .. }) => {
                    g.bytes = g.bytes.saturating_sub(entry.bytes);
                    g.stats.evictions += 1;
                    obs::record(|| obs::Event::Count {
                        name: "serve.cache.evict",
                        value: g.stats.evictions,
                    });
                    self.probe(LeaseEvent::Evict {
                        key: victim,
                        leased: false,
                    });
                }
                Some(Slot::CheckedOut { bytes }) => {
                    g.bytes = g.bytes.saturating_sub(bytes);
                    g.stats.evictions += 1;
                    self.probe(LeaseEvent::Evict {
                        key: victim,
                        leased: true,
                    });
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::content_hash;
    use jumpslice_lang::parse;

    fn entry(src: &str) -> (u64, Entry) {
        let p = parse(src).expect("test source parses");
        let session = EditSession::try_new(p).expect("analyzable");
        (content_hash(src), Entry::new(session, src.to_owned()))
    }

    #[test]
    fn checkout_checkin_round_trip() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        assert!(!cache.insert(k, e), "first registration is new");
        let got = cache.checkout(k).expect("resident");
        assert_eq!(got.source, "x = 1; write(x);");
        cache.checkin(k, k, got);
        assert!(cache.checkout(k).is_some(), "still resident after checkin");
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn reloading_a_resident_program_is_a_hit() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let (_, e2) = entry("x = 1; write(x);");
        assert!(cache.insert(k, e2), "second registration hits");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_but_keeps_the_newest() {
        let (k1, e1) = entry("a = 1; write(a);");
        let budget = e1.bytes; // room for roughly one entry
        let cache = AnalysisCache::new(budget);
        cache.insert(k1, e1);
        let (k2, e2) = entry("b = 2; write(b);");
        cache.insert(k2, e2);
        assert!(cache.checkout(k1).is_none(), "LRU victim evicted");
        let got = cache.checkout(k2).expect("newest survives");
        cache.checkin(k2, k2, got);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn touching_reorders_the_lru() {
        let (k1, e1) = entry("a = 1; write(a);");
        let (k2, e2) = entry("b = 2; write(b);");
        let budget = e1.bytes + e2.bytes;
        let cache = AnalysisCache::new(budget);
        cache.insert(k1, e1);
        cache.insert(k2, e2);
        // Touch k1 so k2 becomes the LRU, then overflow with a third.
        let got = cache.checkout(k1).expect("resident");
        cache.checkin(k1, k1, got);
        let (k3, e3) = entry("c = 3; write(c);");
        cache.insert(k3, e3);
        assert!(cache.checkout(k2).is_none(), "k2 was least recent");
        assert!(cache.checkout(k1).is_some(), "k1 was touched, survives");
    }

    #[test]
    fn checkin_under_a_new_key_moves_the_entry() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let got = cache.checkout(k).expect("resident");
        let k2 = content_hash("x = 2; write(x);");
        cache.checkin(k, k2, got);
        assert!(cache.checkout(k).is_none(), "old key gone");
        assert!(cache.checkout(k2).is_some(), "entry rides to the new key");
    }

    /// Pinned (chaos finding, ISSUE 9 satellite fix): when worker B's edit
    /// moves its entry onto a key worker A currently has checked out, A's
    /// later check-in must not clobber B's fresh entry. The old code
    /// removed the old-key slot unconditionally but only subtracted its
    /// bytes when it was still a lease marker — so B's `Present` entry was
    /// silently dropped *and* its bytes leaked into the accounting,
    /// permanently shrinking the budget the cache believed it had.
    #[test]
    fn edit_collision_checkin_keeps_accounting_exact() {
        let cache = AnalysisCache::new(usize::MAX);
        let (ka, ea) = entry("a = 1; write(a);");
        let (kb, eb) = entry("b = 2; write(b);");
        let per_entry = ea.bytes;
        cache.insert(ka, ea);
        cache.insert(kb, eb);
        let a = cache.checkout(ka).expect("A leases ka");
        let b = cache.checkout(kb).expect("B leases kb");
        // B's edit rewrote its program into A's exact content: B checks in
        // under ka while A's lease marker sits there.
        let (_, b_edited) = entry("a = 1; write(a);");
        drop(b);
        cache.checkin(kb, ka, b_edited);
        // A returns its (unedited) lease under the same key.
        cache.checkin(ka, ka, a);
        let s = cache.stats();
        assert_eq!(s.entries, 1, "one program, one entry");
        assert_eq!(
            s.bytes, per_entry,
            "accounting must equal the single resident entry, not leak the collided one"
        );
        assert!(cache.checkout(ka).is_some(), "the program still serves");
    }

    /// Pinned (same collision, abort path): an abort after the collision
    /// must keep the colliding worker's warm entry — the marker the abort
    /// wants to clear no longer exists.
    #[test]
    fn edit_collision_abort_keeps_the_fresh_entry() {
        let cache = AnalysisCache::new(usize::MAX);
        let (ka, ea) = entry("a = 1; write(a);");
        let (kb, eb) = entry("b = 2; write(b);");
        let per_entry = ea.bytes;
        cache.insert(ka, ea);
        cache.insert(kb, eb);
        let _a = cache.checkout(ka).expect("A leases ka");
        let b = cache.checkout(kb).expect("B leases kb");
        drop(b);
        let (_, b_edited) = entry("a = 1; write(a);");
        cache.checkin(kb, ka, b_edited);
        // A's request panicked; its recovery path aborts the lease.
        cache.abort_checkout(ka);
        let s = cache.stats();
        assert_eq!(s.entries, 1, "B's fresh entry survives A's abort");
        assert_eq!(s.bytes, per_entry, "no leaked bytes");
        assert!(cache.checkout(ka).is_some(), "still serves");
    }

    /// Property (ISSUE 9 satellite): under random insert/checkout/checkin
    /// pressure against a tiny budget, a checked-out entry is never
    /// evicted, and the byte accounting always equals the sum of the
    /// slots' recorded sizes.
    #[test]
    fn leased_entries_survive_eviction_pressure_and_accounting_stays_exact() {
        let sources = [
            "a = 1; write(a);",
            "b = 2; write(b);",
            "c = 3; write(c);",
            "d = 4; write(d);",
        ];
        let (_, probe) = entry(sources[0]);
        let budget = probe.bytes + probe.bytes / 2; // ~1.5 entries
        jumpslice_testkit::check(16, |rng| {
            let cache = AnalysisCache::new(budget);
            let mut leased: Vec<(u64, Entry)> = Vec::new();
            for _ in 0..40 {
                match rng.gen_range(0..3u32) {
                    0 => {
                        let (k, e) = entry(sources[rng.gen_range(0..sources.len())]);
                        if leased.iter().all(|(lk, _)| *lk != k) {
                            cache.insert(k, e);
                        }
                    }
                    1 => {
                        let (k, _) = entry(sources[rng.gen_range(0..sources.len())]);
                        if leased.iter().all(|(lk, _)| *lk != k) {
                            if let Some(e) = cache.checkout(k) {
                                leased.push((k, e));
                            }
                        }
                    }
                    _ => {
                        if let Some(at) = leased.len().checked_sub(1) {
                            let (k, e) = leased.remove(rng.gen_range(0..at + 1));
                            cache.checkin(k, k, e);
                            // The pin: an entry that was leased through any
                            // amount of insert pressure is still resident
                            // the moment it returns.
                            let back = cache
                                .checkout(k)
                                .expect("a leased entry must never be evicted");
                            cache.checkin(k, k, back);
                        }
                    }
                }
            }
            let s = cache.stats();
            let leased_bytes: usize = leased.iter().map(|(_, e)| e.bytes).sum();
            assert!(
                s.bytes >= leased_bytes,
                "accounting {} cannot undercount the {} leased bytes",
                s.bytes,
                leased_bytes
            );
            // Return everything; the cache must come back to a consistent,
            // budget-respecting state with no drift.
            for (k, e) in leased.drain(..) {
                cache.checkin(k, k, e);
            }
            let s = cache.stats();
            assert!(
                s.bytes <= budget || s.entries == 1,
                "after all leases return: {} bytes across {} entries vs budget {budget}",
                s.bytes,
                s.entries
            );
        });
    }

    #[test]
    fn abort_checkout_drops_the_entry() {
        let cache = AnalysisCache::new(usize::MAX);
        let (k, e) = entry("x = 1; write(x);");
        cache.insert(k, e);
        let _dropped = cache.checkout(k).expect("resident");
        cache.abort_checkout(k);
        assert!(cache.checkout(k).is_none(), "aborted entry is gone");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);
    }
}
