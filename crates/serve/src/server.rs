//! The daemon's concurrency shell: bounded job queue, worker pool, and the
//! stdin/TCP front-ends.
//!
//! Every front-end connection is a producer: it reads one line, enqueues a
//! `Job` with a reply channel, waits for the response, writes it back,
//! and only then reads the next line — so responses stay in request order
//! *per connection* while distinct connections run concurrently across the
//! worker pool. The queue is bounded; a full queue blocks producers
//! (back-pressure) rather than buffering without limit.
//!
//! Shutdown is cooperative, because the workspace forbids `unsafe` and
//! carries no signal-handling dependency: a `shutdown` request (or stdin
//! EOF when no TCP listener was configured) closes the queue, workers
//! drain what was already accepted, and `run` joins them and returns.
//! Producers that race the closing receive a `"shutting down"` error
//! response. The TCP acceptor polls with a non-blocking listener so it can
//! notice the flag within [`ACCEPT_POLL`].

use crate::engine::Engine;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often the TCP acceptor re-checks the shutdown flag.
pub const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Tunables for [`run`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (min 1).
    pub workers: usize,
    /// Queue slots before producers block (min 1).
    pub queue: usize,
    /// TCP listen address (e.g. `127.0.0.1:7878`); `None` for stdin-only.
    pub listen: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue: 64,
            listen: None,
        }
    }
}

/// One request in flight: the raw line and where the response goes.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A minimal bounded MPMC queue (std has only unbounded mpsc).
struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks while full; `false` if the queue closed (job not accepted).
    fn push(&self, job: Job) -> bool {
        let mut g = self.inner.lock().expect("queue lock");
        while g.jobs.len() >= self.cap && !g.closed {
            g = self.not_full.wait(g).expect("queue lock");
        }
        if g.closed {
            return false;
        }
        g.jobs.push_back(job);
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Blocks while empty; `None` once closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = g.jobs.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(job);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Enqueues `line` and waits for its response. `None` means the daemon is
/// shutting down.
fn round_trip(queue: &JobQueue, line: String) -> Option<String> {
    let (tx, rx) = mpsc::channel();
    if !queue.push(Job { line, reply: tx }) {
        return None;
    }
    // A worker always sends exactly one reply per popped job; a recv error
    // can only mean the pool is tearing down.
    rx.recv().ok()
}

/// Runs the daemon until shutdown: spawns the worker pool, serves stdin on
/// the calling thread, and (optionally) accepts TCP connections.
///
/// Returns once every worker has drained. With no TCP listener, stdin EOF
/// also shuts the daemon down — the pipe is its only client.
pub fn run(engine: Arc<Engine>, config: &ServerConfig) -> std::io::Result<()> {
    let queue = Arc::new(JobQueue::new(config.queue));
    std::thread::scope(|scope| -> std::io::Result<()> {
        for w in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn_scoped(scope, move || {
                    while let Some(job) = queue.pop() {
                        let resp = engine.handle_line(&job.line);
                        // A dropped receiver (client hung up mid-request)
                        // only wastes the answer; nothing to do about it.
                        let _ = job.reply.send(resp);
                        if engine.shutdown_requested() {
                            queue.close();
                        }
                    }
                })
                .expect("spawn worker");
        }

        if let Some(addr) = &config.listen {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            eprintln!("jumpslice-serve: listening on {}", listener.local_addr()?);
            let queue_for_accept = Arc::clone(&queue);
            let engine_for_accept = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn_scoped(scope, move || {
                    accept_loop(listener, queue_for_accept, engine_for_accept, scope)
                })
                .expect("spawn acceptor");
        }

        serve_stdin(&queue);
        // Stdin is gone. Without TCP there can be no further requests;
        // with TCP, the acceptor owns the daemon's lifetime and we just
        // wait for a `shutdown` request to close the queue.
        if config.listen.is_none() {
            queue.close();
        }
        Ok(())
    })
}

/// Runs an engine against stdin/stdout without any threads — the
/// single-threaded fallback used by `--workers 0` and handy under test.
pub fn run_inline(engine: &Engine) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = engine.handle_line(&line);
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            break;
        }
        if engine.shutdown_requested() {
            break;
        }
    }
}

/// An in-process daemon: the same bounded queue and worker pool [`run`]
/// builds, but owned as a value with no stdin/TCP front-end. This is how
/// the chaos harness (and any embedder) drives real cross-thread
/// contention — every request crosses the queue to a genuine worker
/// thread — while keeping startup, draining, and shutdown under test
/// control.
pub struct Pool {
    engine: Arc<Engine>,
    queue: Arc<JobQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads (min 1) draining a queue of `queue_cap`
    /// slots against `engine`.
    pub fn start(engine: Arc<Engine>, workers: usize, queue_cap: usize) -> Pool {
        let queue = Arc::new(JobQueue::new(queue_cap));
        let workers = (0..workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("serve-pool-{w}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let resp = engine.handle_line(&job.line);
                            let _ = job.reply.send(resp);
                            if engine.shutdown_requested() {
                                queue.close();
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            engine,
            queue,
            workers,
        }
    }

    /// The shared engine the pool executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Enqueues one request line and waits for its reply. `None` means the
    /// pool is shutting down (the queue closed before the job was
    /// accepted).
    ///
    /// A fault hook may reject the enqueue — the queue-full decision point
    /// under injection — in which case the caller gets a structured
    /// `"queue full"` error (still exactly one response per request)
    /// instead of back-pressure.
    pub fn round_trip(&self, line: &str) -> Option<String> {
        if self.engine.fault_reject_enqueue() {
            return Some(
                r#"{"ok":false,"error":"queue full: request rejected under load; retry"}"#
                    .to_owned(),
            );
        }
        round_trip(&self.queue, line.to_owned())
    }

    /// Closes the queue and joins every worker. `true` when all workers
    /// drained and exited cleanly (no worker thread panicked) — the
    /// clean-shutdown invariant the chaos driver asserts after every plan.
    pub fn shutdown(mut self) -> bool {
        self.queue.close();
        let mut clean = true;
        for h in self.workers.drain(..) {
            clean &= h.join().is_ok();
        }
        clean
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn serve_stdin(queue: &JobQueue) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Some(resp) = round_trip(queue, line) else {
            let _ = writeln!(out, r#"{{"ok":false,"error":"shutting down"}}"#);
            break;
        };
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            break;
        }
    }
}

fn accept_loop<'scope>(
    listener: TcpListener,
    queue: Arc<JobQueue>,
    engine: Arc<Engine>,
    scope: &'scope std::thread::Scope<'scope, '_>,
) {
    loop {
        if engine.shutdown_requested() {
            queue.close();
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn_scoped(scope, move || {
                        let mut reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let mut stream = stream;
                        let mut line = String::new();
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) | Err(_) => return,
                                Ok(_) => {}
                            }
                            if line.trim().is_empty() {
                                continue;
                            }
                            let Some(resp) = round_trip(&queue, line.trim_end().to_owned()) else {
                                let _ =
                                    writeln!(stream, r#"{{"ok":false,"error":"shutting down"}}"#);
                                return;
                            };
                            if writeln!(stream, "{resp}").is_err() {
                                return;
                            }
                        }
                    })
                    .expect("spawn connection");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) — keep going.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_obs::Json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    /// Boots a real TCP daemon on an ephemeral port, drives it over a
    /// socket, and shuts it down over another — exercising the queue, the
    /// pool, the acceptor, and cooperative shutdown end to end.
    #[test]
    fn tcp_round_trip_and_cooperative_shutdown() {
        // Bind first so the port is known before `run` spawns.
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
        let addr = probe.local_addr().expect("addr").to_string();
        drop(probe);

        let engine = Arc::new(Engine::new(usize::MAX));
        let config = ServerConfig {
            workers: 2,
            queue: 8,
            listen: Some(addr.clone()),
        };
        let engine_for_run = Arc::clone(&engine);
        let daemon = std::thread::spawn(move || {
            // Stdin in `cargo test` is the test harness's; serve_stdin may
            // park on it, so drive shutdown purely over TCP and join the
            // acceptor path: run() returning is not required here — the
            // workers draining is what we assert through the socket.
            run(engine_for_run, &config).expect("daemon runs");
        });

        // The acceptor may not be listening yet; retry briefly.
        let mut conn = None;
        for _ in 0..100 {
            match TcpStream::connect(&addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut conn = conn.expect("daemon accepts within 2s");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut send = |line: &str| -> Json {
            writeln!(conn, "{line}").expect("write");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("read");
            Json::parse(&resp).expect("valid response JSON")
        };

        let loaded = send(r#"{"op":"load","source":"read(x); write(x);"}"#);
        assert_eq!(loaded.get("ok").and_then(Json::as_bool), Some(true));
        let key = loaded
            .get("program")
            .and_then(Json::as_str)
            .expect("key")
            .to_owned();
        let sliced = send(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":2}}]}}"#
        ));
        assert_eq!(sliced.get("ok").and_then(Json::as_bool), Some(true));

        let bye = send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
        // After shutdown the daemon must refuse (or close) promptly rather
        // than hang: either response is acceptable, but not a stall.
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        writeln!(conn, r#"{{"op":"stats"}}"#).ok();
        let mut tail = String::new();
        let _ = reader.read_line(&mut tail); // "" (closed) or a shutting-down error
        if !tail.trim().is_empty() {
            let j = Json::parse(&tail).expect("tail is JSON");
            // Drained requests may still be answered; refusals say so.
            assert!(j.get("ok").is_some());
        }
        drop(conn);
        // `run` itself stays parked on the harness's stdin; the daemon
        // thread is detached by design here.
        drop(daemon);
        assert!(engine.shutdown_requested());
    }

    #[test]
    fn queue_refuses_after_close() {
        let q = JobQueue::new(2);
        q.close();
        let (tx, _rx) = mpsc::channel();
        assert!(!q.push(Job {
            line: String::new(),
            reply: tx
        }));
        assert!(q.pop().is_none());
    }
}
