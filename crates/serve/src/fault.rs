//! The daemon-side fault plane: deterministic injection points at the
//! cache, engine, and queue decision boundaries.
//!
//! Production deployments never install a hook — every probe site costs
//! one `Option` check. The `jumpslice-chaos` crate installs a seeded
//! [`FaultHook`] (via [`crate::Engine::with_fault_hook`]) that *observes*
//! lease traffic and *injects* failures exactly where the daemon makes a
//! recoverability decision:
//!
//! * **Lease events** ([`LeaseEvent`]) — every check-out, check-in, abort,
//!   insert, and eviction the [`crate::AnalysisCache`] performs, reported
//!   synchronously so an external tracker can prove the no-double-lease
//!   and no-leased-eviction invariants against the real interleaving.
//! * **Slice faults** ([`SliceFault`]) — a worker panic mid-request, or a
//!   deterministic deadline expiry (checkpoint fuel, no wall clock), both
//!   of which must degrade the one response and nothing else.
//! * **Queue rejection** — back-pressure turning into a structured
//!   `"queue full"` error instead of a blocked producer.
//! * **Forced lease eviction** ([`FaultHook::evict_leased`]) — a
//!   *deliberately wrong* override that makes the cache violate its own
//!   checked-out-entries-are-pinned rule. It exists so the chaos harness
//!   can prove it *detects* the violation (`--inject-known-bug`); nothing
//!   else may ever return `true`.
//!
//! Hooks are called with cache-internal locks held; implementations must
//! not call back into the cache or block.

use std::sync::Arc;

/// One cache lease-lifecycle event, reported to the installed hook at the
/// instant it happens (under the cache lock, so the reported order *is*
/// the authoritative order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseEvent {
    /// An entry was leased (checked out) under `key`.
    Checkout {
        /// Content key of the leased entry.
        key: u64,
    },
    /// A checkout found nothing resident under `key`.
    Miss {
        /// Content key that missed.
        key: u64,
    },
    /// A leased entry was returned; an edit may have moved it.
    Checkin {
        /// Key the lease was taken under.
        old_key: u64,
        /// Key the entry now lives under (== `old_key` unless edited).
        new_key: u64,
    },
    /// A leased entry was dropped instead of returned (panic recovery).
    Abort {
        /// Key the lease was taken under.
        key: u64,
    },
    /// A new entry was registered under `key`.
    Insert {
        /// Content key of the new entry.
        key: u64,
    },
    /// An entry was evicted under `key`. `leased` marks a victim that was
    /// checked out at the time — legal only under the known-bug override,
    /// and exactly what the chaos lease tracker must flag.
    Evict {
        /// Content key of the victim.
        key: u64,
        /// Whether the victim was leased (always a violation).
        leased: bool,
    },
}

/// What to inject into the next slice execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SliceFault {
    /// Run normally.
    #[default]
    None,
    /// Panic mid-request, as a worker bug would. Must surface as one
    /// `{"ok":false}` response with the entry dropped, never a dead worker
    /// or a poisoned cache.
    Panic,
    /// Cancel after exactly this many slicer checkpoints (clock-free
    /// deadline expiry via [`jumpslice_core::cancel::fuel`]). Must surface
    /// as a `"degraded":true` Figure-13 answer.
    CancelAfter(u64),
}

/// The daemon's fault-injection interface. Every method has a no-op
/// default, so a hook overrides only the decision points it cares about.
pub trait FaultHook: Send + Sync {
    /// Observes one cache lease event (called under the cache lock; do
    /// not block or call back into the cache).
    fn lease(&self, event: LeaseEvent) {
        let _ = event;
    }

    /// Known-bug override: when `true`, the cache's eviction pass may
    /// victimize checked-out entries. Only the chaos self-test returns
    /// `true`, to prove the lease tracker catches the violation.
    fn evict_leased(&self) -> bool {
        false
    }

    /// Consulted once at the start of every `slice` execution; the
    /// returned fault is injected into that request.
    fn slice_fault(&self) -> SliceFault {
        SliceFault::None
    }

    /// Observes a successful snapshot-store restore of `key`.
    fn restored(&self, key: u64) {
        let _ = key;
    }

    /// When `true`, the concurrency shell rejects the next enqueue with a
    /// structured `"queue full"` error instead of applying back-pressure.
    fn reject_enqueue(&self) -> bool {
        false
    }
}

/// How fault hooks are shared across the cache, engine, and pool.
pub type SharedFaultHook = Arc<dyn FaultHook>;
