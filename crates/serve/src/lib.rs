//! Slice-as-a-service: a long-running daemon around the jumpslice
//! pipeline.
//!
//! The batch engine answers many criteria against one program; the
//! incremental engine answers many *edits* against one program. This crate
//! adds the missing axis — many **programs**, over time, from clients that
//! come and go — without re-paying parse + analysis per request:
//!
//! * [`hash`] — content-addressed program keys (FNV-1a 64).
//! * [`cache`] — the multi-program LRU of warmed [`jumpslice_incr::EditSession`]s,
//!   byte-budgeted, with check-out/check-in concurrency.
//! * [`proto`] — the JSON-lines request protocol (`load`, `slice`, `edit`,
//!   `chop`, `explain`, `stats`, `shutdown`).
//! * [`engine`] — request execution: deadlines via
//!   [`jumpslice_core::cancel`], graceful degradation to the Figure-13
//!   conservative slicer, per-request panic containment.
//! * [`server`] — the bounded queue, worker pool, and stdin/TCP
//!   front-ends.
//! * [`fault`] — the deterministic fault-injection seam the chaos harness
//!   drives; a no-op unless a hook is installed.
//!
//! The binary (`jumpslice-serve`) wires these together; see `src/main.rs`
//! and the README's daemon quickstart. Everything is dependency-free std,
//! like the rest of the workspace.
//!
//! # Example (in-process)
//!
//! ```
//! use jumpslice_serve::engine::Engine;
//! use jumpslice_obs::Json;
//!
//! let e = Engine::new(64 << 20);
//! let resp = e.handle_line(r#"{"op":"load","source":"read(x); write(x);"}"#);
//! let j = Json::parse(&resp).unwrap();
//! assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
//! let key = j.get("program").and_then(Json::as_str).unwrap();
//! let resp = e.handle_line(&format!(
//!     r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":2}}]}}"#
//! ));
//! assert!(resp.contains(r#""ok":true"#));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fault;
pub mod hash;
pub mod proto;
pub mod server;

pub use cache::{AnalysisCache, CacheStats, Entry};
pub use engine::Engine;
pub use fault::{FaultHook, LeaseEvent, SharedFaultHook, SliceFault};
pub use hash::{content_hash, key_string, parse_key};
pub use proto::{parse_request, Request};
pub use server::{run, run_inline, Pool, ServerConfig};
