//! The `jumpslice-serve` binary.
//!
//! ```text
//! jumpslice-serve [--listen ADDR] [--workers N] [--queue N]
//!                 [--cache-bytes N] [--store-dir DIR] [--store-bytes N]
//!                 [--replay-dir DIR]
//! ```
//!
//! By default the daemon serves JSON-lines on stdin/stdout with a small
//! worker pool; `--listen 127.0.0.1:7878` adds a TCP front-end speaking
//! the same protocol. `--workers 0` runs single-threaded inline (no pool,
//! no queue) — useful for deterministic scripting. Shut down with a
//! `{"op":"shutdown"}` request or by closing stdin (stdin-only mode).
//!
//! `--store-dir DIR` attaches the persistent snapshot store (DESIGN.md
//! §11): completed analyses are written behind slice responses as
//! versioned, checksummed records, and a restarted daemon pointed at the
//! same directory serves its first slice without re-running
//! reaching-definitions, PDG, postdominator, or lexical-successor
//! construction. `--store-bytes N` caps the directory (LRU by mtime;
//! default 1 GiB).
//!
//! `--replay-dir DIR` is not a daemon mode at all: it replays every
//! difftest program artifact (`*.prog.txt`) in DIR through the serve
//! engine and cross-checks each Figure-7 answer against a direct
//! [`jumpslice_core::agrawal_slice`] call, exiting non-zero on any
//! mismatch. The nightly fuzz workflow uses it to prove the daemon layer
//! adds no behavior on top of the slicers.

use jumpslice_obs::Json;
use jumpslice_serve::engine::Engine;
use jumpslice_serve::server::{run, run_inline, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

/// 256 MiB default cache budget — a few hundred medium programs.
const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// 1 GiB default on-disk snapshot budget (`--store-bytes`).
const DEFAULT_STORE_BYTES: u64 = 1 << 30;

struct Options {
    config: ServerConfig,
    cache_bytes: usize,
    inline: bool,
    replay_dir: Option<String>,
    store_dir: Option<String>,
    store_bytes: u64,
}

fn usage() -> &'static str {
    "usage: jumpslice-serve [--listen ADDR] [--workers N] [--queue N] \
     [--cache-bytes N] [--store-dir DIR] [--store-bytes N] [--replay-dir DIR]\n\
     JSON-lines slice daemon; see DESIGN.md §10 for the protocol and §11 \
     for the snapshot store."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        config: ServerConfig::default(),
        cache_bytes: DEFAULT_CACHE_BYTES,
        inline: false,
        replay_dir: None,
        store_dir: None,
        store_bytes: DEFAULT_STORE_BYTES,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--listen" => {
                opts.config.listen = Some(value(i)?.clone());
                i += 2;
            }
            "--workers" => {
                let n: usize = value(i)?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?;
                if n == 0 {
                    opts.inline = true;
                } else {
                    opts.config.workers = n;
                }
                i += 2;
            }
            "--queue" => {
                opts.config.queue = value(i)?
                    .parse()
                    .map_err(|_| "--queue needs an integer".to_owned())?;
                i += 2;
            }
            "--cache-bytes" => {
                opts.cache_bytes = value(i)?
                    .parse()
                    .map_err(|_| "--cache-bytes needs an integer".to_owned())?;
                i += 2;
            }
            "--store-dir" => {
                opts.store_dir = Some(value(i)?.clone());
                i += 2;
            }
            "--store-bytes" => {
                opts.store_bytes = value(i)?
                    .parse()
                    .map_err(|_| "--store-bytes needs an integer".to_owned())?;
                i += 2;
            }
            "--replay-dir" => {
                opts.replay_dir = Some(value(i)?.clone());
                i += 2;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if opts.inline && opts.config.listen.is_some() {
        return Err("--workers 0 (inline) cannot be combined with --listen".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let engine = match build_engine(&opts) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("jumpslice-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = &opts.replay_dir {
        return replay(dir, &engine);
    }

    let engine = Arc::new(engine);
    if opts.inline {
        run_inline(&engine);
        return ExitCode::SUCCESS;
    }
    match run(Arc::clone(&engine), &opts.config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("jumpslice-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_engine(opts: &Options) -> Result<Engine, String> {
    let mut engine = Engine::new(opts.cache_bytes);
    if let Some(dir) = &opts.store_dir {
        let store = jumpslice_store::SnapshotStore::open(dir, opts.store_bytes)
            .map_err(|e| format!("cannot open snapshot store {dir}: {e}"))?;
        engine = engine.with_store(store);
    }
    Ok(engine)
}

/// Replays difftest program artifacts through the engine and cross-checks
/// every line's Figure-7 slice against a direct library call. With
/// `--store-dir` the engine is store-backed, so a second replay over the
/// same directory restores every program from its snapshot — the nightly
/// workflow runs exactly that pair and the summary line's restore count
/// proves the warm path served the same answers.
fn replay(dir: &str, engine: &Engine) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("jumpslice-serve: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".prog.txt"))
        })
        .collect();
    paths.sort();

    let (mut programs, mut checked, mut skipped, mut mismatches) = (0usize, 0usize, 0usize, 0usize);
    let mut restored = 0usize;
    for path in &paths {
        let Ok(source) = std::fs::read_to_string(path) else {
            skipped += 1;
            continue;
        };
        let loaded = Json::parse(
            &engine.handle_line(
                &Json::Obj(vec![
                    ("op".to_owned(), Json::Str("load".to_owned())),
                    ("source".to_owned(), Json::Str(source.clone())),
                ])
                .write_compact(),
            ),
        )
        .expect("engine responses are valid JSON");
        if loaded.get("ok").and_then(Json::as_bool) != Some(true) {
            // Shrunk difftest artifacts can be unanalyzable fragments; the
            // daemon refusing them cleanly is itself the contract.
            skipped += 1;
            continue;
        }
        let key = loaded
            .get("program")
            .and_then(Json::as_str)
            .expect("load responses carry the key")
            .to_owned();
        if loaded.get("restored").and_then(Json::as_bool) == Some(true) {
            restored += 1;
        }
        let prog = jumpslice_lang::parse(&source).expect("engine accepted it");
        let analysis = jumpslice_core::Analysis::new(&prog);
        programs += 1;
        for line in 1..=prog.len() {
            let resp = Json::parse(&engine.handle_line(&format!(
                r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":{line}}}]}}"#
            )))
            .expect("engine responses are valid JSON");
            if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                eprintln!(
                    "REPLAY MISMATCH {}:{line}: request failed: {resp:?}",
                    path.display()
                );
                mismatches += 1;
                continue;
            }
            let served: Vec<usize> = resp.get("slices").and_then(Json::as_arr).expect("slices")[0]
                .get("lines")
                .and_then(Json::as_arr)
                .expect("lines")
                .iter()
                .filter_map(Json::as_num)
                .map(|n| n as usize)
                .collect();
            let direct = jumpslice_core::agrawal_slice(
                &analysis,
                &jumpslice_core::Criterion::at_stmt(prog.at_line(line)),
            )
            .lines(&prog);
            if served != direct {
                eprintln!(
                    "REPLAY MISMATCH {}:{line}: served {served:?} != direct {direct:?}",
                    path.display()
                );
                mismatches += 1;
            }
            checked += 1;
        }
    }
    println!(
        "replay: {programs} programs, {checked} slices checked, {skipped} skipped, {mismatches} mismatches"
    );
    if let Some(store) = engine.store() {
        let s = store.stats();
        println!(
            "replay store: {restored} restored, {} hits, {} misses, {} writes, {} corrupt, {} records on disk",
            s.hits, s.misses, s.writes, s.corrupt, s.records
        );
    }
    if mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
