//! Request execution: the bridge from protocol to slicers.
//!
//! One [`Engine`] owns the [`AnalysisCache`] and is shared (behind an
//! `Arc`) by every worker thread. [`Engine::handle_line`] is the whole
//! contract: a request line in, a response line out, **never a panic** —
//! a last-resort `catch_unwind` turns any escaped panic into an
//! `{"ok":false}` response and drops the (possibly poisoned) cache entry
//! instead of the process.
//!
//! # The persistent snapshot tier
//!
//! With [`Engine::with_store`], a [`SnapshotStore`] becomes a second
//! cache tier below the in-memory [`AnalysisCache`]. A `load` whose key
//! has a record on disk restores the parsed program and every persisted
//! analysis artifact without recomputing them (`"restored": true` in the
//! response); every successful `slice` writes the warm analysis behind
//! the response so the *next* process start is the one that benefits.
//! Anything wrong with a record — version skew, truncation, bit rot, an
//! FNV collision, a payload the current decoder rejects — falls back to
//! the ordinary from-source build and is counted
//! (`serve.store.corrupt` / `store.corrupt_fallback`), never served.
//!
//! # Deadlines and graceful degradation
//!
//! A `slice` request may carry `deadline_ms`. The deadline is installed as
//! a [`jumpslice_core::cancel`] guard through
//! [`BatchSlicer::with_deadline`], so the Figure-7 fixpoint checks it at
//! every round (and every sparse drain step) and aborts with the
//! cancellation sentinel. The engine then *re-answers all criteria* with
//! the paper's Figure-13 conservative slicer — no fixpoint, no
//! postdominator traversal — and marks the response `"degraded": true`.
//!
//! The precision contract of a degraded answer is Figure 13's: on
//! structured programs it is a superset of the precise Figure-7 slice
//! (the §4 lattice, pinned by the difftest suite); on programs with
//! `goto` it is the paper's "should suffice for most modern programs"
//! approximation and may omit jumps Figure 7 would keep. Clients that
//! cannot accept that must re-issue the request without a deadline.

use crate::cache::{AnalysisCache, CacheStats, Entry};
use crate::fault::{SharedFaultHook, SliceFault};
use crate::hash::{content_hash, key_string};
use crate::proto::{parse_request, CritSpec, Request};
use jumpslice_core::{
    agrawal_slice, agrawal_slice_traced, cancel, chop, chop_executable, conservative_slice,
    conventional_slice, decode_snapshot, encode_snapshot, structured_slice, BatchSlicer, Criterion,
    Slice, SliceFn,
};
use jumpslice_incr::{ApplyPath, EditSession};
use jumpslice_lang::{parse, print_program, Program};
use jumpslice_obs as obs;
use jumpslice_obs::Json;
use jumpslice_store::SnapshotStore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Resolves a wire algorithm name. `fig7` is the default clients should
/// use; the long registry names accepted by the difftest tooling work too.
pub fn algo_by_name(name: &str) -> Option<SliceFn> {
    match name {
        "fig7" | "fig7-agrawal" | "agrawal" => Some(agrawal_slice),
        "conventional" => Some(conventional_slice),
        "fig12" | "fig12-structured" | "structured" => Some(structured_slice),
        "fig13" | "fig13-conservative" | "conservative" => Some(conservative_slice),
        _ => None,
    }
}

/// Shared request executor. Cheap to share; all mutability is interior.
pub struct Engine {
    cache: AnalysisCache,
    /// Second cache tier: persistent snapshots, written behind successful
    /// slices and probed on `load` before any analysis work.
    store: Option<SnapshotStore>,
    requests: AtomicU64,
    degraded: AtomicU64,
    store_fallbacks: AtomicU64,
    shutdown: AtomicBool,
    /// Fault-injection seam (chaos harness only); `None` in production.
    hook: Option<SharedFaultHook>,
}

impl Engine {
    /// An engine whose cache evicts past `cache_bytes` estimated bytes.
    pub fn new(cache_bytes: usize) -> Engine {
        Engine {
            cache: AnalysisCache::new(cache_bytes),
            store: None,
            requests: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            store_fallbacks: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            hook: None,
        }
    }

    /// Attaches a persistent snapshot store as the second cache tier.
    /// `load` requests probe it before building from source, and every
    /// successful `slice` writes the warm analysis behind the response.
    pub fn with_store(mut self, store: SnapshotStore) -> Engine {
        self.store = Some(store);
        self
    }

    /// The attached snapshot store, if any.
    pub fn store(&self) -> Option<&SnapshotStore> {
        self.store.as_ref()
    }

    /// Installs a fault hook on the engine and its cache. Chaos harness
    /// only: the hook observes every lease event and injects worker
    /// panics, deterministic cancellations, and queue rejections at the
    /// daemon's decision points.
    pub fn with_fault_hook(mut self, hook: SharedFaultHook) -> Engine {
        self.cache.set_fault_hook(hook.clone());
        self.hook = Some(hook);
        self
    }

    /// Chaos seam: whether the installed hook wants the next enqueue
    /// rejected with a structured `"queue full"` error. Always `false`
    /// without a hook.
    pub(crate) fn fault_reject_enqueue(&self) -> bool {
        self.hook.as_ref().is_some_and(|h| h.reject_enqueue())
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cache counters (also surfaced by the `stats` op).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Handles one request line, returning exactly one response line
    /// (single-line JSON, no trailing newline). Never panics.
    pub fn handle_line(&self, line: &str) -> String {
        let _t = obs::phase(obs::Phase::ServeRequest);
        let n = self.requests.fetch_add(1, Ordering::SeqCst) + 1;
        obs::record(|| obs::Event::Count {
            name: "serve.requests",
            value: n,
        });
        let parsed = Json::parse(line);
        let id = parsed.as_ref().ok().and_then(|j| j.get("id").cloned());
        let body = match &parsed {
            Err(e) => Err(format!("request is not valid JSON: {e}")),
            Ok(j) => match parse_request(j) {
                Err(e) => Err(e),
                // The unwind net: a bug (or a poisoned invariant) in the
                // slicing stack becomes a per-request error. The closure
                // aborts its checkout on the way out, so the cache never
                // keeps a session a panic unwound through.
                Ok(req) => {
                    catch_unwind(AssertUnwindSafe(|| self.execute(req))).unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_owned());
                        Err(format!("internal error: {msg}"))
                    })
                }
            },
        };
        let mut fields = Vec::new();
        if let Some(id) = id {
            fields.push(("id".to_owned(), id));
        }
        match body {
            Ok(mut ok_fields) => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.append(&mut ok_fields);
            }
            Err(msg) => {
                fields.push(("ok".to_owned(), Json::Bool(false)));
                fields.push(("error".to_owned(), Json::Str(msg)));
            }
        }
        Json::Obj(fields).write_compact()
    }

    fn execute(&self, req: Request) -> Result<Vec<(String, Json)>, String> {
        match req {
            Request::Load { source } => self.load(source),
            Request::Slice {
                program,
                algo,
                criteria,
                deadline_ms,
            } => self.with_entry(program, |this, entry| {
                let out = this.slice(entry, &algo, &criteria, deadline_ms)?;
                // The slice warmed every artifact the snapshot format
                // persists, so this is the cheapest moment to write behind.
                this.store_save(program, entry);
                Ok(out)
            }),
            Request::Edit { program, edit } => {
                // `edit` manages its own check-in: success moves the entry
                // to the new content key.
                let mut entry = self.checkout(program)?;
                let r = catch_unwind(AssertUnwindSafe(|| {
                    entry.session.apply(&edit).map_err(|e| e.to_string())
                }));
                match r {
                    Ok(Ok(outcome)) => {
                        let new_source = print_program(entry.session.prog());
                        let new_key = content_hash(&new_source);
                        let stmts = entry.session.prog().len();
                        let fresh = Entry::new(entry.session, new_source);
                        self.cache.checkin(program, new_key, fresh);
                        Ok(vec![
                            ("program".to_owned(), Json::Str(key_string(new_key))),
                            (
                                "path".to_owned(),
                                Json::Str(
                                    match outcome.path {
                                        ApplyPath::ExprPatch => "expr_patch",
                                        ApplyPath::SeededResolve => "seeded_resolve",
                                        ApplyPath::FullRebuild => "full_rebuild",
                                    }
                                    .to_owned(),
                                ),
                            ),
                            (
                                "dirty_stmts".to_owned(),
                                Json::Num(outcome.dirty_stmts as f64),
                            ),
                            ("stmts".to_owned(), Json::Num(stmts as f64)),
                        ])
                    }
                    Ok(Err(e)) => {
                        // Rejected edits leave the session untouched; keep it.
                        self.cache.checkin(program, program, entry);
                        Err(format!("edit rejected: {e}"))
                    }
                    Err(payload) => {
                        self.cache.abort_checkout(program);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            Request::Chop {
                program,
                source_line,
                sink_line,
                executable,
            } => self.with_entry(program, |_, entry| {
                entry.session.with_analysis(|a| {
                    let src = stmt_at(a.prog(), source_line)?;
                    let sink = stmt_at(a.prog(), sink_line)?;
                    let s = if executable {
                        chop_executable(a, src, sink)
                    } else {
                        chop(a, src, sink)
                    };
                    Ok(vec![("lines".to_owned(), lines_json(&s, a.prog()))])
                })
            }),
            Request::Explain { program, line } => self.with_entry(program, |_, entry| {
                entry.session.with_analysis(|a| {
                    let stmt = stmt_at(a.prog(), line)?;
                    let crit = Criterion::at_stmt(stmt);
                    let (slice, prov) = agrawal_slice_traced(a, &crit);
                    Ok(vec![
                        ("lines".to_owned(), lines_json(&slice, a.prog())),
                        (
                            "report".to_owned(),
                            Json::Str(prov.report(a.prog(), &slice)),
                        ),
                    ])
                })
            }),
            Request::Stats => {
                let c = self.cache.stats();
                let mut fields = vec![
                    (
                        "requests".to_owned(),
                        Json::Num(self.requests.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "degraded".to_owned(),
                        Json::Num(self.degraded.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "cache".to_owned(),
                        Json::Obj(vec![
                            ("entries".to_owned(), Json::Num(c.entries as f64)),
                            ("bytes".to_owned(), Json::Num(c.bytes as f64)),
                            ("hits".to_owned(), Json::Num(c.hits as f64)),
                            ("misses".to_owned(), Json::Num(c.misses as f64)),
                            ("evictions".to_owned(), Json::Num(c.evictions as f64)),
                        ]),
                    ),
                ];
                if let Some(store) = &self.store {
                    let s = store.stats();
                    fields.push((
                        "store".to_owned(),
                        Json::Obj(vec![
                            ("records".to_owned(), Json::Num(s.records as f64)),
                            ("bytes".to_owned(), Json::Num(s.bytes as f64)),
                            ("hits".to_owned(), Json::Num(s.hits as f64)),
                            ("misses".to_owned(), Json::Num(s.misses as f64)),
                            ("evictions".to_owned(), Json::Num(s.evictions as f64)),
                            ("corrupt".to_owned(), Json::Num(s.corrupt as f64)),
                            ("writes".to_owned(), Json::Num(s.writes as f64)),
                            (
                                "fallbacks".to_owned(),
                                Json::Num(self.store_fallbacks.load(Ordering::SeqCst) as f64),
                            ),
                        ]),
                    ));
                }
                Ok(fields)
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(vec![("shutting_down".to_owned(), Json::Bool(true))])
            }
        }
    }

    fn load(&self, source: String) -> Result<Vec<(String, Json)>, String> {
        let key = content_hash(&source);
        let (session, restored) = match self.restore(key, &source) {
            Some(session) => (session, true),
            None => {
                let prog = parse(&source).map_err(|e| format!("parse error: {e}"))?;
                let session =
                    EditSession::try_new(prog).map_err(|e| format!("unanalyzable: {e}"))?;
                (session, false)
            }
        };
        let stmts = session.prog().len();
        let cached = self.cache.insert(key, Entry::new(session, source));
        Ok(vec![
            ("program".to_owned(), Json::Str(key_string(key))),
            ("stmts".to_owned(), Json::Num(stmts as f64)),
            ("cached".to_owned(), Json::Bool(cached)),
            ("restored".to_owned(), Json::Bool(restored)),
        ])
    }

    /// Probes the snapshot store for `key` and rebuilds a session from the
    /// persisted artifacts. Any failure past the record layer — payload
    /// that no longer decodes, an FNV collision (embedded source differs
    /// from the request's), a snapshot of a program the current analyzer
    /// rejects — is counted as `store.corrupt_fallback` and answered with
    /// `None`, which sends the caller down the ordinary from-source path.
    fn restore(&self, key: u64, source: &str) -> Option<EditSession> {
        let store = self.store.as_ref()?;
        let payload = store.load(key)?;
        let fallback = |why: &str| {
            let n = self.store_fallbacks.fetch_add(1, Ordering::SeqCst) + 1;
            obs::record(|| obs::Event::Count {
                name: "store.corrupt_fallback",
                value: n,
            });
            eprintln!(
                "jumpslice-serve: snapshot {} unusable ({why}); rebuilding from source",
                key_string(key)
            );
        };
        let snap = match decode_snapshot(&payload) {
            Ok(snap) => snap,
            Err(e) => {
                fallback(&e.to_string());
                return None;
            }
        };
        // The store checksum makes this near-impossible, but a genuine
        // FNV-1a collision would otherwise serve slices of the *other*
        // program. Byte equality is the last word.
        if snap.source != source {
            fallback("content key collision");
            return None;
        }
        match EditSession::try_with_seed(snap.prog, snap.seed) {
            Ok(session) => {
                if let Some(hook) = &self.hook {
                    hook.restored(key);
                }
                Some(session)
            }
            Err(e) => {
                fallback(&format!("unanalyzable: {e}"));
                None
            }
        }
    }

    /// Write-behind: persist the warm analysis after a served slice. Best
    /// effort — an I/O failure costs the next cold start, not this
    /// response. Skips keys already on disk (content-addressed records
    /// never change, so the first write is the only one needed).
    fn store_save(&self, key: u64, entry: &Entry) {
        let Some(store) = &self.store else { return };
        if store.contains(key) {
            return;
        }
        let payload = encode_snapshot(&entry.source, entry.session.prog(), entry.session.seed());
        if let Err(e) = store.save(key, &payload) {
            eprintln!(
                "jumpslice-serve: could not persist snapshot {}: {e}",
                key_string(key)
            );
        }
    }

    fn checkout(&self, key: u64) -> Result<Entry, String> {
        self.cache.checkout(key).ok_or_else(|| {
            format!(
                "unknown program '{}' (never loaded, or evicted — re-send 'load')",
                key_string(key)
            )
        })
    }

    /// Checks the entry out, runs `f`, and checks it back in under the same
    /// key — including when `f` errors. A panic in `f` aborts the checkout
    /// (dropping the entry) and resumes unwinding into `handle_line`'s net.
    fn with_entry(
        &self,
        key: u64,
        f: impl FnOnce(&Engine, &mut Entry) -> Result<Vec<(String, Json)>, String>,
    ) -> Result<Vec<(String, Json)>, String> {
        let mut entry = self.checkout(key)?;
        let r = catch_unwind(AssertUnwindSafe(|| f(self, &mut entry)));
        match r {
            Ok(result) => {
                self.cache.checkin(key, key, entry);
                result
            }
            Err(payload) => {
                self.cache.abort_checkout(key);
                std::panic::resume_unwind(payload);
            }
        }
    }

    fn slice(
        &self,
        entry: &mut Entry,
        algo_name: &str,
        specs: &[CritSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<(String, Json)>, String> {
        let algo = algo_by_name(algo_name).ok_or_else(|| {
            format!("unknown algorithm '{algo_name}' (try fig7, conventional, fig12, fig13)")
        })?;
        let criteria = specs
            .iter()
            .map(|s| criterion(entry.session.prog(), s))
            .collect::<Result<Vec<_>, _>>()?;
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        // Chaos seam: a hooked engine may replace this execution with a
        // worker panic (exercising the abort-and-respond path) or a
        // clock-free cancellation after a seed-chosen number of slicer
        // checkpoints (exercising degradation deterministically).
        let fuel = match self.hook.as_ref().map(|h| h.slice_fault()) {
            Some(SliceFault::Panic) => panic!("injected fault: worker panic mid-slice"),
            Some(SliceFault::CancelAfter(n)) => Some(n),
            Some(SliceFault::None) | None => None,
        };
        let attempt = entry.session.with_analysis(|a| {
            // Cold-miss warms take the parallel phase-DAG schedule; the
            // slice fan-out itself stays single-threaded per request —
            // concurrency lives across requests, not within one. Re-solved
            // warm seeds skip the warm entirely: the condensed closure
            // index is not seed-persisted, so warming here would rebuild
            // it on every request and tax each warm hit for an index only
            // that one request could use.
            if !a.is_warm() {
                a.warm_parallel(
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                );
            }
            BatchSlicer::new(a)
                .with_threads(1)
                .with_deadline(deadline)
                .with_checkpoint_fuel(fuel)
                .try_slice_all(algo, &criteria)
        });
        let (slices, degraded) = match attempt {
            Ok(slices) => (slices, false),
            Err(bp) if cancel::is_cancelled(&bp.message) => {
                // Deadline blown mid-slice: degrade the WHOLE batch to the
                // Figure-13 conservative answer, without a deadline — it
                // needs neither the fixpoint nor the pdom traversal, so it
                // terminates promptly even on inputs fig7 struggled with.
                let n = self.degraded.fetch_add(1, Ordering::SeqCst) + 1;
                obs::record(|| obs::Event::Count {
                    name: "serve.degraded",
                    value: n,
                });
                let slices = entry
                    .session
                    .with_analysis(|a| {
                        BatchSlicer::new(a)
                            .with_threads(1)
                            .try_slice_all(conservative_slice, &criteria)
                    })
                    .map_err(|bp| format!("degraded slicer failed: {bp}"))?;
                (slices, true)
            }
            Err(bp) => return Err(format!("slicer panicked: {bp}")),
        };
        let prog = entry.session.prog();
        let out = specs
            .iter()
            .zip(&slices)
            .map(|(spec, s)| {
                Json::Obj(vec![
                    ("line".to_owned(), Json::Num(spec.line as f64)),
                    ("lines".to_owned(), lines_json(s, prog)),
                ])
            })
            .collect();
        Ok(vec![
            ("algo".to_owned(), Json::Str(algo_name.to_owned())),
            ("degraded".to_owned(), Json::Bool(degraded)),
            ("slices".to_owned(), Json::Arr(out)),
        ])
    }
}

fn stmt_at(p: &Program, line: usize) -> Result<jumpslice_lang::StmtId, String> {
    p.try_at_line(line).ok_or_else(|| {
        format!(
            "line {line} is out of range (program has {} lines)",
            p.len()
        )
    })
}

fn criterion(p: &Program, spec: &CritSpec) -> Result<Criterion, String> {
    let stmt = stmt_at(p, spec.line)?;
    match &spec.vars {
        None => Ok(Criterion::at_stmt(stmt)),
        Some(names) => {
            let vars = names
                .iter()
                .map(|n| {
                    p.name(n)
                        .ok_or_else(|| format!("variable '{n}' does not occur in the program"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Criterion::vars_at(stmt, vars))
        }
    }
}

fn lines_json(s: &Slice, p: &Program) -> Json {
    Json::Arr(
        s.lines(p)
            .into_iter()
            .map(|l| Json::Num(l as f64))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(resp: &str) -> Json {
        let j = Json::parse(resp).expect("response is valid JSON");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        j
    }

    fn err(resp: &str) -> String {
        let j = Json::parse(resp).expect("response is valid JSON");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
        j.get("error")
            .and_then(Json::as_str)
            .expect("error message")
            .to_owned()
    }

    const FIG3A: &str = "read(x); read(y); z = x + y; write(z); write(x);";

    fn load(e: &Engine, src: &str) -> String {
        let resp = ok(&e.handle_line(
            &Json::Obj(vec![
                ("op".to_owned(), Json::Str("load".to_owned())),
                ("source".to_owned(), Json::Str(src.to_owned())),
            ])
            .write_compact(),
        ));
        resp.get("program")
            .and_then(Json::as_str)
            .expect("key")
            .to_owned()
    }

    #[test]
    fn load_slice_round_trip() {
        let e = Engine::new(usize::MAX);
        let key = load(&e, FIG3A);
        let resp = ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        )));
        assert_eq!(resp.get("degraded").and_then(Json::as_bool), Some(false));
        let slices = resp.get("slices").and_then(Json::as_arr).expect("slices");
        let lines: Vec<f64> = slices[0]
            .get("lines")
            .and_then(Json::as_arr)
            .expect("lines")
            .iter()
            .filter_map(Json::as_num)
            .collect();
        assert_eq!(lines, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn malformed_and_hostile_lines_error_without_panicking() {
        let e = Engine::new(usize::MAX);
        for line in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"op":"slice","program":"0000000000000000","algo":"fig7","criteria":[{"line":1}]}"#,
            r#"{"op":"load","source":"x = ;"}"#,
            r#"{"op":"load","source":"L: x = 1; goto L; write(x);"}"#,
        ] {
            let msg = err(&e.handle_line(line));
            assert!(!msg.is_empty(), "line {line:?} should explain itself");
        }
        // Out-of-range criterion on a real program.
        let key = load(&e, FIG3A);
        err(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":99}}]}}"#
        )));
        err(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"nope","criteria":[{{"line":1}}]}}"#
        )));
        err(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":1,"vars":["ghost"]}}]}}"#
        )));
    }

    /// Satellite hardening (ISSUE 9): structural fuzz of the whole
    /// `handle_line` net. Every prefix truncation of valid requests,
    /// seeded byte splices, a 100k-deep nesting bomb, megabyte-scale
    /// fields, control bytes, and absurd numbers must each come back as
    /// exactly one parseable single-line JSON reply with an `ok` field —
    /// never a panic, never an empty string, never a wedged worker.
    #[test]
    fn fuzzed_lines_always_get_one_structured_reply() {
        let e = Engine::new(usize::MAX);
        let key = load(&e, FIG3A);
        let templates = [
            format!(
                r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
            ),
            format!(
                r#"{{"op":"edit","program":"{key}","edit":{{"kind":"replace_expr","path":[["body",2]],"expr":"x - y"}}}}"#
            ),
            r#"{"op":"load","source":"read(x); write(x);"}"#.to_owned(),
            r#"{"id":1,"op":"stats"}"#.to_owned(),
        ];
        let check_reply = |line: &str| {
            let resp = e.handle_line(line);
            assert!(!resp.contains('\n'), "single line for {line:?}: {resp:?}");
            let j = Json::parse(&resp)
                .unwrap_or_else(|err| panic!("reply to {line:?} is not JSON ({err}): {resp}"));
            assert!(
                j.get("ok").and_then(Json::as_bool).is_some(),
                "reply to {line:?} carries ok: {resp}"
            );
        };
        // Every truncation point of every template.
        for t in &templates {
            for cut in 0..t.len() {
                if t.is_char_boundary(cut) {
                    check_reply(&t[..cut]);
                }
            }
        }
        // Seeded splices: increments, deletions, and structural-byte
        // insertions at random offsets.
        jumpslice_testkit::check(12, |rng| {
            let mut bytes = templates[rng.gen_range(0..templates.len())]
                .clone()
                .into_bytes();
            for _ in 0..1 + rng.gen_range(0..4usize) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                match rng.gen_range(0..3u32) {
                    0 => bytes[at] = bytes[at].wrapping_add(1),
                    1 => {
                        bytes.remove(at);
                    }
                    _ => bytes.insert(at, b"{}[]\",:0"[rng.gen_range(0..8usize)]),
                }
            }
            if let Ok(line) = String::from_utf8(bytes) {
                check_reply(&line);
            }
        });
        // Whole-line hostiles. The nesting bomb is the one that must be an
        // error *before* recursion — an overflowed parser stack aborts the
        // process and no catch_unwind saves it.
        check_reply(&format!(
            r#"{{"op":"slice","criteria":{}"#,
            "[".repeat(100_000)
        ));
        check_reply(&format!(
            r#"{{"op":"load","source":"{}"}}"#,
            "x".repeat(2_000_000)
        ));
        check_reply(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":1e308}}]}}"#
        ));
        check_reply("{\"op\":\"load\",\"source\":\"read(x); \u{0001} write(x);\"}");
        // The daemon is still healthy after all of it.
        ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        )));
    }

    #[test]
    fn id_is_echoed() {
        let e = Engine::new(usize::MAX);
        let resp = e.handle_line(r#"{"id":7,"op":"stats"}"#);
        let j = ok(&resp);
        assert_eq!(j.get("id").and_then(Json::as_num), Some(7.0));
        assert!(
            resp.starts_with(r#"{"id":7,"#),
            "id leads the response: {resp}"
        );
    }

    /// The serve e2e script (and the CI `store` job) greps responses for
    /// exact JSON substrings, so field order is a contract, not an
    /// accident: `id` first when the request carried one, then `ok`, then
    /// the body (`error` first for failures). This test pins the exact
    /// prefixes those greps rely on.
    #[test]
    fn response_field_order_is_a_pinned_contract() {
        let e = Engine::new(usize::MAX);
        let resp = e.handle_line(r#"{"id":3,"op":"stats"}"#);
        assert!(
            resp.starts_with(r#"{"id":3,"ok":true,"requests":"#),
            "ok responses open id-then-ok-then-body: {resp}"
        );
        let resp = e.handle_line("not json");
        assert!(
            resp.starts_with(r#"{"ok":false,"error":""#),
            "error responses open ok-then-error: {resp}"
        );
        let resp = e.handle_line(r#"{"id":9,"op":"nope"}"#);
        assert!(
            resp.starts_with(r#"{"id":9,"ok":false,"error":""#),
            "errors still echo the id first: {resp}"
        );
        let key = load(&e, FIG3A);
        let resp = e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        ));
        assert!(
            resp.starts_with(r#"{"ok":true,"algo":"fig7","degraded":false,"slices":["#),
            "slice responses lead with algo and degraded: {resp}"
        );
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("jumpslice-engine-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn slice_lines(e: &Engine, key: &str, line: usize) -> String {
        let resp = ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":{line}}}]}}"#
        )));
        resp.get("slices").and_then(Json::as_arr).expect("slices")[0]
            .get("lines")
            .expect("lines")
            .write_compact()
    }

    #[test]
    fn a_restarted_engine_restores_from_the_store_tier() {
        let dir = tmpdir("restart");
        let src = jumpslice_lang::print_program(&jumpslice_core::corpus::fig3());
        let store = jumpslice_store::SnapshotStore::open(&dir, u64::MAX).unwrap();
        let cold = Engine::new(usize::MAX).with_store(store);
        let key = load(&cold, &src);
        let lines_cold = slice_lines(&cold, &key, 4);
        assert!(cold
            .store()
            .unwrap()
            .contains(crate::hash::parse_key(&key).unwrap()));

        // "Restart": a fresh engine (empty in-memory cache) over the same
        // directory. The load must come back restored and slice the same.
        let store = jumpslice_store::SnapshotStore::open(&dir, u64::MAX).unwrap();
        let warm = Engine::new(usize::MAX).with_store(store);
        let resp = ok(&warm.handle_line(
            &Json::Obj(vec![
                ("op".to_owned(), Json::Str("load".to_owned())),
                ("source".to_owned(), Json::Str(src.clone())),
            ])
            .write_compact(),
        ));
        assert_eq!(resp.get("restored").and_then(Json::as_bool), Some(true));
        assert_eq!(slice_lines(&warm, &key, 4), lines_cold);
        let stats = ok(&warm.handle_line(r#"{"op":"stats"}"#));
        let store_stats = stats.get("store").expect("store object in stats");
        assert_eq!(store_stats.get("hits").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            store_stats.get("fallbacks").and_then(Json::as_num),
            Some(0.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_corrupt_snapshot_falls_back_to_the_source_build() {
        let dir = tmpdir("corrupt");
        let src = jumpslice_lang::print_program(&jumpslice_core::corpus::fig3());
        let store = jumpslice_store::SnapshotStore::open(&dir, u64::MAX).unwrap();
        let cold = Engine::new(usize::MAX).with_store(store);
        let key = load(&cold, &src);
        let lines_cold = slice_lines(&cold, &key, 4);

        // Flip one payload byte in the only record on disk.
        let record = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "snap"))
            .expect("one snapshot record");
        let mut bytes = std::fs::read(&record).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&record, &bytes).unwrap();

        let store = jumpslice_store::SnapshotStore::open(&dir, u64::MAX).unwrap();
        let warm = Engine::new(usize::MAX).with_store(store);
        let resp = ok(&warm.handle_line(
            &Json::Obj(vec![
                ("op".to_owned(), Json::Str("load".to_owned())),
                ("source".to_owned(), Json::Str(src.clone())),
            ])
            .write_compact(),
        ));
        // Degradation, not damage: the load succeeds un-restored and the
        // slice is byte-identical to the cold engine's.
        assert_eq!(resp.get("restored").and_then(Json::as_bool), Some(false));
        assert_eq!(slice_lines(&warm, &key, 4), lines_cold);
        let stats = ok(&warm.handle_line(r#"{"op":"stats"}"#));
        let store_stats = stats.get("store").expect("store object in stats");
        assert_eq!(store_stats.get("corrupt").and_then(Json::as_num), Some(1.0));
        // The corrupt record was deleted; the slice above re-persisted it.
        assert_eq!(store_stats.get("writes").and_then(Json::as_num), Some(1.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_expired_deadline_degrades_to_a_fig13_answer() {
        let e = Engine::new(usize::MAX);
        // Structured program (Figure 14), where fig13 ⊇ fig7 is pinned by
        // the difftest lattice — so the degraded answer must contain the
        // precise one.
        let src = jumpslice_lang::print_program(&jumpslice_core::corpus::fig14());
        let key = load(&e, &src);
        let precise = ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":9}}]}}"#
        )));
        // deadline_ms: 0 is already expired when the first checkpoint runs,
        // so degradation is deterministic.
        let degraded = ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":9}}],"deadline_ms":0}}"#
        )));
        assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(precise.get("degraded").and_then(Json::as_bool), Some(false));
        let lines = |j: &Json| -> Vec<i64> {
            j.get("slices").and_then(Json::as_arr).expect("slices")[0]
                .get("lines")
                .and_then(Json::as_arr)
                .expect("lines")
                .iter()
                .filter_map(Json::as_num)
                .map(|n| n as i64)
                .collect()
        };
        let p = lines(&precise);
        let d = lines(&degraded);
        assert!(
            p.iter().all(|l| d.contains(l)),
            "degraded {d:?} must contain precise {p:?}"
        );
        assert!(
            e.cache_stats().hits >= 2,
            "all three requests hit the cache"
        );
    }

    #[test]
    fn edits_move_the_program_to_its_new_content_key() {
        let e = Engine::new(usize::MAX);
        let key = load(&e, FIG3A);
        let resp = ok(&e.handle_line(&format!(
            r#"{{"op":"edit","program":"{key}","edit":{{"kind":"replace_expr","path":[["body",2]],"expr":"x * y"}}}}"#
        )));
        let new_key = resp
            .get("program")
            .and_then(Json::as_str)
            .expect("new key")
            .to_owned();
        assert_ne!(new_key, key, "content changed, key changed");
        // Old key no longer resolves; new key slices the edited program.
        err(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        )));
        ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{new_key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        )));
        // A rejected edit keeps the entry and reports the reason.
        let msg = err(&e.handle_line(&format!(
            r#"{{"op":"edit","program":"{new_key}","edit":{{"kind":"delete","path":[["body",99]]}}}}"#
        )));
        assert!(msg.contains("edit rejected"), "{msg}");
        ok(&e.handle_line(&format!(
            r#"{{"op":"slice","program":"{new_key}","algo":"fig7","criteria":[{{"line":4}}]}}"#
        )));
    }

    #[test]
    fn chop_explain_and_stats_answer() {
        let e = Engine::new(usize::MAX);
        let key = load(&e, FIG3A);
        let resp = ok(&e.handle_line(&format!(
            r#"{{"op":"chop","program":"{key}","source_line":1,"sink_line":4}}"#
        )));
        assert!(resp.get("lines").and_then(Json::as_arr).is_some());
        let resp = ok(&e.handle_line(&format!(r#"{{"op":"explain","program":"{key}","line":4}}"#)));
        assert!(resp
            .get("report")
            .and_then(Json::as_str)
            .is_some_and(|r| !r.is_empty()));
        let resp = ok(&e.handle_line(r#"{"op":"stats"}"#));
        let cache = resp.get("cache").expect("cache object");
        assert!(cache.get("hits").and_then(Json::as_num).unwrap_or(0.0) >= 2.0);
        assert_eq!(resp.get("requests").and_then(Json::as_num), Some(4.0));
    }
}
