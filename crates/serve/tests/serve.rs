//! End-to-end tests against the real `jumpslice-serve` binary and against
//! the in-process engine where byte-budget behavior is easier to pin.
//!
//! The daemon test is the ISSUE's acceptance scenario: two programs, well
//! over a hundred mixed slice/edit requests over stdin/stdout JSON-lines,
//! a cache hit-rate check through `stats`, a deterministic
//! deadline-degradation check, and a clean shutdown.

use jumpslice_obs::Json;
use jumpslice_serve::engine::Engine;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One stdin/stdout JSON-lines conversation with the spawned daemon.
struct Daemon {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_jumpslice-serve"))
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and reads its one response line. Per-line
    /// lockstep keeps the pipes from filling in either direction.
    fn send(&mut self, line: &str) -> Json {
        let raw = self.send_raw(line);
        Json::parse(&raw).unwrap_or_else(|e| panic!("bad response {raw:?}: {e}"))
    }

    /// Like [`Daemon::send`] but returns the raw response line (without
    /// the trailing newline) — for byte-identity assertions.
    fn send_raw(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "daemon closed mid-conversation");
        resp.truncate(resp.trim_end().len());
        resp
    }

    fn send_ok(&mut self, line: &str) -> Json {
        let j = self.send(line);
        assert_eq!(
            j.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {line:?} failed: {j:?}"
        );
        j
    }

    /// Closes stdin and waits (bounded) for a clean exit.
    fn finish(mut self) {
        drop(self.stdin);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit within 10s of stdin EOF + shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

fn load(d: &mut Daemon, source: &str) -> (String, usize) {
    let req = Json::Obj(vec![
        ("op".to_owned(), Json::Str("load".to_owned())),
        ("source".to_owned(), Json::Str(source.to_owned())),
    ])
    .write_compact();
    let j = d.send_ok(&req);
    (
        j.get("program")
            .and_then(Json::as_str)
            .expect("key")
            .to_owned(),
        j.get("stmts").and_then(Json::as_num).expect("stmts") as usize,
    )
}

fn slice_lines(
    d: &mut Daemon,
    key: &str,
    algo: &str,
    line: usize,
    deadline_ms: Option<u64>,
) -> (Vec<usize>, bool) {
    let deadline = deadline_ms.map_or(String::new(), |ms| format!(r#","deadline_ms":{ms}"#));
    let j = d.send_ok(&format!(
        r#"{{"op":"slice","program":"{key}","algo":"{algo}","criteria":[{{"line":{line}}}]{deadline}}}"#
    ));
    let lines = j.get("slices").and_then(Json::as_arr).expect("slices")[0]
        .get("lines")
        .and_then(Json::as_arr)
        .expect("lines")
        .iter()
        .filter_map(Json::as_num)
        .map(|n| n as usize)
        .collect();
    let degraded = j
        .get("degraded")
        .and_then(Json::as_bool)
        .expect("degraded flag");
    (lines, degraded)
}

/// The acceptance scenario, verbatim from the ISSUE: two programs, ≥100
/// mixed requests, cache hit-rate > 0, deadline degradation superset,
/// clean shutdown.
#[test]
fn daemon_end_to_end_over_stdin() {
    let mut d = Daemon::spawn(&["--workers", "2", "--queue", "16"]);

    // Program A: structured (Figure 14) — fig13 ⊇ fig7 is pinned here, so
    // degradation supersets are checkable. Program B: unstructured (goto).
    let src_a = jumpslice_lang::print_program(&jumpslice_core::corpus::fig14());
    let src_b = jumpslice_lang::print_program(&jumpslice_core::corpus::fig8());
    let (mut key_a, stmts_a) = load(&mut d, &src_a);
    let (mut key_b, stmts_b) = load(&mut d, &src_b);
    assert_ne!(key_a, key_b);

    // Re-loading identical source is a cache hit and returns the same key.
    let (key_a2, _) = load(&mut d, &src_a);
    assert_eq!(key_a2, key_a);

    let mut requests = 3usize;
    let algos = ["fig7", "conventional", "fig13"];
    for i in 0..80 {
        let (key, stmts) = if i % 2 == 0 {
            (&mut key_a, stmts_a)
        } else {
            (&mut key_b, stmts_b)
        };
        let line = 1 + (i * 3) % stmts;
        let (lines, degraded) = slice_lines(&mut d, key, algos[i % algos.len()], line, None);
        assert!(!degraded);
        assert!(
            lines.iter().all(|&l| l >= 1),
            "lines are 1-based: {lines:?}"
        );
        requests += 1;

        if i % 10 == 3 {
            // Mixed in: an edit that changes content, re-keying the entry.
            let j = d.send_ok(&format!(
                r#"{{"op":"edit","program":"{key}","edit":{{"kind":"insert","path":[["body",0]],"stmt":{{"kind":"assign","var":"zz","expr":"{i}"}}}}}}"#
            ));
            let new_key = j.get("program").and_then(Json::as_str).expect("new key");
            assert_ne!(new_key, key.as_str(), "insert changes the content key");
            *key = new_key.to_owned();
            requests += 1;
            // The edited program answers immediately under its new key.
            let (_, degraded) = slice_lines(&mut d, key, "fig7", 1, None);
            assert!(!degraded);
            requests += 1;
        }
    }

    // Deadline degradation, deterministic via deadline_ms: 0, on the
    // structured program (where the fig7 ⊆ fig13 superset is guaranteed).
    let (precise, was_degraded) = slice_lines(&mut d, &key_a, "fig7", stmts_a, None);
    assert!(!was_degraded);
    let (degraded, was_degraded) = slice_lines(&mut d, &key_a, "fig7", stmts_a, Some(0));
    assert!(was_degraded, "deadline_ms:0 must force degradation");
    assert!(
        precise.iter().all(|l| degraded.contains(l)),
        "degraded {degraded:?} must contain precise {precise:?}"
    );
    requests += 2;

    let stats = d.send_ok(r#"{"op":"stats"}"#);
    let cache = stats.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_num).expect("hits");
    assert!(hits > 0.0, "cache hit-rate must be positive: {stats:?}");
    assert!(
        stats
            .get("requests")
            .and_then(Json::as_num)
            .expect("requests")
            >= (requests + 1) as f64,
        "daemon counted every request"
    );
    assert!(
        stats
            .get("degraded")
            .and_then(Json::as_num)
            .expect("degraded")
            >= 1.0,
        "the degraded request was counted"
    );
    assert!(
        requests + 1 >= 100,
        "the scenario sends ≥100 requests, sent {}",
        requests + 1
    );

    let bye = d.send_ok(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
    d.finish();
}

/// Hostile inputs over the real pipe: the daemon answers an error for each
/// and stays alive for valid traffic afterwards.
#[test]
fn daemon_survives_hostile_lines() {
    let mut d = Daemon::spawn(&["--workers", "1"]);
    for bad in [
        "garbage",
        r#"{"op":"load","source":"x = ;"}"#,
        r#"{"op":"load","source":"L: x = 1; goto L; write(x);"}"#,
        r#"{"op":"slice","program":"ffffffffffffffff","algo":"fig7","criteria":[{"line":1}]}"#,
        r#"{"op":"explain","program":"ffffffffffffffff","line":1}"#,
        r#"[]"#,
    ] {
        let j = d.send(bad);
        assert_eq!(
            j.get("ok").and_then(Json::as_bool),
            Some(false),
            "{bad:?} must error, got {j:?}"
        );
        assert!(j.get("error").and_then(Json::as_str).is_some());
    }
    let (key, stmts) = load(&mut d, "read(x); y = x + 1; write(y);");
    let (lines, _) = slice_lines(&mut d, &key, "fig7", stmts, None);
    assert_eq!(lines, vec![1, 2, 3]);
    d.send_ok(r#"{"op":"shutdown"}"#);
    d.finish();
}

/// The inline (`--workers 0`) mode speaks the same protocol.
#[test]
fn inline_mode_round_trips() {
    let mut d = Daemon::spawn(&["--workers", "0"]);
    let (key, _) = load(&mut d, "read(a); b = a; write(b);");
    let (lines, _) = slice_lines(&mut d, &key, "fig12", 3, None);
    assert_eq!(lines, vec![1, 2, 3]);
    d.send_ok(r#"{"op":"shutdown"}"#);
    d.finish();
}

/// Byte-budget eviction through the protocol: with a budget that holds
/// roughly one program, loading a second evicts the first, `stats` records
/// the eviction, and the evicted key answers with a re-loadable error.
#[test]
fn cache_eviction_under_byte_budget() {
    // A budget below any entry's estimate: the cache still keeps the
    // newest entry (it never evicts down to zero), so each load evicts
    // exactly the previous program.
    let e = Engine::new(1);
    let load = |e: &Engine, src: &str| -> String {
        let j = Json::parse(
            &e.handle_line(
                &Json::Obj(vec![
                    ("op".to_owned(), Json::Str("load".to_owned())),
                    ("source".to_owned(), Json::Str(src.to_owned())),
                ])
                .write_compact(),
            ),
        )
        .expect("valid json");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        j.get("program")
            .and_then(Json::as_str)
            .expect("key")
            .to_owned()
    };
    let k1 = load(&e, "read(a); write(a);");
    let k2 = load(&e, "read(b); write(b);");
    assert_ne!(k1, k2);
    let stats = e.cache_stats();
    assert!(stats.evictions >= 1, "budget forced an eviction: {stats:?}");
    assert_eq!(stats.entries, 1, "only the newest survives the tiny budget");

    // The evicted program now misses, with an error telling the client to
    // re-load — and re-loading works.
    let j = Json::parse(&e.handle_line(&format!(
        r#"{{"op":"slice","program":"{k1}","algo":"fig7","criteria":[{{"line":1}}]}}"#
    )))
    .expect("valid json");
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
    let msg = j.get("error").and_then(Json::as_str).expect("error");
    assert!(
        msg.contains("load"),
        "error should hint at re-loading: {msg}"
    );
    let k1b = load(&e, "read(a); write(a);");
    assert_eq!(k1b, k1, "content key is stable across eviction");
}

/// The tentpole acceptance scenario end-to-end: a daemon with
/// `--store-dir` persists analyses behind slices; a *new process* over
/// the same directory restores them (`restored: true`, a store hit in
/// `stats`) and serves byte-identical responses; a corrupted record
/// degrades to the from-source build — still byte-identical, counted,
/// never fatal.
#[test]
fn daemon_restart_restores_from_store_and_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("jumpslice-store-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store_args = ["--workers", "0", "--store-dir", dir.to_str().expect("utf8")];
    let src = jumpslice_lang::print_program(&jumpslice_core::corpus::fig8());

    // Cold run: nothing on disk, load builds from source, slice persists.
    let mut cold = Daemon::spawn(&store_args);
    let (key, stmts) = load(&mut cold, &src);
    let slice_req = format!(
        r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":{stmts}}}]}}"#
    );
    let cold_resp = cold.send_raw(&slice_req);
    let stats = cold.send_ok(r#"{"op":"stats"}"#);
    let store = stats.get("store").expect("store stats present");
    assert_eq!(store.get("writes").and_then(Json::as_num), Some(1.0));
    assert_eq!(store.get("hits").and_then(Json::as_num), Some(0.0));
    cold.send_ok(r#"{"op":"shutdown"}"#);
    cold.finish();

    // Restart over the same directory: the snapshot is the analysis.
    let mut warm = Daemon::spawn(&store_args);
    let req = Json::Obj(vec![
        ("op".to_owned(), Json::Str("load".to_owned())),
        ("source".to_owned(), Json::Str(src.clone())),
    ])
    .write_compact();
    let j = warm.send_ok(&req);
    assert_eq!(
        j.get("restored").and_then(Json::as_bool),
        Some(true),
        "warm load must restore from the store: {j:?}"
    );
    let warm_resp = warm.send_raw(&slice_req);
    assert_eq!(warm_resp, cold_resp, "restored slice is byte-identical");
    let stats = warm.send_ok(r#"{"op":"stats"}"#);
    let store = stats.get("store").expect("store stats present");
    assert_eq!(store.get("hits").and_then(Json::as_num), Some(1.0));
    assert_eq!(store.get("corrupt").and_then(Json::as_num), Some(0.0));
    warm.send_ok(r#"{"op":"shutdown"}"#);
    warm.finish();

    // Flip a payload bit on disk. The next restart must detect it, fall
    // back to building from source, and still answer identically.
    let record = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .expect("one snapshot record");
    let mut bytes = std::fs::read(&record).expect("read record");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&record, &bytes).expect("corrupt record");

    let mut hurt = Daemon::spawn(&store_args);
    let j = hurt.send_ok(&req);
    assert_eq!(
        j.get("restored").and_then(Json::as_bool),
        Some(false),
        "corrupt snapshot must not restore: {j:?}"
    );
    let hurt_resp = hurt.send_raw(&slice_req);
    assert_eq!(hurt_resp, cold_resp, "fallback slice is byte-identical");
    let stats = hurt.send_ok(r#"{"op":"stats"}"#);
    let store = stats.get("store").expect("store stats present");
    assert_eq!(store.get("corrupt").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        store.get("writes").and_then(Json::as_num),
        Some(1.0),
        "the slice re-persisted a replacement record"
    );
    hurt.send_ok(r#"{"op":"shutdown"}"#);
    hurt.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Store-backed replay: the first pass writes a snapshot per artifact,
/// the second pass (a fresh process) restores every one of them — and
/// both agree with the library on every slice.
#[test]
fn replay_mode_restores_from_the_store_on_the_second_pass() {
    let base = std::env::temp_dir().join(format!("jumpslice-replay-store-{}", std::process::id()));
    let progs = base.join("progs");
    let store = base.join("store");
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&progs).expect("mkdir");
    for (name, prog, _) in jumpslice_core::corpus::all() {
        std::fs::write(
            progs.join(format!("{name}.prog.txt")),
            jumpslice_lang::print_program(&prog),
        )
        .expect("write artifact");
    }
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_jumpslice-serve"))
            .args([
                "--replay-dir",
                progs.to_str().expect("utf8"),
                "--store-dir",
                store.to_str().expect("utf8"),
            ])
            .output()
            .expect("replay runs");
        assert!(
            out.status.success(),
            "replay failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    assert!(first.contains("0 mismatches"), "{first}");
    assert!(first.contains("replay store: 0 restored"), "{first}");
    let second = run();
    assert!(second.contains("0 mismatches"), "{second}");
    let programs = jumpslice_core::corpus::all().len();
    assert!(
        second.contains(&format!("replay store: {programs} restored")),
        "every artifact restores on the second pass: {second}"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// The replay mode cross-checks served slices against direct library
/// calls on a directory of program artifacts.
#[test]
fn replay_mode_agrees_with_the_library() {
    let dir = std::env::temp_dir().join(format!("jumpslice-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (name, prog, _) in jumpslice_core::corpus::all() {
        std::fs::write(
            dir.join(format!("{name}.prog.txt")),
            jumpslice_lang::print_program(&prog),
        )
        .expect("write artifact");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_jumpslice-serve"))
        .args(["--replay-dir", dir.to_str().expect("utf8 tmpdir")])
        .output()
        .expect("replay runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replay found mismatches:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 mismatches"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
