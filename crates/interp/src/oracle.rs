//! The trajectory-projection oracle.
//!
//! A slice is correct (in the Ball–Horwitz sense the paper adopts) when, on
//! every input, executing the residual program yields exactly the original
//! execution's trajectory *projected onto the slice's statements* — same
//! statements, same order, same values. The conventional slicer fails this
//! on jump programs (Figure 3-b); the paper's algorithms must pass it.

use crate::{run, run_masked, Input, TraceEvent, Trajectory};
use jumpslice_dataflow::StmtSet;
use jumpslice_lang::{Label, Program, StmtId};

/// Projects a trajectory onto a statement set.
pub fn project(traj: &Trajectory, keep: &StmtSet) -> Vec<TraceEvent> {
    traj.events
        .iter()
        .copied()
        .filter(|e| keep.contains(e.stmt))
        .collect()
}

/// A counterexample found by [`check_projection`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectionMismatch {
    /// The offending input.
    pub input: Input,
    /// The original run projected onto the slice.
    pub expected: Vec<TraceEvent>,
    /// What the residual program actually did.
    pub actual: Vec<TraceEvent>,
}

impl std::fmt::Display for ProjectionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "projection mismatch on input {:?}: expected {} events, slice executed {}",
            self.input,
            self.expected.len(),
            self.actual.len()
        )
    }
}

impl std::error::Error for ProjectionMismatch {}

/// Checks the projection property of a slice on a family of inputs.
///
/// For each input the full program and the residual program run with the
/// same fuel; their (projected) event sequences must agree. If either run
/// exhausts its fuel, the shorter sequence must be a prefix of the longer —
/// with identical deterministic inputs the property is prefix-closed.
///
/// # Errors
///
/// Returns the first input whose projected trajectories disagree.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion, agrawal_slice};
/// use jumpslice_interp::{check_projection, Input};
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
/// check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8))?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_projection(
    prog: &Program,
    slice: &StmtSet,
    moved_labels: &[(Label, Option<StmtId>)],
    inputs: &[Input],
) -> Result<(), ProjectionMismatch> {
    for input in inputs {
        let full = run(prog, input);
        let residual = run_masked(prog, input, &|s| slice.contains(s), moved_labels);
        let expected = project(&full, slice);
        // Project the residual run too: structurally auto-included
        // containers execute but are not slice members.
        let actual = project(&residual, slice);
        let ok = if full.fuel_exhausted || residual.fuel_exhausted {
            let n = expected.len().min(actual.len());
            expected[..n] == actual[..n]
        } else {
            expected == actual
        };
        if !ok {
            return Err(ProjectionMismatch {
                input: *input,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn identity_slice_always_projects() {
        let p = parse("read(x); while (x > 0) { x = x - 1; } write(x);").unwrap();
        let all: StmtSet = p.stmt_ids().collect();
        check_projection(&p, &all, &[], &Input::family(6)).unwrap();
    }

    #[test]
    fn irrelevant_statement_can_be_dropped() {
        let p = parse("x = 1; y = 2; write(x);").unwrap();
        let keep: StmtSet = [p.at_line(1), p.at_line(3)].into_iter().collect();
        check_projection(&p, &keep, &[], &Input::family(4)).unwrap();
    }

    #[test]
    fn dropping_a_needed_goto_is_detected() {
        // The crux of the paper: removing the goto breaks the projection.
        let p = parse(
            "read(x);
             if (x > 0) goto POS;
             y = 0;
             goto OUT;
             POS: y = 1;
             OUT: write(y);",
        )
        .unwrap();
        // Keep everything except the goto on line 4.
        let bad: StmtSet = p.stmt_ids().filter(|&s| s != p.at_line(4)).collect();
        let err = check_projection(&p, &bad, &[], &Input::family(8));
        assert!(err.is_err(), "missing goto must be caught by the oracle");
        // Keeping it passes.
        let good: StmtSet = p.stmt_ids().collect();
        check_projection(&p, &good, &[], &Input::family(8)).unwrap();
    }

    #[test]
    fn projection_helper_filters() {
        let p = parse("a = 1; b = 2;").unwrap();
        let t = run(&p, &Input::default());
        let keep: StmtSet = [p.at_line(2)].into_iter().collect();
        let proj = project(&t, &keep);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].stmt, p.at_line(2));
    }

    #[test]
    fn mismatch_is_reportable() {
        let p = parse("x = 1; write(x);").unwrap();
        let keep: StmtSet = [p.at_line(2)].into_iter().collect();
        // Dropping x = 1 changes the written value: mismatch.
        let err = check_projection(&p, &keep, &[], &[Input::default()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("projection mismatch"), "{msg}");
    }
}
