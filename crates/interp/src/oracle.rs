//! The trajectory-projection oracle.
//!
//! A slice is correct (in the Ball–Horwitz sense the paper adopts) when, on
//! every input, executing the residual program yields exactly the original
//! execution's trajectory *projected onto the slice's statements* — same
//! statements, same order, same values. The conventional slicer fails this
//! on jump programs (Figure 3-b); the paper's algorithms must pass it.
//!
//! Three verdicts are possible per input, and the distinction matters to
//! the differential tester:
//!
//! * **verified** — both runs terminated and the projected trajectories
//!   agree;
//! * **inconclusive** — a run exhausted its fuel, so only a prefix could be
//!   compared (and it agreed). A non-terminating program can never *verify*
//!   a slice, only fail to refute it; [`ProjectionReport`] keeps the count
//!   so harnesses can tell "checked" apart from "timed out".
//! * **failed** — the trajectories disagree ([`ProjectionError::Mismatch`])
//!   or the residual program could not even run because the slice stranded
//!   a jump ([`ProjectionError::Stuck`]).

use crate::{run, run_masked, ExecError, Input, TraceEvent, Trajectory};
use jumpslice_dataflow::StmtSet;
use jumpslice_lang::{Label, Program, StmtId};

/// Projects a trajectory onto a statement set.
pub fn project(traj: &Trajectory, keep: &StmtSet) -> Vec<TraceEvent> {
    traj.events
        .iter()
        .copied()
        .filter(|e| keep.contains(e.stmt))
        .collect()
}

/// A counterexample found by [`check_projection`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectionMismatch {
    /// The offending input.
    pub input: Input,
    /// The original run projected onto the slice.
    pub expected: Vec<TraceEvent>,
    /// What the residual program actually did.
    pub actual: Vec<TraceEvent>,
}

impl std::fmt::Display for ProjectionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "projection mismatch on input {:?}: expected {} events, slice executed {}",
            self.input,
            self.expected.len(),
            self.actual.len()
        )
    }
}

impl std::error::Error for ProjectionMismatch {}

/// Why [`check_projection`] rejected a slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProjectionError {
    /// The projected trajectories disagree.
    Mismatch(ProjectionMismatch),
    /// The residual program could not run at all: the slice stranded a jump
    /// (dangling label, orphaned `break`/`continue`).
    Stuck {
        /// The input being checked when planning failed.
        input: Input,
        /// What stranded.
        error: ExecError,
    },
}

impl std::fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionError::Mismatch(m) => m.fmt(f),
            ProjectionError::Stuck { input, error } => {
                write!(f, "residual program stuck on input {input:?}: {error}")
            }
        }
    }
}

impl std::error::Error for ProjectionError {}

/// How conclusively a family of inputs exercised a slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProjectionReport {
    /// Inputs on which both runs terminated and the projections agreed.
    pub verified: usize,
    /// Inputs where a run exhausted its fuel: only an (agreeing) prefix
    /// could be compared, which refutes nothing about the tail.
    pub inconclusive: usize,
}

impl ProjectionReport {
    /// Whether at least one input produced a full, terminating comparison.
    pub fn is_conclusive(&self) -> bool {
        self.verified > 0
    }
}

/// Checks the projection property of a slice on a family of inputs.
///
/// For each input the full program and the residual program run with the
/// same fuel; their (projected) event sequences must agree. If either run
/// exhausts its fuel, the shorter sequence must be a prefix of the longer —
/// with identical deterministic inputs the property is prefix-closed — and
/// the input counts as *inconclusive* in the returned report rather than
/// verified: a truncated run cannot certify the slice, only fail to refute
/// it.
///
/// # Errors
///
/// Returns the first input whose projected trajectories disagree
/// ([`ProjectionError::Mismatch`]), or on which the residual program could
/// not run because the slice stranded a jump ([`ProjectionError::Stuck`]).
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion, agrawal_slice};
/// use jumpslice_interp::{check_projection, Input};
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
/// let report = check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8))?;
/// assert!(report.is_conclusive());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_projection(
    prog: &Program,
    slice: &StmtSet,
    moved_labels: &[(Label, Option<StmtId>)],
    inputs: &[Input],
) -> Result<ProjectionReport, ProjectionError> {
    let mut report = ProjectionReport::default();
    for input in inputs {
        let full = run(prog, input);
        let residual = match run_masked(prog, input, &|s| slice.contains(s), moved_labels) {
            Ok(t) => t,
            Err(error) => {
                return Err(ProjectionError::Stuck {
                    input: *input,
                    error,
                })
            }
        };
        let expected = project(&full, slice);
        // Project the residual run too: structurally auto-included
        // containers execute but are not slice members.
        let actual = project(&residual, slice);
        let truncated = full.fuel_exhausted || residual.fuel_exhausted;
        let ok = if truncated {
            let n = expected.len().min(actual.len());
            expected[..n] == actual[..n]
        } else {
            expected == actual
        };
        if !ok {
            return Err(ProjectionError::Mismatch(ProjectionMismatch {
                input: *input,
                expected,
                actual,
            }));
        }
        if truncated {
            report.inconclusive += 1;
        } else {
            report.verified += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn identity_slice_always_projects() {
        let p = parse("read(x); while (x > 0) { x = x - 1; } write(x);").unwrap();
        let all: StmtSet = p.stmt_ids().collect();
        let report = check_projection(&p, &all, &[], &Input::family(6)).unwrap();
        assert!(report.is_conclusive());
        assert_eq!(report.inconclusive, 0);
    }

    #[test]
    fn irrelevant_statement_can_be_dropped() {
        let p = parse("x = 1; y = 2; write(x);").unwrap();
        let keep: StmtSet = [p.at_line(1), p.at_line(3)].into_iter().collect();
        check_projection(&p, &keep, &[], &Input::family(4)).unwrap();
    }

    #[test]
    fn dropping_a_needed_goto_is_detected() {
        // The crux of the paper: removing the goto breaks the projection.
        let p = parse(
            "read(x);
             if (x > 0) goto POS;
             y = 0;
             goto OUT;
             POS: y = 1;
             OUT: write(y);",
        )
        .unwrap();
        // Keep everything except the goto on line 4.
        let bad: StmtSet = p.stmt_ids().filter(|&s| s != p.at_line(4)).collect();
        let err = check_projection(&p, &bad, &[], &Input::family(8));
        assert!(err.is_err(), "missing goto must be caught by the oracle");
        // Keeping it passes.
        let good: StmtSet = p.stmt_ids().collect();
        check_projection(&p, &good, &[], &Input::family(8)).unwrap();
    }

    #[test]
    fn projection_helper_filters() {
        let p = parse("a = 1; b = 2;").unwrap();
        let t = run(&p, &Input::default());
        let keep: StmtSet = [p.at_line(2)].into_iter().collect();
        let proj = project(&t, &keep);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].stmt, p.at_line(2));
    }

    #[test]
    fn mismatch_is_reportable() {
        let p = parse("x = 1; write(x);").unwrap();
        let keep: StmtSet = [p.at_line(2)].into_iter().collect();
        // Dropping x = 1 changes the written value: mismatch.
        let err = check_projection(&p, &keep, &[], &[Input::default()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("projection mismatch"), "{msg}");
    }

    #[test]
    fn stranded_jump_reported_as_stuck_not_panic() {
        // A slice keeping a goto but neither its target nor a re-associated
        // label used to abort the whole process; now it is a verdict.
        let p = parse("goto L; L: x = 1; write(x);").unwrap();
        let keep: StmtSet = [p.at_line(1), p.at_line(3)].into_iter().collect();
        let err = check_projection(&p, &keep, &[], &[Input::default()]).unwrap_err();
        match err {
            ProjectionError::Stuck { error, .. } => {
                assert_eq!(
                    error,
                    crate::ExecError::DanglingLabel {
                        label: "L".to_owned()
                    }
                );
            }
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_is_inconclusive_not_verified() {
        // The original program never terminates under this eof horizon; a
        // truncated prefix comparison must not count as verification.
        let p = parse("x = 1; while (x) { x = 1; } write(x);").unwrap();
        let all: StmtSet = p.stmt_ids().collect();
        let inputs = [Input {
            fuel: 50,
            ..Input::default()
        }];
        let report = check_projection(&p, &all, &[], &inputs).unwrap();
        assert_eq!(report.verified, 0);
        assert_eq!(report.inconclusive, 1);
        assert!(!report.is_conclusive());
    }
}
