//! A deterministic interpreter for mini-C programs and residual slices,
//! plus the trajectory-projection oracle used to check slice correctness.
//!
//! # Input model
//!
//! Weiser-style slice correctness quantifies over inputs. With a single
//! shared input stream, deleting an *irrelevant* `read` would shift every
//! later read — an inter-read dependence that the paper's (and every PDG
//! slicer's) data-dependence model deliberately ignores. This interpreter
//! therefore gives each `read`/`eof` **call site** its own deterministic
//! stream: the k-th execution of `read(x)` at statement `s` yields
//! `mix(seed, s, k)`, and `eof()` at site `s` turns true after its
//! `eof_after`-th call. Under this model the paper's dependence relations
//! are exact, so a correct slice must reproduce the original run's events
//! precisely (see [`check_projection`]).
//!
//! # Residual execution
//!
//! [`run_masked`] executes the *residual program* induced by a statement
//! set: excluded statements are deleted from their blocks (so control falls
//! through them), and `goto`s whose label was re-associated jump to the new
//! carrier — the exact semantics of the paper's slices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod exec;
mod oracle;

pub use eval::mix;
pub use exec::{run, run_masked, run_with_sites, ExecError, Input, TraceEvent, Trajectory};
pub use oracle::{
    check_projection, project, ProjectionError, ProjectionMismatch, ProjectionReport,
};
