//! The executor: runs full programs and residual slices.

use crate::eval::{eval, State};
use jumpslice_lang::{CaseGuard, Label, Program, StmtId, StmtKind};
use std::collections::HashMap;

/// One deterministic program input: the seed of the per-site read streams,
/// the per-site `eof()` horizon, and a fuel bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Input {
    /// Seed of every per-site `read` stream.
    pub seed: u64,
    /// `eof()` at a given site returns true from its `eof_after`-th call on.
    pub eof_after: u64,
    /// Maximum number of statements to execute.
    pub fuel: u64,
}

impl Default for Input {
    fn default() -> Self {
        Input {
            seed: 0,
            eof_after: 3,
            fuel: 100_000,
        }
    }
}

impl Input {
    /// A compact family of inputs for the oracle: distinct seeds and small
    /// varying eof horizons.
    pub fn family(n: usize) -> Vec<Input> {
        (0..n as u64)
            .map(|i| Input {
                seed: i.wrapping_mul(0x9e37_79b9) ^ 0xabcd,
                eof_after: i % 5,
                fuel: 100_000,
            })
            .collect()
    }
}

/// One executed statement: its id and the interesting value it produced
/// (assigned/read/written value, branch decision, or scrutinee).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The executed statement.
    pub stmt: StmtId,
    /// The value it produced, if any.
    pub value: Option<i64>,
}

/// The full record of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trajectory {
    /// Every executed statement, in order.
    pub events: Vec<TraceEvent>,
    /// Values passed to `write` (and non-empty `return`s), in order.
    pub outputs: Vec<i64>,
    /// Whether the run stopped because fuel ran out (vs. normal exit).
    pub fuel_exhausted: bool,
}

/// Why a residual program could not be planned or executed.
///
/// A *full* validated program never produces these — the language validator
/// guarantees every `break`/`continue` has an enclosing construct and every
/// `goto` a resolvable label. They arise only when a mask (an incorrect
/// slice) strands a jump, which is exactly the situation the differential
/// tester must observe as data rather than as a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An included `goto` targets an excluded label that the slicer did not
    /// re-associate.
    DanglingLabel {
        /// The unresolved label's name.
        label: String,
    },
    /// A `break` survived the mask with no enclosing breakable construct to
    /// transfer control out of.
    StrandedBreak {
        /// The stranded statement.
        stmt: StmtId,
    },
    /// A `continue` survived the mask with no enclosing loop.
    StrandedContinue {
        /// The stranded statement.
        stmt: StmtId,
    },
    /// Execution reached a statement whose control flow was never planned,
    /// or whose planned flow shape does not match its kind.
    MalformedFlow {
        /// The offending statement.
        stmt: StmtId,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DanglingLabel { label } => write!(
                f,
                "goto target `{label}` excluded from the residual program but not re-associated"
            ),
            ExecError::StrandedBreak { stmt } => write!(
                f,
                "break ({stmt:?}) has no enclosing breakable construct in the residual program"
            ),
            ExecError::StrandedContinue { stmt } => write!(
                f,
                "continue ({stmt:?}) has no enclosing loop in the residual program"
            ),
            ExecError::MalformedFlow { stmt } => {
                write!(f, "no planned control flow for statement {stmt:?}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Where control goes next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    Stmt(StmtId),
    Exit,
}

/// Precomputed control flow of one (possibly residual) program.
#[derive(Clone, Debug)]
enum Flow {
    Seq(Target),
    /// Predicate: true/false successor.
    Branch(Target, Target),
    /// Switch: guard values and the default successor.
    Select(Vec<(i64, Target)>, Target),
}

/// Runs the complete program on `input`.
///
/// # Examples
///
/// ```
/// use jumpslice_lang::parse;
/// use jumpslice_interp::{run, Input};
/// let p = parse("x = 2; y = x * 3; write(y);")?;
/// let t = run(&p, &Input::default());
/// assert_eq!(t.outputs, vec![6]);
/// assert_eq!(t.events.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(prog: &Program, input: &Input) -> Trajectory {
    run_masked(prog, input, &|_| true, &[])
        .expect("validated full programs plan and execute without errors")
}

/// Runs the *residual program* induced by `include` on `input`.
///
/// Excluded statements are deleted from their blocks; `goto`s whose label
/// was re-associated (`moved_labels`, as produced by the slicers) jump to
/// the new carrier, `None` meaning the exit.
///
/// A compound statement with a surviving descendant is kept structurally
/// (its predicate must run to decide whether the descendant executes), even
/// if the mask excludes it — mirroring how `print_slice` renders such
/// residual programs.
///
/// # Errors
///
/// Returns [`ExecError`] when the mask strands a jump — an included `goto`
/// targeting an excluded label that was not re-associated, or a
/// `break`/`continue` left without its enclosing construct. Slices produced
/// by the algorithms in `jumpslice-core` never trip this; the differential
/// tester relies on the error to catch slicers that do.
pub fn run_masked(
    prog: &Program,
    input: &Input,
    include: &dyn Fn(StmtId) -> bool,
    moved_labels: &[(Label, Option<StmtId>)],
) -> Result<Trajectory, ExecError> {
    let plan = Planner {
        prog,
        include,
        moved: moved_labels.iter().copied().collect(),
        flow: HashMap::new(),
        error: None,
    }
    .plan()?;
    execute(prog, input, &plan, &|s| s.index() as u64)
}

/// Runs the complete program with a custom *site key* for `read`/`eof`
/// streams. Two programs whose corresponding statements map to equal keys
/// draw identical input values — how a synthesized slice (fresh statement
/// ids) replays the original program's inputs.
pub fn run_with_sites(
    prog: &Program,
    input: &Input,
    site_key: &dyn Fn(StmtId) -> u64,
) -> Trajectory {
    let plan = Planner {
        prog,
        include: &|_| true,
        moved: HashMap::new(),
        flow: HashMap::new(),
        error: None,
    }
    .plan()
    .expect("validated full programs plan without errors");
    execute(prog, input, &plan, site_key).expect("validated full programs execute without errors")
}

struct Plan {
    entry: Target,
    flow: HashMap<StmtId, Flow>,
}

struct Planner<'a> {
    prog: &'a Program,
    include: &'a dyn Fn(StmtId) -> bool,
    moved: HashMap<Label, Option<StmtId>>,
    flow: HashMap<StmtId, Flow>,
    /// First stranded-jump error met while wiring; reported after the walk.
    error: Option<ExecError>,
}

#[derive(Clone, Copy)]
struct Ctx {
    break_to: Option<Target>,
    continue_to: Option<Target>,
}

impl Planner<'_> {
    fn plan(mut self) -> Result<Plan, ExecError> {
        let body: Vec<StmtId> = self.prog.body().to_vec();
        let ctx = Ctx {
            break_to: None,
            continue_to: None,
        };
        let entry = self.wire_block(&body, Target::Exit, ctx);
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Plan {
            entry,
            flow: self.flow,
        })
    }

    /// Records the first wiring error; later ones are dropped (the first is
    /// the one a shrinker wants to chase anyway).
    fn fail(&mut self, e: ExecError) {
        self.error.get_or_insert(e);
    }

    fn included(&self, s: StmtId) -> bool {
        // A compound statement stays (its predicate must run) whenever any
        // of its descendants survives — the same structural closure the
        // pretty-printer applies. Events of such containers are not part of
        // the slice set, so the projection oracle still ignores them.
        (self.include)(s) || self.any_descendant_included(s)
    }

    fn any_descendant_included(&self, s: StmtId) -> bool {
        let check = |b: &[StmtId]| {
            b.iter()
                .any(|&c| (self.include)(c) || self.any_descendant_included(c))
        };
        match &self.prog.stmt(s).kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => check(then_branch) || check(else_branch),
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => check(body),
            StmtKind::Switch { arms, .. } => arms.iter().any(|a| check(&a.body)),
            _ => false,
        }
    }

    /// Where execution of `s` begins (do-while bodies run before their
    /// predicate).
    fn first_target(&self, s: StmtId) -> Target {
        if let StmtKind::DoWhile { body, .. } = &self.prog.stmt(s).kind {
            if let Some(&f) = body.iter().find(|&&c| self.included(c)) {
                return self.first_target(f);
            }
        }
        Target::Stmt(s)
    }

    fn label_target(&mut self, l: Label) -> Target {
        let orig = self.prog.label_target(l).expect("validated labels resolve");
        if self.included(orig) {
            return self.first_target(orig);
        }
        match self.moved.get(&l) {
            Some(Some(dest)) => self.first_target(*dest),
            Some(None) => Target::Exit,
            None => {
                self.fail(ExecError::DanglingLabel {
                    label: self.prog.label_str(l).to_owned(),
                });
                Target::Exit
            }
        }
    }

    fn wire_block(&mut self, block: &[StmtId], follow: Target, ctx: Ctx) -> Target {
        let kept: Vec<StmtId> = block
            .iter()
            .copied()
            .filter(|&s| self.included(s))
            .collect();
        let mut next = follow;
        for &s in kept.iter().rev() {
            self.wire_stmt(s, next, ctx);
            next = self.first_target(s);
        }
        next
    }

    fn wire_stmt(&mut self, s: StmtId, follow: Target, ctx: Ctx) {
        let flow = match &self.prog.stmt(s).kind.clone() {
            StmtKind::Assign { .. }
            | StmtKind::Read { .. }
            | StmtKind::Write { .. }
            | StmtKind::Skip => Flow::Seq(follow),
            StmtKind::Goto { target } => Flow::Seq(self.label_target(*target)),
            StmtKind::CondGoto { target, .. } => Flow::Branch(self.label_target(*target), follow),
            StmtKind::Break => match ctx.break_to {
                Some(t) => Flow::Seq(t),
                None => {
                    self.fail(ExecError::StrandedBreak { stmt: s });
                    Flow::Seq(Target::Exit)
                }
            },
            StmtKind::Continue => match ctx.continue_to {
                Some(t) => Flow::Seq(t),
                None => {
                    self.fail(ExecError::StrandedContinue { stmt: s });
                    Flow::Seq(Target::Exit)
                }
            },
            StmtKind::Return { .. } => Flow::Seq(Target::Exit),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = self.wire_block(then_branch, follow, ctx);
                let e = self.wire_block(else_branch, follow, ctx);
                Flow::Branch(t, e)
            }
            StmtKind::While { body, .. } => {
                let inner = Ctx {
                    break_to: Some(follow),
                    continue_to: Some(Target::Stmt(s)),
                };
                let b = self.wire_block(body, Target::Stmt(s), inner);
                Flow::Branch(b, follow)
            }
            StmtKind::DoWhile { body, .. } => {
                let inner = Ctx {
                    break_to: Some(follow),
                    continue_to: Some(Target::Stmt(s)),
                };
                let b = self.wire_block(body, Target::Stmt(s), inner);
                Flow::Branch(b, follow)
            }
            StmtKind::Switch { arms, .. } => {
                let inner = Ctx {
                    break_to: Some(follow),
                    continue_to: ctx.continue_to,
                };
                let mut entries = vec![follow; arms.len() + 1];
                for (i, arm) in arms.iter().enumerate().rev() {
                    entries[i] = self.wire_block(&arm.body, entries[i + 1], inner);
                }
                let mut cases = Vec::new();
                let mut default = follow;
                for (i, arm) in arms.iter().enumerate() {
                    for g in &arm.guards {
                        match g {
                            CaseGuard::Case(v) => cases.push((*v, entries[i])),
                            CaseGuard::Default => default = entries[i],
                        }
                    }
                }
                Flow::Select(cases, default)
            }
        };
        self.flow.insert(s, flow);
    }
}

fn execute(
    prog: &Program,
    input: &Input,
    plan: &Plan,
    site_key: &dyn Fn(StmtId) -> u64,
) -> Result<Trajectory, ExecError> {
    let mut state = State::default();
    let mut traj = Trajectory::default();
    let mut fuel = input.fuel;
    let mut cur = plan.entry;
    loop {
        let s = match cur {
            Target::Exit => break,
            Target::Stmt(s) => s,
        };
        if fuel == 0 {
            traj.fuel_exhausted = true;
            break;
        }
        fuel -= 1;
        let ev = |prog: &Program, state: &mut State, e| {
            eval(prog, state, input.eof_after, site_key(s), e)
        };
        let Some(flow) = plan.flow.get(&s) else {
            return Err(ExecError::MalformedFlow { stmt: s });
        };
        let mut value = None;
        cur = match (&prog.stmt(s).kind, flow) {
            (StmtKind::Assign { lhs, rhs }, Flow::Seq(n)) => {
                let v = ev(prog, &mut state, rhs);
                state.vars.insert(*lhs, v);
                value = Some(v);
                *n
            }
            (StmtKind::Read { var }, Flow::Seq(n)) => {
                let v = state.read_value(input.seed, site_key(s));
                state.vars.insert(*var, v);
                value = Some(v);
                *n
            }
            (StmtKind::Write { arg }, Flow::Seq(n)) => {
                let v = ev(prog, &mut state, arg);
                traj.outputs.push(v);
                value = Some(v);
                *n
            }
            (StmtKind::Return { value: rv }, Flow::Seq(n)) => {
                if let Some(e) = rv {
                    let v = ev(prog, &mut state, e);
                    traj.outputs.push(v);
                    value = Some(v);
                }
                *n
            }
            (
                StmtKind::If { cond, .. }
                | StmtKind::While { cond, .. }
                | StmtKind::DoWhile { cond, .. }
                | StmtKind::CondGoto { cond, .. },
                Flow::Branch(t, e),
            ) => {
                let c = ev(prog, &mut state, cond) != 0;
                value = Some(i64::from(c));
                if c {
                    *t
                } else {
                    *e
                }
            }
            (StmtKind::Switch { scrutinee, .. }, Flow::Select(cases, default)) => {
                let v = ev(prog, &mut state, scrutinee);
                value = Some(v);
                cases
                    .iter()
                    .find(|&&(c, _)| c == v)
                    .map(|&(_, t)| t)
                    .unwrap_or(*default)
            }
            (
                StmtKind::Skip | StmtKind::Goto { .. } | StmtKind::Break | StmtKind::Continue,
                Flow::Seq(n),
            ) => *n,
            _ => return Err(ExecError::MalformedFlow { stmt: s }),
        };
        traj.events.push(TraceEvent { stmt: s, value });
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn straight_line_outputs() {
        let p = parse("x = 2; y = x + 3; write(y); write(x);").unwrap();
        let t = run(&p, &Input::default());
        assert_eq!(t.outputs, vec![5, 2]);
        assert!(!t.fuel_exhausted);
    }

    #[test]
    fn if_else_branching() {
        let p = parse("x = 1; if (x > 0) { write(10); } else { write(20); }").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![10]);
        let p = parse("x = -1; if (x > 0) { write(10); } else { write(20); }").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![20]);
    }

    #[test]
    fn while_loop_counts() {
        let p = parse("i = 0; s = 0; while (i < 4) { s = s + i; i = i + 1; } write(s);").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![6]);
    }

    #[test]
    fn do_while_runs_body_first() {
        let p = parse("x = 10; do { x = x + 1; } while (x < 5); write(x);").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![11]);
    }

    #[test]
    fn break_continue_semantics() {
        let p = parse(
            "i = 0; s = 0;
             while (i < 10) {
               i = i + 1;
               if (i % 2 == 0) continue;
               if (i > 5) break;
               s = s + i;
             }
             write(s); write(i);",
        )
        .unwrap();
        // Adds odd i in 1..=5: 1+3+5 = 9; breaks at i = 7.
        assert_eq!(run(&p, &Input::default()).outputs, vec![9, 7]);
    }

    #[test]
    fn switch_dispatch_and_fallthrough() {
        let p = parse(
            "c = 2;
             switch (c) {
               case 1: write(1); break;
               case 2: write(2);
               case 3: write(3); break;
               default: write(99);
             }
             write(0);",
        )
        .unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![2, 3, 0]);
        let p =
            parse("c = 7; switch (c) { case 1: write(1); default: write(99); } write(0);").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![99, 0]);
    }

    #[test]
    fn goto_flow() {
        let p = parse("x = 1; goto SKIP; x = 2; SKIP: write(x);").unwrap();
        assert_eq!(run(&p, &Input::default()).outputs, vec![1]);
    }

    #[test]
    fn cond_goto_loop() {
        // Figure 3 style counting loop: 3 iterations via eof horizon.
        let p = parse(
            "n = 0;
             L: if (eof()) goto DONE;
             n = n + 1;
             goto L;
             DONE: write(n);",
        )
        .unwrap();
        let t = run(
            &p,
            &Input {
                eof_after: 3,
                ..Input::default()
            },
        );
        assert_eq!(t.outputs, vec![3]);
    }

    #[test]
    fn return_stops_execution() {
        let p = parse("write(1); return 42; write(2);").unwrap();
        let t = run(&p, &Input::default());
        assert_eq!(t.outputs, vec![1, 42]);
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let p = parse("x = 1; while (x) { x = 1; } write(x);").unwrap();
        let t = run(
            &p,
            &Input {
                fuel: 50,
                ..Input::default()
            },
        );
        assert!(t.fuel_exhausted);
        assert!(t.outputs.is_empty());
        assert_eq!(t.events.len(), 50);
    }

    #[test]
    fn reads_are_deterministic_per_input() {
        let p = parse("read(a); read(b); write(a + b);").unwrap();
        let i = Input {
            seed: 7,
            ..Input::default()
        };
        assert_eq!(run(&p, &i), run(&p, &i));
        let j = Input {
            seed: 8,
            ..Input::default()
        };
        // Different seeds normally give different traces (holds for 7 vs 8).
        assert_ne!(run(&p, &i).outputs, run(&p, &j).outputs);
    }

    #[test]
    fn masked_run_deletes_statements() {
        let p = parse("x = 1; x = 2; write(x);").unwrap();
        let skip = p.at_line(2);
        let t = run_masked(&p, &Input::default(), &|s| s != skip, &[]).unwrap();
        assert_eq!(t.outputs, vec![1], "deleting x = 2 exposes x = 1");
    }

    #[test]
    fn masked_goto_with_moved_label() {
        let p = parse("x = 5; goto L; y = 1; L: z = 2; write(x);").unwrap();
        // Residual: keep 1, 2, 5; label L moves to write(x).
        let keep = [p.at_line(1), p.at_line(2), p.at_line(5)];
        let l = p.label("L").unwrap();
        let t = run_masked(
            &p,
            &Input::default(),
            &|s| keep.contains(&s),
            &[(l, Some(p.at_line(5)))],
        )
        .unwrap();
        assert_eq!(t.outputs, vec![5]);
        assert_eq!(t.events.len(), 3);
    }

    #[test]
    fn masked_label_to_exit() {
        let p = parse("goto L; L: x = 1;").unwrap();
        let keep = [p.at_line(1)];
        let l = p.label("L").unwrap();
        let t = run_masked(&p, &Input::default(), &|s| keep.contains(&s), &[(l, None)]).unwrap();
        assert_eq!(t.events.len(), 1);
        assert!(!t.fuel_exhausted);
    }

    #[test]
    fn masked_container_auto_included() {
        // Keeping only a branch statement keeps its guarding if alive: the
        // predicate still runs (here: x reads as 0 since x = 1 is deleted,
        // so the branch is not taken and write(y) sees 0).
        let p = parse("x = 1; if (x > 0) { y = 7; } write(y);").unwrap();
        let keep = [p.at_line(3), p.at_line(4)];
        let t = run_masked(&p, &Input::default(), &|s| keep.contains(&s), &[]).unwrap();
        assert_eq!(t.outputs, vec![0]);
        // The if executed (auto-included) even though the mask excludes it.
        assert!(t.events.iter().any(|e| e.stmt == p.at_line(2)));
        // Its then-branch did not.
        assert!(!t.events.iter().any(|e| e.stmt == p.at_line(3)));
    }

    #[test]
    fn masked_dangling_label_is_an_error_not_a_panic() {
        let p = parse("goto L; L: x = 1;").unwrap();
        let keep = [p.at_line(1)];
        let err = run_masked(&p, &Input::default(), &|s| keep.contains(&s), &[]).unwrap_err();
        assert_eq!(
            err,
            ExecError::DanglingLabel {
                label: "L".to_owned()
            }
        );
        assert!(err.to_string().contains("not re-associated"));
    }

    #[test]
    fn masked_empty_loop_body() {
        let p = parse("i = 0; while (i < 2) { i = i + 1; } write(i);").unwrap();
        // Excluding the body makes the loop condition permanently true ->
        // fuel runs out. That is correct deletion semantics.
        let body = p.at_line(3);
        let t = run_masked(
            &p,
            &Input {
                fuel: 100,
                ..Input::default()
            },
            &|s| s != body,
            &[],
        )
        .unwrap();
        assert!(t.fuel_exhausted);
    }
}
