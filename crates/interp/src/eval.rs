//! Expression evaluation and the deterministic value sources.

use jumpslice_lang::{BinOp, Expr, Name, Program, UnOp};
use std::collections::HashMap;

/// A small, fast, deterministic 64-bit mixer (splitmix64 finalizer). Drives
/// `read` values, `eof` horizons, and uninterpreted-function results.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a mixed word into the small signed range the corpus programs
/// exercise (`x <= 0`, `x % 2`, …).
fn small(x: u64) -> i64 {
    (x % 17) as i64 - 8
}

/// Mutable interpreter state: the store plus per-site counters.
///
/// Sites are abstract `u64` keys rather than raw [`StmtId`]s so a
/// *synthesized* slice (whose statements have fresh ids) can share the
/// original program's input streams by mapping its sites back.
#[derive(Debug, Default)]
pub(crate) struct State {
    pub vars: HashMap<Name, i64>,
    /// Per-site `read` occurrence counters.
    pub reads: HashMap<u64, u64>,
    /// Per-site `eof` call counters, keyed by the predicate's site.
    pub eofs: HashMap<u64, u64>,
}

impl State {
    pub fn read_value(&mut self, seed: u64, site: u64) -> i64 {
        let k = self.reads.entry(site).or_insert(0);
        let v = small(mix(seed ^ mix(site + 1).wrapping_add(*k)));
        *k += 1;
        v
    }
}

/// Evaluates `e` in `state`. `site` is the statement containing the
/// expression (scopes the `eof()` counters). Uninterpreted calls are pure
/// hashes of their name and argument values; division and modulo by zero
/// evaluate to 0; unknown variables read as 0.
pub(crate) fn eval(prog: &Program, state: &mut State, eof_after: u64, site: u64, e: &Expr) -> i64 {
    match e {
        Expr::Num(n) => *n,
        Expr::Var(v) => state.vars.get(v).copied().unwrap_or(0),
        Expr::Unary(op, inner) => {
            let x = eval(prog, state, eof_after, site, inner);
            match op {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::Not => i64::from(x == 0),
            }
        }
        Expr::Binary(op, l, r) => {
            let a = eval(prog, state, eof_after, site, l);
            let b = eval(prog, state, eof_after, site, r);
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_rem(b)
                    }
                }
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::And => i64::from(a != 0 && b != 0),
                BinOp::Or => i64::from(a != 0 || b != 0),
            }
        }
        Expr::Call(f, args) => {
            if prog.name_str(*f) == "eof" && args.is_empty() {
                let k = state.eofs.entry(site).or_insert(0);
                let done = *k >= eof_after;
                *k += 1;
                return i64::from(done);
            }
            // Hash the *name string*, not the interned id: two programs
            // (an original and its synthesized slice) must agree on f(x).
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in prog.name_str(*f).bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let mut h = mix(h);
            for a in args {
                let v = eval(prog, state, eof_after, site, a);
                h = mix(h ^ v as u64);
            }
            small(h)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::{parse, StmtKind};

    fn eval_rhs(src: &str) -> i64 {
        let p = parse(src).unwrap();
        let s = p.at_line(1);
        let StmtKind::Assign { rhs, .. } = &p.stmt(s).kind else {
            panic!()
        };
        let mut st = State::default();
        st.vars
            .insert(p.name("y").unwrap_or(p.name("x").unwrap()), 5);
        eval(&p, &mut st, 3, s.index() as u64, rhs)
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_rhs("x = 2 + 3 * 4;"), 14);
        assert_eq!(eval_rhs("x = (2 + 3) * 4;"), 20);
        assert_eq!(eval_rhs("x = 7 % 3;"), 1);
        assert_eq!(eval_rhs("x = 3 < 4;"), 1);
        assert_eq!(eval_rhs("x = 3 >= 4;"), 0);
        assert_eq!(eval_rhs("x = !0;"), 1);
        assert_eq!(eval_rhs("x = -(3);"), -3);
        assert_eq!(eval_rhs("x = 1 && 0;"), 0);
        assert_eq!(eval_rhs("x = 1 || 0;"), 1);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_rhs("x = 5 / 0;"), 0);
        assert_eq!(eval_rhs("x = 5 % 0;"), 0);
    }

    #[test]
    fn unknown_variable_reads_zero() {
        assert_eq!(eval_rhs("x = nowhere + 1;"), 1);
    }

    #[test]
    fn calls_are_pure_and_deterministic() {
        let p = parse("x = f1(y); z = f1(y);").unwrap();
        let (s1, s2) = (p.at_line(1), p.at_line(2));
        let get = |s: jumpslice_lang::StmtId| {
            let StmtKind::Assign { rhs, .. } = &p.stmt(s).kind else {
                panic!()
            };
            rhs.clone()
        };
        let mut st = State::default();
        st.vars.insert(p.name("y").unwrap(), 7);
        let a = eval(&p, &mut st, 3, s1.index() as u64, &get(s1));
        let b = eval(&p, &mut st, 3, s2.index() as u64, &get(s2));
        assert_eq!(a, b, "same function, same args, same value");
    }

    #[test]
    fn eof_turns_true_after_horizon() {
        let p = parse("x = eof();").unwrap();
        let s = p.at_line(1);
        let StmtKind::Assign { rhs, .. } = &p.stmt(s).kind else {
            panic!()
        };
        let mut st = State::default();
        let vals: Vec<i64> = (0..5)
            .map(|_| eval(&p, &mut st, 3, s.index() as u64, rhs))
            .collect();
        assert_eq!(vals, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn read_values_are_per_site_streams() {
        let p = parse("read(x); read(x);").unwrap();
        let mut st = State::default();
        let site1 = p.at_line(1).index() as u64;
        let a1 = st.read_value(9, site1);
        let a2 = st.read_value(9, site1);
        let mut st2 = State::default();
        let b1 = st2.read_value(9, site1);
        let b2 = st2.read_value(9, site1);
        assert_eq!(a1, b1, "same seed, same site, same occurrence");
        assert_eq!(a2, b2);
        // A different site gets an independent stream.
        let c1 = st2.read_value(9, p.at_line(2).index() as u64);
        let _ = (a2, c1); // values may collide in a 17-value range; the
                          // determinism assertions above are the contract.
    }
}
