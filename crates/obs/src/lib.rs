//! Zero-cost-when-disabled instrumentation for the slicing pipeline.
//!
//! Every analysis phase ([`Phase`]), cache access ([`Event::Cache`]), and
//! Figure-7 jump admission ([`Event::JumpAdmitted`]) in the workspace calls
//! into this crate. With no sink installed — the production default — each
//! call is a thread-local read and a branch; the `obs_overhead` bench pins
//! the cost at well under 2% of a batch sweep. With a sink installed via
//! [`ScopedSink`] (or the [`capture`] convenience), events flow to the
//! current thread's [`TraceSink`], where they can be aggregated
//! ([`Metrics`]) or serialized ([`trace_to_json`]) into the same
//! hand-rolled JSON dialect as `BENCH_slicing.json`.
//!
//! Sinks are **thread-local** by design: slicing algorithms are
//! single-threaded pure functions, so a scoped sink observes exactly the
//! work of one slicer without cross-test interference under `cargo test`'s
//! parallel runner. The batch engine's worker threads therefore emit
//! nothing themselves; the coordinating thread reports per-run utilization
//! through `BatchRunStats` and [`Event::Count`] events instead.
//!
//! # Examples
//!
//! ```
//! use jumpslice_obs as obs;
//! let (value, events) = obs::capture(|| {
//!     let _t = obs::phase(obs::Phase::PdgBuild);
//!     obs::record(|| obs::Event::Count { name: "edges", value: 3 });
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(events.len(), 2); // the count, then the finished phase
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

pub use json::Json;

/// A lazily-built pipeline artifact whose cache behavior is tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Artifact {
    /// The reaching-definitions fixpoint.
    ReachingDefs,
    /// The program dependence graph.
    Pdg,
    /// The postdominator tree.
    Pdom,
    /// The lexical successor tree.
    Lst,
    /// The flattened jump-chain index driving the sparse Figure-7 kernel.
    ChainIndex,
}

impl Artifact {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::ReachingDefs => "reaching_defs",
            Artifact::Pdg => "pdg",
            Artifact::Pdom => "pdom",
            Artifact::Lst => "lst",
            Artifact::ChainIndex => "chain_index",
        }
    }

    /// Parses a report name.
    pub fn from_name(s: &str) -> Option<Artifact> {
        [
            Artifact::ReachingDefs,
            Artifact::Pdg,
            Artifact::Pdom,
            Artifact::Lst,
            Artifact::ChainIndex,
        ]
        .into_iter()
        .find(|a| a.name() == s)
    }
}

/// A timed pipeline phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// The reaching-definitions fixpoint.
    ReachingDefs,
    /// Program-dependence-graph assembly (data + control halves).
    PdgBuild,
    /// Postdominator-tree construction.
    Postdominators,
    /// Lexical-successor-tree construction.
    LstBuild,
    /// Jump-chain index construction (flattened pdom/LST chains + masks
    /// for the sparse Figure-7 kernel).
    ChainIndexBuild,
    /// The conventional backward dependence closure (§2).
    ConventionalClosure,
    /// One round of the Figure-7 fixpoint (one full traversal of the jump
    /// visit order). The `round` field of [`Event::Phase`] is 1-based.
    FixpointRound,
    /// Label re-association (the final step of Figures 7/12/13).
    LabelReassoc,
    /// One whole batch run (`BatchSlicer::slice_all` and friends).
    BatchRun,
    /// One request handled by the serve daemon (parse, cache probe, slice
    /// work, response encoding).
    ServeRequest,
    /// One parallel cold-path warm (`Analysis::warm_parallel`): the whole
    /// scoped phase-DAG schedule, from first spawn to last join.
    ParallelWarm,
    /// SCC condensation of the PDG plus per-component reachability bitsets
    /// (the condensed closure engine's one-time build).
    ClosureIndexBuild,
}

impl Phase {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ReachingDefs => "reaching_defs",
            Phase::PdgBuild => "pdg_build",
            Phase::Postdominators => "postdominators",
            Phase::LstBuild => "lst_build",
            Phase::ChainIndexBuild => "chain_index_build",
            Phase::ConventionalClosure => "conventional_closure",
            Phase::FixpointRound => "fixpoint_round",
            Phase::LabelReassoc => "label_reassoc",
            Phase::BatchRun => "batch_run",
            Phase::ServeRequest => "serve_request",
            Phase::ParallelWarm => "parallel_warm",
            Phase::ClosureIndexBuild => "closure_index_build",
        }
    }

    /// Parses a report name.
    pub fn from_name(s: &str) -> Option<Phase> {
        [
            Phase::ReachingDefs,
            Phase::PdgBuild,
            Phase::Postdominators,
            Phase::LstBuild,
            Phase::ChainIndexBuild,
            Phase::ConventionalClosure,
            Phase::FixpointRound,
            Phase::LabelReassoc,
            Phase::BatchRun,
            Phase::ServeRequest,
            Phase::ParallelWarm,
            Phase::ClosureIndexBuild,
        ]
        .into_iter()
        .find(|p| p.name() == s)
    }
}

/// Why a slicer admitted a jump statement into the slice.
///
/// Statement positions are 1-based paper-style line numbers; `None` encodes
/// the program exit (implicitly part of every slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitReason {
    /// Figure 7 / Figure 12: the jump's nearest postdominator in the slice
    /// differs from its nearest lexical successor in the slice.
    PdomLexsuccDisagree {
        /// Line of the nearest postdominator in the slice (`None` = exit).
        npd_line: Option<u32>,
        /// Line of the nearest lexical successor in the slice (`None` =
        /// exit).
        nls_line: Option<u32>,
    },
    /// Figure 13 (and Figure 12's precondition): the jump is directly
    /// control dependent on a predicate already in the slice.
    OnIncludedPredicate {
        /// Line of the in-slice controlling predicate.
        predicate_line: u32,
    },
    /// The workspace's do-while extension guard fired
    /// (`Analysis::dowhile_hazard`).
    DoWhileHazard,
}

/// One instrumentation event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A timed phase finished.
    Phase {
        /// Which phase.
        kind: Phase,
        /// Wall-clock nanoseconds spent.
        ns: u64,
        /// 1-based round number for [`Phase::FixpointRound`]; `None`
        /// elsewhere.
        round: Option<u32>,
    },
    /// A lazily-cached artifact was requested.
    Cache {
        /// Which artifact.
        artifact: Artifact,
        /// `true` when already materialized, `false` when this request
        /// triggered the computation.
        hit: bool,
    },
    /// A slicing algorithm admitted a jump statement.
    JumpAdmitted {
        /// Algorithm name (`"fig7"`, `"fig12"`, `"fig13"`).
        algo: &'static str,
        /// 1-based line of the admitted jump.
        line: u32,
        /// 1-based fixpoint round (always 1 for the single-pass
        /// algorithms).
        round: u32,
        /// Why the jump was admitted.
        reason: AdmitReason,
    },
    /// A Figure-7 fixpoint round completed.
    Round {
        /// Algorithm name.
        algo: &'static str,
        /// 1-based round number.
        round: u32,
        /// Jumps admitted in this round (0 for the final, fixpoint-reaching
        /// round).
        admitted: u32,
    },
    /// A named counter sample.
    Count {
        /// Counter name, dot-separated (e.g. `"batch.queue_wait_ns"`).
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
}

/// Receives events from the instrumented pipeline on the installing thread.
pub trait TraceSink {
    /// Called once per event, in program order.
    fn record(&self, ev: Event);
}

/// A [`TraceSink`] that appends every event to an interior vector.
#[derive(Default)]
pub struct CollectingSink {
    events: RefCell<Vec<Event>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Takes the events collected so far, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.borrow_mut())
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, ev: Event) {
        self.events.borrow_mut().push(ev);
    }
}

thread_local! {
    static SINK: RefCell<Option<Rc<dyn TraceSink>>> = const { RefCell::new(None) };
}

/// Whether a sink is installed on this thread. The disabled path of every
/// instrumentation hook is exactly this check.
#[inline]
pub fn enabled() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Records an event if a sink is installed on this thread. The closure is
/// only evaluated when enabled, so event construction costs nothing in the
/// disabled path.
#[inline]
pub fn record(make: impl FnOnce() -> Event) {
    // Clone the Rc out of the cell before calling the sink so a sink is
    // free to trigger nested instrumentation without a RefCell re-borrow.
    let sink = SINK.with(|s| s.borrow().clone());
    if let Some(sink) = sink {
        sink.record(make());
    }
}

/// Times a phase: the returned guard records [`Event::Phase`] when dropped.
/// When disabled at creation time the guard is inert (no clock read).
#[inline]
pub fn phase(kind: Phase) -> PhaseGuard {
    PhaseGuard {
        kind,
        round: None,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Like [`phase`], tagging the event with a 1-based fixpoint round.
#[inline]
pub fn phase_round(kind: Phase, round: u32) -> PhaseGuard {
    PhaseGuard {
        kind,
        round: Some(round),
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Guard returned by [`phase`]; records the elapsed time on drop.
#[must_use = "dropping the guard immediately records a zero-length phase"]
pub struct PhaseGuard {
    kind: Phase,
    round: Option<u32>,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            record(|| Event::Phase {
                kind: self.kind,
                ns,
                round: self.round,
            });
        }
    }
}

/// Installs a sink on the current thread for the guard's lifetime; the
/// previous sink (if any) is restored on drop, so scopes nest.
pub struct ScopedSink {
    previous: Option<Rc<dyn TraceSink>>,
}

impl ScopedSink {
    /// Installs `sink` on this thread.
    pub fn install(sink: Rc<dyn TraceSink>) -> ScopedSink {
        let previous = SINK.with(|s| s.borrow_mut().replace(sink));
        ScopedSink { previous }
    }
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        SINK.with(|s| *s.borrow_mut() = self.previous.take());
    }
}

/// Runs `f` with a fresh collecting sink installed on this thread and
/// returns its result alongside every event it emitted.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>) {
    let sink = Rc::new(CollectingSink::new());
    let guard = ScopedSink::install(sink.clone());
    let value = f();
    drop(guard);
    let events = sink.take();
    (value, events)
}

/// Aggregated view of an event stream: per-phase totals, cache hit/miss
/// tallies, jump admissions, and counter sums.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Total nanoseconds per phase name (fixpoint rounds folded together).
    pub phase_ns: BTreeMap<&'static str, u64>,
    /// Completed-phase count per phase name.
    pub phase_count: BTreeMap<&'static str, u64>,
    /// Cache hits per artifact name.
    pub cache_hits: BTreeMap<&'static str, u64>,
    /// Cache misses (computations) per artifact name.
    pub cache_misses: BTreeMap<&'static str, u64>,
    /// Jumps admitted per algorithm name.
    pub admitted: BTreeMap<&'static str, u64>,
    /// Highest fixpoint round seen per algorithm name.
    pub rounds: BTreeMap<&'static str, u32>,
    /// Last value per counter name (counters are snapshots, not deltas).
    pub counts: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Aggregates an event stream.
    pub fn of(events: &[Event]) -> Metrics {
        let mut m = Metrics::default();
        for ev in events {
            match ev {
                Event::Phase { kind, ns, .. } => {
                    *m.phase_ns.entry(kind.name()).or_default() += ns;
                    *m.phase_count.entry(kind.name()).or_default() += 1;
                }
                Event::Cache { artifact, hit } => {
                    let map = if *hit {
                        &mut m.cache_hits
                    } else {
                        &mut m.cache_misses
                    };
                    *map.entry(artifact.name()).or_default() += 1;
                }
                Event::JumpAdmitted { algo, .. } => {
                    *m.admitted.entry(algo).or_default() += 1;
                }
                Event::Round { algo, round, .. } => {
                    let r = m.rounds.entry(algo).or_default();
                    *r = (*r).max(*round);
                }
                Event::Count { name, value } => {
                    m.counts.insert(name, *value);
                }
            }
        }
        m
    }
}

fn opt_line_json(l: Option<u32>) -> Json {
    match l {
        Some(n) => Json::Num(n as f64),
        None => Json::Str("exit".to_owned()),
    }
}

fn opt_line_from_json(j: &Json) -> Result<Option<u32>, String> {
    match j {
        Json::Num(n) => Ok(Some(*n as u32)),
        Json::Str(s) if s == "exit" => Ok(None),
        other => Err(format!("expected line number or \"exit\", got {other:?}")),
    }
}

/// Serializes an event stream as a JSON array in the same hand-rolled
/// dialect as `BENCH_slicing.json`. Round-trips through
/// [`events_from_json`].
pub fn trace_to_json(events: &[Event]) -> Json {
    let arr = events
        .iter()
        .map(|ev| {
            let mut obj: Vec<(String, Json)> = Vec::new();
            let mut put = |k: &str, v: Json| obj.push((k.to_owned(), v));
            match ev {
                Event::Phase { kind, ns, round } => {
                    put("event", Json::Str("phase".into()));
                    put("phase", Json::Str(kind.name().into()));
                    put("ns", Json::Num(*ns as f64));
                    if let Some(r) = round {
                        put("round", Json::Num(*r as f64));
                    }
                }
                Event::Cache { artifact, hit } => {
                    put("event", Json::Str("cache".into()));
                    put("artifact", Json::Str(artifact.name().into()));
                    put("hit", Json::Bool(*hit));
                }
                Event::JumpAdmitted {
                    algo,
                    line,
                    round,
                    reason,
                } => {
                    put("event", Json::Str("jump_admitted".into()));
                    put("algo", Json::Str((*algo).into()));
                    put("line", Json::Num(*line as f64));
                    put("round", Json::Num(*round as f64));
                    match reason {
                        AdmitReason::PdomLexsuccDisagree { npd_line, nls_line } => {
                            put("reason", Json::Str("pdom-vs-lexsucc".into()));
                            put("npd", opt_line_json(*npd_line));
                            put("nls", opt_line_json(*nls_line));
                        }
                        AdmitReason::OnIncludedPredicate { predicate_line } => {
                            put("reason", Json::Str("on-included-predicate".into()));
                            put("predicate", Json::Num(*predicate_line as f64));
                        }
                        AdmitReason::DoWhileHazard => {
                            put("reason", Json::Str("dowhile-hazard".into()));
                        }
                    }
                }
                Event::Round {
                    algo,
                    round,
                    admitted,
                } => {
                    put("event", Json::Str("round".into()));
                    put("algo", Json::Str((*algo).into()));
                    put("round", Json::Num(*round as f64));
                    put("admitted", Json::Num(*admitted as f64));
                }
                Event::Count { name, value } => {
                    put("event", Json::Str("count".into()));
                    put("name", Json::Str((*name).into()));
                    put("value", Json::Num(*value as f64));
                }
            }
            Json::Obj(obj)
        })
        .collect();
    Json::Arr(arr)
}

/// Algorithm names an event stream may mention; [`events_from_json`] interns
/// parsed names against this list (events carry `&'static str`).
const KNOWN_ALGOS: &[&str] = &["fig7", "fig12", "fig13"];

fn intern_algo(s: &str) -> Result<&'static str, String> {
    KNOWN_ALGOS
        .iter()
        .copied()
        .find(|k| *k == s)
        .ok_or_else(|| format!("unknown algorithm name `{s}`"))
}

/// Counter names an event stream may mention (see [`events_from_json`]).
const KNOWN_COUNTS: &[&str] = &[
    "reaching.fixpoint_passes",
    "domtree.fixpoint_passes",
    "pdg.data_edges",
    "pdg.control_edges",
    "batch.criteria",
    "batch.threads",
    "batch.queue_wait_ns",
    "batch.busy_ns",
    "batch.wall_ns",
    "sparse.chains",
    "sparse.chain_stmts",
    "sparse.retests",
    "sparse.dirty_marks",
    "serve.cache.hit",
    "serve.cache.miss",
    "serve.cache.evict",
    "serve.requests",
    "serve.degraded",
    "serve.store.hit",
    "serve.store.miss",
    "serve.store.evict",
    "serve.store.corrupt",
    "serve.store.write",
    "store.corrupt_fallback",
    "analysis.parallel.threads",
    "analysis.parallel.data_ranges",
    "closure.condensed.components",
    "closure.condensed.queries",
    "edges",
];

fn intern_count(s: &str) -> Result<&'static str, String> {
    KNOWN_COUNTS
        .iter()
        .copied()
        .find(|k| *k == s)
        .ok_or_else(|| format!("unknown counter name `{s}`"))
}

/// Parses an event stream serialized by [`trace_to_json`].
pub fn events_from_json(j: &Json) -> Result<Vec<Event>, String> {
    let arr = j.as_arr().ok_or("trace is not an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let kind = item
            .get("event")
            .and_then(Json::as_str)
            .ok_or("event object missing `event` tag")?;
        let num = |k: &str| -> Result<f64, String> {
            item.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("`{kind}` event missing numeric `{k}`"))
        };
        let text = |k: &str| -> Result<&str, String> {
            item.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("`{kind}` event missing string `{k}`"))
        };
        let ev = match kind {
            "phase" => Event::Phase {
                kind: Phase::from_name(text("phase")?)
                    .ok_or_else(|| format!("unknown phase `{}`", text("phase").unwrap()))?,
                ns: num("ns")? as u64,
                round: item.get("round").and_then(Json::as_num).map(|r| r as u32),
            },
            "cache" => Event::Cache {
                artifact: Artifact::from_name(text("artifact")?)
                    .ok_or_else(|| format!("unknown artifact `{}`", text("artifact").unwrap()))?,
                hit: item
                    .get("hit")
                    .and_then(Json::as_bool)
                    .ok_or("`cache` event missing bool `hit`")?,
            },
            "jump_admitted" => {
                let reason = match text("reason")? {
                    "pdom-vs-lexsucc" => AdmitReason::PdomLexsuccDisagree {
                        npd_line: opt_line_from_json(item.get("npd").ok_or("missing `npd`")?)?,
                        nls_line: opt_line_from_json(item.get("nls").ok_or("missing `nls`")?)?,
                    },
                    "on-included-predicate" => AdmitReason::OnIncludedPredicate {
                        predicate_line: num("predicate")? as u32,
                    },
                    "dowhile-hazard" => AdmitReason::DoWhileHazard,
                    other => return Err(format!("unknown admit reason `{other}`")),
                };
                Event::JumpAdmitted {
                    algo: intern_algo(text("algo")?)?,
                    line: num("line")? as u32,
                    round: num("round")? as u32,
                    reason,
                }
            }
            "round" => Event::Round {
                algo: intern_algo(text("algo")?)?,
                round: num("round")? as u32,
                admitted: num("admitted")? as u32,
            },
            "count" => Event::Count {
                name: intern_count(text("name")?)?,
                value: num("value")? as u64,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        // No sink: record must not panic and must not evaluate eagerly
        // observable side effects beyond the closure being skipped.
        let mut ran = false;
        record(|| {
            ran = true;
            Event::Count {
                name: "edges",
                value: 0,
            }
        });
        assert!(!ran, "event closure must not run when disabled");
    }

    #[test]
    fn capture_scopes_and_restores() {
        let (_, outer) = capture(|| {
            record(|| Event::Count {
                name: "edges",
                value: 1,
            });
            let (_, inner) = capture(|| {
                record(|| Event::Count {
                    name: "edges",
                    value: 2,
                });
            });
            assert_eq!(inner.len(), 1, "inner scope sees only its own events");
            record(|| Event::Count {
                name: "edges",
                value: 3,
            });
        });
        assert!(!enabled(), "sink uninstalled after capture");
        let values: Vec<u64> = outer
            .iter()
            .map(|e| match e {
                Event::Count { value, .. } => *value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![1, 3], "outer scope skips the nested capture");
    }

    #[test]
    fn phase_guard_times() {
        let (_, events) = capture(|| {
            let _g = phase_round(Phase::FixpointRound, 2);
            std::hint::black_box(0);
        });
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Phase { kind, round, .. } => {
                assert_eq!(*kind, Phase::FixpointRound);
                assert_eq!(*round, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_aggregate() {
        let events = vec![
            Event::Phase {
                kind: Phase::PdgBuild,
                ns: 100,
                round: None,
            },
            Event::Phase {
                kind: Phase::FixpointRound,
                ns: 40,
                round: Some(1),
            },
            Event::Phase {
                kind: Phase::FixpointRound,
                ns: 60,
                round: Some(2),
            },
            Event::Cache {
                artifact: Artifact::Pdg,
                hit: false,
            },
            Event::Cache {
                artifact: Artifact::Pdg,
                hit: true,
            },
            Event::JumpAdmitted {
                algo: "fig7",
                line: 7,
                round: 1,
                reason: AdmitReason::DoWhileHazard,
            },
            Event::Round {
                algo: "fig7",
                round: 2,
                admitted: 0,
            },
            Event::Count {
                name: "edges",
                value: 9,
            },
        ];
        let m = Metrics::of(&events);
        assert_eq!(m.phase_ns["fixpoint_round"], 100);
        assert_eq!(m.phase_count["fixpoint_round"], 2);
        assert_eq!(m.phase_ns["pdg_build"], 100);
        assert_eq!(m.cache_hits["pdg"], 1);
        assert_eq!(m.cache_misses["pdg"], 1);
        assert_eq!(m.admitted["fig7"], 1);
        assert_eq!(m.rounds["fig7"], 2);
        assert_eq!(m.counts["edges"], 9);
    }

    #[test]
    fn trace_json_round_trips() {
        let events = vec![
            Event::Phase {
                kind: Phase::ReachingDefs,
                ns: 12345,
                round: None,
            },
            Event::Phase {
                kind: Phase::FixpointRound,
                ns: 777,
                round: Some(2),
            },
            Event::Cache {
                artifact: Artifact::Lst,
                hit: true,
            },
            Event::JumpAdmitted {
                algo: "fig7",
                line: 13,
                round: 1,
                reason: AdmitReason::PdomLexsuccDisagree {
                    npd_line: Some(3),
                    nls_line: None,
                },
            },
            Event::JumpAdmitted {
                algo: "fig13",
                line: 5,
                round: 1,
                reason: AdmitReason::OnIncludedPredicate { predicate_line: 4 },
            },
            Event::JumpAdmitted {
                algo: "fig12",
                line: 9,
                round: 1,
                reason: AdmitReason::DoWhileHazard,
            },
            Event::Round {
                algo: "fig7",
                round: 2,
                admitted: 0,
            },
            Event::Count {
                name: "batch.criteria",
                value: 120,
            },
        ];
        let text = trace_to_json(&events).write_pretty();
        let parsed = Json::parse(&text).expect("emitted trace parses");
        let back = events_from_json(&parsed).expect("parsed trace decodes");
        assert_eq!(back, events);
    }
}
