//! A minimal JSON value, parser, and writer.
//!
//! The workspace deliberately carries no external dependencies, yet the
//! observability layer needs machine-readable run reports and CI needs to
//! *read them back* (the perf-regression gate compares two
//! `BENCH_slicing.json` files). This module is the shared substrate: a
//! small recursive-descent parser and a stable writer whose output matches
//! the hand-rolled dialect `bench_json` has always emitted (two-space
//! indent, `\n` line ends).
//!
//! # Examples
//!
//! ```
//! use jumpslice_obs::Json;
//! let v = Json::parse(r#"{"bench": "slicing", "rows": [1, 2.5, true, null]}"#)?;
//! assert_eq!(v.get("bench").and_then(Json::as_str), Some("slicing"));
//! assert_eq!(v.get("rows").and_then(Json::as_arr).map(Vec::len), Some(4));
//! let round_trip = Json::parse(&v.write_pretty())?;
//! assert_eq!(round_trip, v);
//! # Ok::<(), String>(())
//! ```

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (the writer is
/// deterministic and diffs stay minimal).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for absent keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Writes the value with two-space indentation and a trailing newline —
    /// the exact dialect of `BENCH_slicing.json`.
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the value on a single line with no padding — the JSON-lines
    /// form the serve daemon's wire protocol requires (one message per
    /// line, so embedded newlines would corrupt the framing).
    pub fn write_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact_into(&mut out);
        out
    }

    fn write_compact_into(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_compact_into(out);
                    out.push(':');
                    v.write_compact_into(out);
                }
                out.push('}');
            }
            // Scalars have no internal layout: reuse the pretty writer.
            other => other.write_into(out, 0),
        }
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integers print without a fractional part; everything else
                // keeps one decimal at minimum so the file re-parses as the
                // same value.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_into(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    Json::Str(k.clone()).write_into(out, 0);
                    out.push_str(": ");
                    v.write_into(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts. The parser is recursive
/// descent, so unbounded nesting (`[[[[…`, a few bytes per level) would
/// overflow the thread stack — an *abort*, not a catchable panic, which on
/// the serve daemon means a hostile one-line request kills the process.
/// No legitimate producer in this workspace nests past single digits.
pub const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by any producer
                            // in this workspace; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    /// Bumps the nesting depth on container entry; [`MAX_DEPTH`] exceeded
    /// is a structured error instead of an unrecoverable stack overflow.
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_is_single_line_and_round_trips() {
        let doc = Json::parse(
            r#"{"op": "slice", "n": 3.5, "ok": true, "v": null,
                "items": [1, "two\nlines", {}, []]}"#,
        )
        .unwrap();
        let line = doc.write_compact();
        assert!(!line.contains('\n'), "JSONL framing: {line}");
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(
            Json::parse("[]").unwrap().write_compact(),
            "[]",
            "empty containers stay compact"
        );
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".to_owned())
        );
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    /// Pinned (hostile input): a few hundred kilobytes of `[` used to
    /// recurse once per byte and overflow the stack — a process *abort* no
    /// `catch_unwind` can contain, i.e. a one-line denial of service
    /// against the serve daemon. Nesting past [`MAX_DEPTH`] must be a
    /// structured parse error, while documents at the cap still parse.
    #[test]
    fn hostile_deep_nesting_is_an_error_not_a_stack_overflow() {
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(500_000);
            let err = Json::parse(&bomb).expect_err("deep nesting rejected");
            assert!(err.contains("nesting"), "useful diagnostic: {err}");
        }
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok(), "the cap itself still parses");
        let over = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).is_err(), "one past the cap fails");
        // Sibling containers don't accumulate depth: the counter is
        // nesting, not a total-container count.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn write_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".to_owned(), Json::Str("a \"b\"\nc".to_owned())),
            (
                "xs".to_owned(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
            ("empty_arr".to_owned(), Json::Arr(vec![])),
            ("empty_obj".to_owned(), Json::Obj(vec![])),
            ("flag".to_owned(), Json::Bool(false)),
            ("nothing".to_owned(), Json::Null),
        ]);
        let text = v.write_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_the_committed_bench_report() {
        // The real BENCH_slicing.json dialect: nested objects, float values,
        // escaped keys. A representative fragment must parse.
        let fragment = r#"{
  "bench": "slicing",
  "available_parallelism": 1,
  "single_slice_warm_analysis_ns": {
    "single/structured-954/conventional": 12345.6
  },
  "batch_sweeps": [
    {
      "family": "structured",
      "stmts": 954,
      "speedup_batch_vs_per_criterion_analysis": 48.05
    }
  ]
}"#;
        let v = Json::parse(fragment).unwrap();
        let rows = v.get("batch_sweeps").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("stmts").and_then(Json::as_num), Some(954.0));
    }

    #[test]
    fn integers_write_without_fraction() {
        assert_eq!(Json::Num(120.0).write_pretty(), "120\n");
        assert_eq!(Json::Num(1.5).write_pretty(), "1.5\n");
    }
}
