//! Seeded random program generators for the property tests and benches.
//!
//! Two families:
//!
//! * [`gen_structured`] — nested `if`/`while`/`do-while`/`switch` with
//!   `break`/`continue`/`return`: every jump is structured in the paper's
//!   sense, so Figures 7, 12, and 13 must all behave per §4 on them.
//! * [`gen_unstructured`] — flat Figure-3/8/10-style goto soup: labeled
//!   statements, forward `goto`s (including into `if` branches), and
//!   backward conditional gotos.
//!
//! Every generated program is guaranteed to parse-validate, to have every
//! reachable statement reach the exit (so postdominators exist), and to end
//! with `write` statements usable as slicing criteria.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumpslice_lang::{CaseGuard, Expr, Program, ProgramBuilder};
use jumpslice_testkit::Rng;

/// Tuning knobs for the generators.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// RNG seed; equal configs generate equal programs.
    pub seed: u64,
    /// Approximate number of statements to emit.
    pub target_stmts: usize,
    /// Maximum nesting depth (structured generator).
    pub max_depth: usize,
    /// Probability of emitting a jump where one is allowed.
    pub jump_density: f64,
    /// Number of integer variables in play.
    pub num_vars: usize,
    /// Whether the structured generator may emit `do-while` loops.
    ///
    /// `do-while` is this workspace's extension beyond the paper's
    /// language; it preserves the soundness of every algorithm but breaks
    /// the *precision equivalence* between Figure 7 and Ball–Horwitz (see
    /// `tests/extension_gaps.rs`), so the equivalence corpus disables it.
    pub do_while: bool,
    /// Whether the structured generator may emit `switch` statements.
    ///
    /// `switch` fall-through lets an arm statement postdominate the whole
    /// construct without being anyone's lexical successor, which makes the
    /// paper's npd ≠ nls test fire conservatively — sound, but coarser
    /// than Ball–Horwitz (see `tests/extension_gaps.rs`). The equivalence
    /// corpus disables switches; everything else keeps them.
    pub switches: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            target_stmts: 30,
            max_depth: 3,
            jump_density: 0.2,
            num_vars: 4,
            do_while: true,
            switches: true,
        }
    }
}

impl GenConfig {
    /// Convenience: default knobs with a given seed and size.
    pub fn sized(seed: u64, target_stmts: usize) -> GenConfig {
        GenConfig {
            seed,
            target_stmts,
            ..GenConfig::default()
        }
    }

    /// The paper's own language fragment: structured constructs only, no
    /// `do-while`, no `switch`. On programs from this preset the precision
    /// equalities of §4 (Figure 7 ≡ Ball–Horwitz, Figure 12 ≡ Figure 7)
    /// are expected to hold exactly.
    pub fn paper_fragment(seed: u64, target_stmts: usize) -> GenConfig {
        GenConfig {
            do_while: false,
            switches: false,
            ..GenConfig::sized(seed, target_stmts)
        }
    }

    /// Overrides the jump density.
    pub fn with_jump_density(self, jump_density: f64) -> GenConfig {
        GenConfig {
            jump_density,
            ..self
        }
    }
}

fn var_name(i: usize) -> String {
    format!("v{i}")
}

struct Gen {
    rng: Rng,
    cfg: GenConfig,
    emitted: usize,
}

impl Gen {
    fn new(cfg: &GenConfig) -> Gen {
        Gen {
            rng: Rng::seed_from_u64(cfg.seed),
            cfg: *cfg,
            emitted: 0,
        }
    }

    fn pick_var(&mut self) -> String {
        var_name(self.rng.gen_range(0..self.cfg.num_vars))
    }

    fn expr(&mut self, b: &mut ProgramBuilder, depth: usize) -> Expr {
        let choice = self.rng.gen_range(0..10);
        match choice {
            0..=3 => {
                let v = self.pick_var();
                b.var(&v)
            }
            4..=5 => Expr::num(self.rng.gen_range(-4..5)),
            6..=8 if depth < 2 => {
                let l = self.expr(b, depth + 1);
                let r = self.expr(b, depth + 1);
                let op = [
                    jumpslice_lang::BinOp::Add,
                    jumpslice_lang::BinOp::Sub,
                    jumpslice_lang::BinOp::Mul,
                    jumpslice_lang::BinOp::Mod,
                ][self.rng.gen_range(0..4usize)];
                Expr::bin(op, l, r)
            }
            9 if depth < 2 => {
                let f = format!("f{}", self.rng.gen_range(1..4));
                let arg = self.expr(b, depth + 1);
                b.call(&f, vec![arg])
            }
            _ => {
                let v = self.pick_var();
                b.var(&v)
            }
        }
    }

    /// A loop-ish condition: compares a variable against a small constant,
    /// or tests eof(); generated loops always terminate under the
    /// interpreter's per-site eof horizon or by fuel.
    fn cond(&mut self, b: &mut ProgramBuilder, depth: usize) -> Expr {
        if self.rng.gen_bool(0.3) {
            Expr::not(b.eof())
        } else {
            let l = self.expr(b, depth + 1);
            let r = Expr::num(self.rng.gen_range(-2..3));
            let op = [
                jumpslice_lang::BinOp::Lt,
                jumpslice_lang::BinOp::Le,
                jumpslice_lang::BinOp::Eq,
                jumpslice_lang::BinOp::Ne,
                jumpslice_lang::BinOp::Gt,
            ][self.rng.gen_range(0..5usize)];
            Expr::bin(op, l, r)
        }
    }

    fn simple_stmt(&mut self, b: &mut ProgramBuilder) {
        self.emitted += 1;
        match self.rng.gen_range(0..6) {
            0 => {
                let v = self.pick_var();
                b.read(&v);
            }
            1 => {
                let e = self.expr(b, 0);
                b.write(e);
            }
            _ => {
                let v = self.pick_var();
                let e = self.expr(b, 0);
                b.assign(&v, e);
            }
        }
    }

    /// Structured statement list; `in_loop`/`in_breakable` gate jumps.
    fn structured_block(
        &mut self,
        b: &mut ProgramBuilder,
        depth: usize,
        budget: usize,
        in_loop: bool,
        in_breakable: bool,
        top_level: bool,
    ) {
        let mut remaining = budget.max(1);
        while remaining > 0 {
            let r = self.rng.gen_f64();
            let jump_ok = (in_loop || in_breakable) && r < self.cfg.jump_density;
            if jump_ok {
                self.emitted += 1;
                if in_loop && self.rng.gen_bool(0.5) {
                    b.continue_();
                } else if in_breakable {
                    b.break_();
                } else {
                    b.continue_();
                }
                // A jump ends the block: anything after it is dead code,
                // which we avoid so every statement stays reachable.
                return;
            }
            if depth < self.cfg.max_depth && remaining >= 3 && self.rng.gen_bool(0.4) {
                let inner = self.rng.gen_range(1..remaining.min(8));
                remaining -= inner + 1;
                self.emitted += 1;
                let max_kind = if self.cfg.switches { 4 } else { 3 };
                match self.rng.gen_range(0..max_kind) {
                    0 => {
                        let c = self.cond(b, 0);
                        let half = inner / 2;
                        b.if_else_with(
                            c,
                            self,
                            |g, b2| {
                                g.structured_block(
                                    b2,
                                    depth + 1,
                                    inner - half,
                                    in_loop,
                                    in_breakable,
                                    false,
                                )
                            },
                            |g, b2| {
                                if half > 0 {
                                    g.structured_block(
                                        b2,
                                        depth + 1,
                                        half,
                                        in_loop,
                                        in_breakable,
                                        false,
                                    )
                                }
                            },
                        );
                    }
                    1 => {
                        let c = Expr::not(b.eof());
                        b.while_(c, |b2| {
                            self.structured_block(b2, depth + 1, inner, true, true, false)
                        });
                    }
                    2 if self.cfg.do_while => {
                        let c = Expr::not(b.eof());
                        b.do_while(
                            |b2| self.structured_block(b2, depth + 1, inner, true, true, false),
                            c,
                        );
                    }
                    2 => {
                        let c = Expr::not(b.eof());
                        b.while_(c, |b2| {
                            self.structured_block(b2, depth + 1, inner, true, true, false)
                        });
                    }
                    _ => {
                        let scrut = self.expr(b, 0);
                        let arms = self.rng.gen_range(1..4usize);
                        let with_default = self.rng.gen_bool(0.5);
                        let per_arm = (inner / (arms + 1)).max(1);
                        b.switch(scrut, |s| {
                            for ai in 0..arms {
                                s.arm(&[CaseGuard::Case(ai as i64)], |b2| {
                                    self.structured_block(
                                        b2,
                                        depth + 1,
                                        per_arm,
                                        in_loop,
                                        true,
                                        false,
                                    );
                                    if self.rng.gen_bool(0.7) {
                                        self.emitted += 1;
                                        b2.break_();
                                    }
                                });
                            }
                            if with_default {
                                s.default(|b2| {
                                    self.structured_block(
                                        b2,
                                        depth + 1,
                                        per_arm,
                                        in_loop,
                                        true,
                                        false,
                                    )
                                });
                            }
                        });
                    }
                }
                continue;
            }
            self.simple_stmt(b);
            remaining -= 1;
        }
        let _ = top_level;
    }
}

/// Generates a structured program: nested control flow with
/// `break`/`continue` but no `goto`s.
///
/// # Examples
///
/// ```
/// use jumpslice_progen::{gen_structured, GenConfig};
/// let p = gen_structured(&GenConfig::sized(1, 40));
/// assert!(p.len() >= 20);
/// // Determinism: same config, same program.
/// assert_eq!(p, gen_structured(&GenConfig::sized(1, 40)));
/// ```
pub fn gen_structured(cfg: &GenConfig) -> Program {
    let mut g = Gen::new(cfg);
    let mut b = ProgramBuilder::new();
    // Initialize every variable so slices have definite data sources.
    for i in 0..cfg.num_vars {
        b.read(&var_name(i));
    }
    g.structured_block(
        &mut b,
        0,
        cfg.target_stmts.saturating_sub(cfg.num_vars * 2),
        false,
        false,
        true,
    );
    for i in 0..cfg.num_vars {
        let v = b.var(&var_name(i));
        b.write(v);
    }
    b.build()
        .expect("structured generator emits valid programs")
}

/// Generates a flat unstructured program in the style of the paper's
/// Figures 3, 8, and 10: labeled statements, conditional gotos (forward and
/// backward), unconditional forward gotos, and `if` blocks that jumps may
/// enter or leave.
///
/// Structural liveness (every reachable statement reaches the exit) is
/// enforced by construction for backward jumps (they are conditional, so
/// the fall-through path survives) and re-checked by the caller-visible
/// contract below.
///
/// # Examples
///
/// ```
/// use jumpslice_progen::{gen_unstructured, GenConfig};
/// use jumpslice_cfg::Cfg;
/// let p = gen_unstructured(&GenConfig::sized(3, 30));
/// assert!(Cfg::build(&p).all_reach_exit());
/// ```
pub fn gen_unstructured(cfg: &GenConfig) -> Program {
    for attempt in 0..256 {
        let p = try_gen_unstructured(&GenConfig {
            seed: cfg.seed.wrapping_add(attempt * 0x9e37),
            ..*cfg
        });
        let c = jumpslice_cfg::Cfg::build(&p);
        // Require a *fully live* program: every statement reachable from
        // the entry and able to reach the exit. Dead code makes slicing
        // criteria degenerate (the paper assumes live criteria throughout);
        // about a third of raw draws qualify, so the bounded retry
        // practically always succeeds.
        let live = c.reachable();
        if c.all_reach_exit() && p.stmt_ids().all(|s| live[c.node(s).index()]) {
            return p;
        }
    }
    panic!("no fully-live draw in 256 attempts; loosen jump_density");
}

fn try_gen_unstructured(cfg: &GenConfig) -> Program {
    let mut g = Gen::new(cfg);
    let mut b = ProgramBuilder::new();
    for i in 0..cfg.num_vars {
        b.read(&var_name(i));
    }

    // Plan: a sequence of "slots". Every slot gets a label; gotos pick
    // random label targets subject to the direction rules.
    let n_slots = cfg.target_stmts.max(6);
    let label_of = |i: usize| format!("L{i}");

    let mut i = 0usize;
    while i < n_slots {
        b.label(&label_of(i));
        let r = g.rng.gen_f64();
        if r < cfg.jump_density && i + 1 < n_slots {
            if g.rng.gen_bool(0.5) {
                // Unconditional forward goto (skips a random distance).
                // Mostly wrapped in an `if` — a braced `if (c) { goto L; }`
                // stays an If node plus a separate Goto node (only the
                // parser's unbraced form fuses), so this exercises gotos
                // that are directly control dependent on a predicate while
                // keeping the next slot reachable through the false edge.
                // Bare gotos (30%) can strand the following slot; the
                // fully-live retry below rejects those draws.
                let tgt = g.rng.gen_range(i + 1..n_slots + 1);
                let name = if tgt == n_slots {
                    "LEND".to_owned()
                } else {
                    label_of(tgt)
                };
                if g.rng.gen_bool(0.7) {
                    let c = g.cond(&mut b, 0);
                    g.emitted += 2;
                    b.if_then(c, |b2| {
                        b2.goto(&name);
                    });
                } else {
                    // Bare goto, preceded by a conditional goto to the next
                    // slot so the fall-through region stays reachable — the
                    // exact idiom of the paper's Figure 3
                    // (`if (x > 0) goto L8; ... goto L13;`).
                    let next = if i + 1 == n_slots {
                        "LEND".to_owned()
                    } else {
                        label_of(i + 1)
                    };
                    let c = g.cond(&mut b, 0);
                    g.emitted += 2;
                    b.cond_goto(c, &next);
                    b.goto(&name);
                }
            } else {
                // Conditional goto, forward or backward.
                let c = g.cond(&mut b, 0);
                let back = g.rng.gen_bool(0.4) && i > 0;
                let tgt = if back {
                    g.rng.gen_range(0..i)
                } else {
                    g.rng.gen_range(i + 1..n_slots + 1)
                };
                let name = if tgt == n_slots {
                    "LEND".to_owned()
                } else {
                    label_of(tgt)
                };
                g.emitted += 1;
                b.cond_goto(c, &name);
            }
        } else if r < cfg.jump_density + 0.15 && i + 3 < n_slots {
            // An if block with interior labels — forward gotos from outside
            // may jump into it (Figure 10 style).
            let c = g.cond(&mut b, 0);
            let body = g.rng.gen_range(1..3usize);
            let start = i + 1;
            b.if_then(c, |b2| {
                for k in 0..body {
                    b2.label(&label_of(start + k));
                    g.simple_stmt(b2);
                }
            });
            i += body;
        } else {
            g.simple_stmt(&mut b);
        }
        i += 1;
    }

    b.label("LEND");
    for i in 0..cfg.num_vars {
        let v = b.var(&var_name(i));
        b.write(v);
    }
    b.build()
        .expect("unstructured generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_cfg::Cfg;

    #[test]
    fn structured_generator_is_deterministic_and_valid() {
        for seed in 0..20 {
            let cfg = GenConfig::sized(seed, 40);
            let p = gen_structured(&cfg);
            assert_eq!(p, gen_structured(&cfg), "seed {seed} not deterministic");
            let c = Cfg::build(&p);
            assert!(c.all_reach_exit(), "seed {seed} has an infinite loop");
            assert!(p.len() >= 10, "seed {seed} too small: {}", p.len());
        }
    }

    #[test]
    fn structured_programs_have_structured_jumps_only() {
        use jumpslice_lang::StmtKind;
        for seed in 0..20 {
            let p = gen_structured(&GenConfig::sized(seed, 50));
            for s in p.stmt_ids() {
                assert!(
                    !matches!(
                        p.stmt(s).kind,
                        StmtKind::Goto { .. } | StmtKind::CondGoto { .. }
                    ),
                    "structured generator must not emit gotos"
                );
            }
        }
    }

    #[test]
    fn unstructured_generator_reaches_exit_and_has_gotos() {
        use jumpslice_lang::StmtKind;
        let mut any_goto = 0;
        for seed in 0..20 {
            let p = gen_unstructured(&GenConfig::sized(seed, 30));
            assert!(Cfg::build(&p).all_reach_exit(), "seed {seed}");
            any_goto += p
                .stmt_ids()
                .filter(|&s| {
                    matches!(
                        p.stmt(s).kind,
                        StmtKind::Goto { .. } | StmtKind::CondGoto { .. }
                    )
                })
                .count();
        }
        assert!(any_goto > 10, "generator should emit plenty of gotos");
    }

    #[test]
    fn generated_programs_end_with_writes() {
        use jumpslice_lang::StmtKind;
        for p in [
            gen_structured(&GenConfig::sized(7, 30)),
            gen_unstructured(&GenConfig::sized(7, 30)),
        ] {
            let last = *p.body().last().unwrap();
            assert!(matches!(p.stmt(last).kind, StmtKind::Write { .. }));
        }
    }

    #[test]
    fn sizes_scale_with_target() {
        let small = gen_structured(&GenConfig::sized(5, 20)).len();
        let large = gen_structured(&GenConfig::sized(5, 200)).len();
        assert!(large > small * 3, "{small} vs {large}");
    }
}
