//! The fault schedule: what goes wrong, where, and exactly when.
//!
//! A [`FaultPlan`] is the unit of chaos. It is pure data — every fault is
//! addressed by a deterministic *call counter* (the Nth store IO call, the
//! Nth slice execution, the Nth enqueue), never by wall-clock time or OS
//! scheduling — so replaying the same plan over the same programs takes
//! the daemon through the same decision points in the same order, on any
//! machine. That is what makes a chaos finding a regression test instead
//! of an anecdote.
//!
//! Plans are sampled from a seed ([`FaultPlan::sample`]), rendered for
//! humans ([`FaultPlan::describe`]), greedily minimized against a failing
//! predicate ([`shrink_plan`]), and emitted as ready-to-paste regression
//! tests ([`regression_test`]).

use jumpslice_testkit::Rng;

/// What a scheduled store-IO fault does when its call number comes up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The read fails outright (injected EIO).
    ReadErr,
    /// The read succeeds but one bit is flipped; which bit is chosen from
    /// the carried seed and the payload length, so it is reproducible.
    ReadBitFlip(u64),
    /// The write fails with no bytes persisted (injected ENOSPC).
    WriteErr,
    /// The write persists a seed-chosen prefix and then fails — the torn
    /// write a crash mid-`write(2)` leaves behind.
    TornWrite(u64),
    /// The rename fails (the atomic-publish step of a snapshot save).
    RenameErr,
    /// The removal fails (cleanup and eviction paths).
    RemoveErr,
}

impl IoFaultKind {
    /// Stable short name for reports and coverage tables.
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::ReadErr => "read-err",
            IoFaultKind::ReadBitFlip(_) => "read-bit-flip",
            IoFaultKind::WriteErr => "write-err",
            IoFaultKind::TornWrite(_) => "torn-write",
            IoFaultKind::RenameErr => "rename-err",
            IoFaultKind::RemoveErr => "remove-err",
        }
    }
}

/// One store-IO fault, armed for the `at`-th matching IO call (0-based,
/// counted per plan across the whole store lifetime, `open` included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFault {
    /// Which IO call (of the kind's category) the fault fires on.
    pub at: u64,
    /// What happens.
    pub kind: IoFaultKind,
}

/// A fault injected into the `at`-th slice execution of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceFaultAt {
    /// Which slice execution (0-based, counted engine-wide).
    pub at: u64,
    /// `None` fuel means a worker panic; `Some(n)` means a clock-free
    /// cancellation after exactly `n` slicer checkpoints.
    pub cancel_fuel: Option<u64>,
}

/// A complete deterministic fault schedule for one chaos run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was sampled from (kept for reports; replay uses the
    /// explicit schedules below, not the seed).
    pub seed: u64,
    /// Store-IO faults by call count.
    pub io_faults: Vec<IoFault>,
    /// Worker panics and deterministic cancellations by slice count.
    pub slice_faults: Vec<SliceFaultAt>,
    /// Enqueue indices rejected with a structured `"queue full"` error.
    pub reject_enqueues: Vec<u64>,
    /// Known-bug override: let the cache evict leased entries. Never
    /// sampled — only the `--inject-known-bug` self-test sets it, to prove
    /// the lease tracker catches the violation.
    pub evict_leased: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (the control run).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Samples a plan from `seed`. Densities are chosen so a typical plan
    /// carries a handful of IO faults and zero-to-two request-level
    /// faults — enough to compose (a torn write *and* a failed cleanup),
    /// sparse enough that most requests exercise the recovery paths'
    /// surroundings rather than drowning in errors.
    pub fn sample(seed: u64) -> FaultPlan {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut io_faults = Vec::new();
        for _ in 0..rng.gen_range(0..6usize) {
            // `at` ranges reflect each category's call frequency in a
            // typical run: reads fire on every load/restore, while a store
            // only writes (tmp), renames (publish), and removes (evict,
            // cleanup) a handful of times — a fault scheduled past that
            // would never land.
            let (at, kind) = match rng.gen_range(0..6u32) {
                0 => (rng.gen_range(0..24u64), IoFaultKind::ReadErr),
                1 => (
                    rng.gen_range(0..24u64),
                    IoFaultKind::ReadBitFlip(rng.next_u64()),
                ),
                2 => (rng.gen_range(0..6u64), IoFaultKind::WriteErr),
                3 => (
                    rng.gen_range(0..6u64),
                    IoFaultKind::TornWrite(rng.next_u64()),
                ),
                4 => (rng.gen_range(0..6u64), IoFaultKind::RenameErr),
                _ => (rng.gen_range(0..4u64), IoFaultKind::RemoveErr),
            };
            io_faults.push(IoFault { at, kind });
        }
        io_faults.sort_by_key(|f| f.at);
        let mut slice_faults = Vec::new();
        for _ in 0..rng.gen_range(0..3usize) {
            slice_faults.push(SliceFaultAt {
                at: rng.gen_range(0..24u64),
                cancel_fuel: if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..64u64))
                } else {
                    None
                },
            });
        }
        slice_faults.sort_by_key(|f| f.at);
        slice_faults.dedup_by_key(|f| f.at);
        let mut reject_enqueues = Vec::new();
        for _ in 0..rng.gen_range(0..2usize) {
            reject_enqueues.push(rng.gen_range(0..32u64));
        }
        reject_enqueues.sort_unstable();
        reject_enqueues.dedup();
        FaultPlan {
            seed,
            io_faults,
            slice_faults,
            reject_enqueues,
            evict_leased: false,
        }
    }

    /// Total scheduled faults (the shrinker's progress measure).
    pub fn fault_count(&self) -> usize {
        self.io_faults.len()
            + self.slice_faults.len()
            + self.reject_enqueues.len()
            + usize::from(self.evict_leased)
    }

    /// One-line human rendering for logs and CI artifacts.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for f in &self.io_faults {
            parts.push(format!("io#{}={}", f.at, f.kind.name()));
        }
        for f in &self.slice_faults {
            match f.cancel_fuel {
                None => parts.push(format!("slice#{}=panic", f.at)),
                Some(n) => parts.push(format!("slice#{}=cancel@{n}", f.at)),
            }
        }
        for r in &self.reject_enqueues {
            parts.push(format!("enqueue#{r}=reject"));
        }
        if self.evict_leased {
            parts.push("evict-leased(KNOWN BUG)".to_owned());
        }
        if parts.is_empty() {
            parts.push("no faults".to_owned());
        }
        format!("plan(seed={}): {}", self.seed, parts.join(" "))
    }

    /// The plan as a Rust expression, for emitted regression tests.
    pub fn to_literal(&self) -> String {
        let io = self
            .io_faults
            .iter()
            .map(|f| {
                let kind = match f.kind {
                    IoFaultKind::ReadErr => "IoFaultKind::ReadErr".to_owned(),
                    IoFaultKind::ReadBitFlip(s) => format!("IoFaultKind::ReadBitFlip({s})"),
                    IoFaultKind::WriteErr => "IoFaultKind::WriteErr".to_owned(),
                    IoFaultKind::TornWrite(s) => format!("IoFaultKind::TornWrite({s})"),
                    IoFaultKind::RenameErr => "IoFaultKind::RenameErr".to_owned(),
                    IoFaultKind::RemoveErr => "IoFaultKind::RemoveErr".to_owned(),
                };
                format!("IoFault {{ at: {}, kind: {kind} }}", f.at)
            })
            .collect::<Vec<_>>()
            .join(", ");
        let slices = self
            .slice_faults
            .iter()
            .map(|f| {
                format!(
                    "SliceFaultAt {{ at: {}, cancel_fuel: {:?} }}",
                    f.at, f.cancel_fuel
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "FaultPlan {{ seed: {}, io_faults: vec![{io}], slice_faults: vec![{slices}], \
             reject_enqueues: vec!{:?}, evict_leased: {} }}",
            self.seed, self.reject_enqueues, self.evict_leased
        )
    }
}

/// Greedily minimizes a failing plan: repeatedly drop one scheduled fault
/// and keep the smaller plan whenever `fails` still holds, until no single
/// removal preserves the failure. The result is 1-minimal — every
/// remaining fault is load-bearing for the violation — which is exactly
/// what a regression test should pin.
pub fn shrink_plan(plan: &FaultPlan, fails: &dyn Fn(&FaultPlan) -> bool) -> FaultPlan {
    let mut best = plan.clone();
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..best.io_faults.len() {
            let mut candidate = best.clone();
            candidate.io_faults.remove(i);
            if fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        if progress {
            continue;
        }
        for i in 0..best.slice_faults.len() {
            let mut candidate = best.clone();
            candidate.slice_faults.remove(i);
            if fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        if progress {
            continue;
        }
        for i in 0..best.reject_enqueues.len() {
            let mut candidate = best.clone();
            candidate.reject_enqueues.remove(i);
            if fails(&candidate) {
                best = candidate;
                progress = true;
                break;
            }
        }
        if !progress && best.evict_leased {
            let mut candidate = best.clone();
            candidate.evict_leased = false;
            if fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
    }
    best
}

/// Renders a shrunk counterexample as a ready-to-paste `#[test]` for
/// `tests/chaos.rs`: it replays the minimized plan over the same program
/// seed and asserts the run is violation-free (the assertion that failed
/// when the test was generated).
pub fn regression_test(plan: &FaultPlan, program_seed: u64, violation: &str) -> String {
    let name = format!("chaos_regression_seed_{}_plan_{}", program_seed, plan.seed);
    format!(
        r#"/// Auto-generated by the chaos shrinker. Violation observed:
///   {violation}
/// The plan below is 1-minimal: removing any scheduled fault made the
/// violation disappear.
#[test]
fn {name}() {{
    use jumpslice_chaos::{{run_plan, ChaosConfig, FaultPlan, IoFault, IoFaultKind, SliceFaultAt}};
    let plan = {literal};
    let cfg = ChaosConfig {{ start_seed: {program_seed}, plans: 1, ..ChaosConfig::smoke() }};
    let outcome = run_plan(&cfg, {program_seed}, &plan);
    assert_eq!(outcome.violations, Vec::<String>::new());
}}
"#,
        literal = plan.to_literal(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_never_sets_the_known_bug() {
        for seed in 0..200 {
            let a = FaultPlan::sample(seed);
            let b = FaultPlan::sample(seed);
            assert_eq!(a, b, "same seed, same plan");
            assert!(!a.evict_leased, "the known bug is never sampled");
        }
        assert_ne!(FaultPlan::sample(1), FaultPlan::sample(2));
    }

    #[test]
    fn sampled_schedules_are_sorted_and_deduplicated() {
        for seed in 0..200 {
            let p = FaultPlan::sample(seed);
            assert!(p.io_faults.windows(2).all(|w| w[0].at <= w[1].at));
            assert!(p.slice_faults.windows(2).all(|w| w[0].at < w[1].at));
            assert!(p.reject_enqueues.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shrinking_reaches_the_one_load_bearing_fault() {
        // Failure model: the run fails iff a torn write is scheduled.
        let fails = |p: &FaultPlan| {
            p.io_faults
                .iter()
                .any(|f| matches!(f.kind, IoFaultKind::TornWrite(_)))
        };
        let mut plan = FaultPlan::sample(7);
        plan.io_faults.push(IoFault {
            at: 11,
            kind: IoFaultKind::TornWrite(42),
        });
        plan.slice_faults.push(SliceFaultAt {
            at: 3,
            cancel_fuel: None,
        });
        plan.reject_enqueues.push(5);
        assert!(fails(&plan));
        let small = shrink_plan(&plan, &fails);
        assert!(fails(&small), "shrinking preserves the failure");
        assert_eq!(small.fault_count(), 1, "exactly the torn write survives");
        assert!(matches!(small.io_faults[0].kind, IoFaultKind::TornWrite(_)));
    }

    #[test]
    fn shrinking_a_quiet_plan_is_a_fixpoint() {
        let plan = FaultPlan::quiet(3);
        let out = shrink_plan(&plan, &|_| true);
        assert_eq!(out, plan);
    }

    #[test]
    fn emitted_regression_tests_replay_the_literal_plan() {
        let mut plan = FaultPlan::quiet(9);
        plan.io_faults.push(IoFault {
            at: 2,
            kind: IoFaultKind::ReadBitFlip(77),
        });
        let test = regression_test(&plan, 4, "store served a corrupt snapshot");
        assert!(test.contains("IoFaultKind::ReadBitFlip(77)"));
        assert!(test.contains("chaos_regression_seed_4_plan_9"));
        assert!(test.contains("store served a corrupt snapshot"));
        assert!(test.contains("run_plan"));
    }

    #[test]
    fn describe_names_every_fault_class() {
        let plan = FaultPlan {
            seed: 1,
            io_faults: vec![
                IoFault {
                    at: 0,
                    kind: IoFaultKind::TornWrite(5),
                },
                IoFault {
                    at: 1,
                    kind: IoFaultKind::ReadErr,
                },
            ],
            slice_faults: vec![
                SliceFaultAt {
                    at: 2,
                    cancel_fuel: None,
                },
                SliceFaultAt {
                    at: 3,
                    cancel_fuel: Some(9),
                },
            ],
            reject_enqueues: vec![4],
            evict_leased: false,
        };
        let d = plan.describe();
        for needle in [
            "io#0=torn-write",
            "io#1=read-err",
            "slice#2=panic",
            "slice#3=cancel@9",
            "enqueue#4=reject",
        ] {
            assert!(d.contains(needle), "{d} should mention {needle}");
        }
    }
}
