//! `ChaosHook`: the daemon-side half of the fault plan, plus the lease
//! tracker that turns the cache's event stream into invariant verdicts.
//!
//! The hook is installed via `Engine::with_fault_hook` and does two jobs:
//!
//! * **Inject** the plan's request-level faults — worker panics,
//!   clock-free cancellations, queue rejections — each addressed by a
//!   deterministic call counter.
//! * **Observe** every cache lease event and feed it to a [`LeaseTracker`]
//!   that checks, against the authoritative under-the-lock ordering, that
//!   no key is ever double-leased, no leased entry is ever evicted, and no
//!   entry dropped by a panic abort is ever served again without being
//!   re-registered first.

use crate::plan::{FaultPlan, SliceFaultAt};
use jumpslice_serve::{FaultHook, LeaseEvent, SliceFault};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct TrackState {
    /// Outstanding leases per key (the cache blocks a second checkout, so
    /// anything above 1 is a violation).
    leased: HashMap<u64, u64>,
    /// Keys whose last lease was aborted and that have not been
    /// re-registered since — serving one again is a resurrection.
    poisoned: HashSet<u64>,
    violations: Vec<String>,
    checkouts: u64,
    evictions: u64,
}

/// Replays the cache's lease-event stream and records every violation of
/// the lease-protocol invariants. Events arrive under the cache lock, so
/// the order seen here *is* the order the cache acted in.
///
/// The tracker assumes the driver's workload shape: concurrent clients do
/// not produce content-colliding edits (two edits moving distinct entries
/// onto one key while one of them is leased). The generated corpora keep
/// that promise; the collision paths themselves are pinned by unit tests
/// in `jumpslice-serve`.
#[derive(Debug, Default)]
pub struct LeaseTracker {
    state: Mutex<TrackState>,
}

impl LeaseTracker {
    fn observe(&self, event: LeaseEvent) {
        let mut s = self.state.lock().expect("tracker lock");
        match event {
            LeaseEvent::Insert { key } => {
                s.poisoned.remove(&key);
            }
            LeaseEvent::Checkout { key } => {
                s.checkouts += 1;
                if s.poisoned.contains(&key) {
                    s.violations.push(format!(
                        "poisoned entry resurrected: key {key:016x} served after a panic abort \
                         with no re-registration"
                    ));
                }
                let n = {
                    let n = s.leased.entry(key).or_insert(0);
                    *n += 1;
                    *n
                };
                if n > 1 {
                    s.violations.push(format!(
                        "double lease: key {key:016x} checked out {n} times"
                    ));
                }
            }
            LeaseEvent::Miss { .. } => {}
            LeaseEvent::Checkin { old_key, new_key } => {
                release(&mut s, old_key);
                s.poisoned.remove(&new_key);
            }
            LeaseEvent::Abort { key } => {
                release(&mut s, key);
                s.poisoned.insert(key);
            }
            LeaseEvent::Evict { key, leased } => {
                s.evictions += 1;
                if leased || s.leased.get(&key).copied().unwrap_or(0) > 0 {
                    s.violations.push(format!(
                        "leased entry evicted: key {key:016x} was checked out"
                    ));
                }
            }
        }
    }

    /// Every invariant violation observed so far, in event order.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().expect("tracker lock").violations.clone()
    }

    /// (checkouts, evictions) observed — coverage counters for reports.
    pub fn activity(&self) -> (u64, u64) {
        let s = self.state.lock().expect("tracker lock");
        (s.checkouts, s.evictions)
    }
}

fn release(s: &mut TrackState, key: u64) {
    match s.leased.get_mut(&key) {
        Some(n) if *n > 0 => *n -= 1,
        _ => s.violations.push(format!(
            "lease returned that was never taken: key {key:016x}"
        )),
    }
}

/// The installed fault hook: injects the plan's request-level faults and
/// tracks lease traffic. One instance spans a whole chaos run, including
/// a daemon restart — its counters are monotonic across engines, so the
/// plan's schedule keeps advancing through the restart.
#[derive(Debug)]
pub struct ChaosHook {
    slice_faults: Vec<SliceFaultAt>,
    reject_enqueues: Vec<u64>,
    evict_leased: bool,
    slices: AtomicU64,
    enqueues: AtomicU64,
    restores: AtomicU64,
    rejected: AtomicU64,
    tracker: LeaseTracker,
}

impl ChaosHook {
    /// A hook loaded with `plan`'s request-level schedule.
    pub fn new(plan: &FaultPlan) -> ChaosHook {
        ChaosHook {
            slice_faults: plan.slice_faults.clone(),
            reject_enqueues: plan.reject_enqueues.clone(),
            evict_leased: plan.evict_leased,
            slices: AtomicU64::new(0),
            enqueues: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tracker: LeaseTracker::default(),
        }
    }

    /// The lease tracker accumulating invariant verdicts.
    pub fn tracker(&self) -> &LeaseTracker {
        &self.tracker
    }

    /// Successful snapshot restores observed.
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::SeqCst)
    }

    /// Enqueues rejected by the plan so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }
}

impl FaultHook for ChaosHook {
    fn lease(&self, event: LeaseEvent) {
        self.tracker.observe(event);
    }

    fn evict_leased(&self) -> bool {
        self.evict_leased
    }

    fn slice_fault(&self) -> SliceFault {
        let n = self.slices.fetch_add(1, Ordering::SeqCst);
        match self.slice_faults.iter().find(|f| f.at == n) {
            Some(SliceFaultAt {
                cancel_fuel: None, ..
            }) => SliceFault::Panic,
            Some(SliceFaultAt {
                cancel_fuel: Some(fuel),
                ..
            }) => SliceFault::CancelAfter(*fuel),
            None => SliceFault::None,
        }
    }

    fn restored(&self, _key: u64) {
        self.restores.fetch_add(1, Ordering::SeqCst);
    }

    fn reject_enqueue(&self) -> bool {
        let n = self.enqueues.fetch_add(1, Ordering::SeqCst);
        let hit = self.reject_enqueues.binary_search(&n).is_ok();
        if hit {
            self.rejected.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn a_clean_lease_lifecycle_produces_no_violations() {
        let t = LeaseTracker::default();
        t.observe(LeaseEvent::Insert { key: 1 });
        t.observe(LeaseEvent::Checkout { key: 1 });
        t.observe(LeaseEvent::Checkin {
            old_key: 1,
            new_key: 1,
        });
        t.observe(LeaseEvent::Checkout { key: 1 });
        t.observe(LeaseEvent::Checkin {
            old_key: 1,
            new_key: 2,
        });
        t.observe(LeaseEvent::Evict {
            key: 2,
            leased: false,
        });
        assert_eq!(t.violations(), Vec::<String>::new());
        assert_eq!(t.activity(), (2, 1));
    }

    #[test]
    fn double_lease_and_leased_eviction_are_flagged() {
        let t = LeaseTracker::default();
        t.observe(LeaseEvent::Insert { key: 7 });
        t.observe(LeaseEvent::Checkout { key: 7 });
        t.observe(LeaseEvent::Checkout { key: 7 });
        t.observe(LeaseEvent::Evict {
            key: 7,
            leased: true,
        });
        let v = t.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("double lease"));
        assert!(v[1].contains("leased entry evicted"));
    }

    #[test]
    fn panic_abort_then_checkout_without_reinsert_is_a_resurrection() {
        let t = LeaseTracker::default();
        t.observe(LeaseEvent::Insert { key: 3 });
        t.observe(LeaseEvent::Checkout { key: 3 });
        t.observe(LeaseEvent::Abort { key: 3 });
        t.observe(LeaseEvent::Checkout { key: 3 });
        let v = t.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("resurrected"));

        // The legal path: abort, re-insert (a fresh load), then checkout.
        let t = LeaseTracker::default();
        t.observe(LeaseEvent::Insert { key: 3 });
        t.observe(LeaseEvent::Checkout { key: 3 });
        t.observe(LeaseEvent::Abort { key: 3 });
        t.observe(LeaseEvent::Insert { key: 3 });
        t.observe(LeaseEvent::Checkout { key: 3 });
        assert_eq!(t.violations(), Vec::<String>::new());
    }

    #[test]
    fn hook_fires_slice_faults_and_rejections_on_exact_counts() {
        let plan = FaultPlan {
            slice_faults: vec![
                SliceFaultAt {
                    at: 1,
                    cancel_fuel: None,
                },
                SliceFaultAt {
                    at: 3,
                    cancel_fuel: Some(17),
                },
            ],
            reject_enqueues: vec![0, 2],
            ..FaultPlan::quiet(0)
        };
        let h = ChaosHook::new(&plan);
        assert_eq!(h.slice_fault(), SliceFault::None);
        assert_eq!(h.slice_fault(), SliceFault::Panic);
        assert_eq!(h.slice_fault(), SliceFault::None);
        assert_eq!(h.slice_fault(), SliceFault::CancelAfter(17));
        assert_eq!(h.slice_fault(), SliceFault::None);
        assert!(h.reject_enqueue());
        assert!(!h.reject_enqueue());
        assert!(h.reject_enqueue());
        assert!(!h.reject_enqueue());
        assert_eq!(h.rejected(), 2);
    }
}
