//! `jumpslice-chaos`: deterministic fault injection and concurrency stress
//! for the slice daemon and its snapshot store.
//!
//! The serve and store layers promise a lot under failure: torn writes
//! never become served snapshots, a worker panic costs one response, a
//! blown deadline degrades to the paper's Figure-13 conservative slicer
//! and nothing else, the cache never double-leases or evicts a
//! checked-out analysis, shutdown always drains. Unit tests pin each
//! mechanism in isolation; this crate attacks the *composition*, the way
//! operations would — except that every "random" failure here is a
//! deterministic, replayable schedule:
//!
//! * [`FaultPlan`] ([`plan`]) — pure data addressing each fault by call
//!   count (the Nth store write, the Nth slice execution), never by
//!   wall-clock or OS scheduling. Sampled from a seed, greedily shrunk to
//!   1-minimal counterexamples ([`shrink_plan`]), emitted as ready-to-paste
//!   regression tests ([`regression_test`]).
//! * [`FaultIo`] ([`io`]) — a [`jumpslice_store::StoreIo`] that injects
//!   failed/bit-flipped reads, failed/torn writes, and failed
//!   renames/removals on schedule.
//! * [`ChaosHook`] ([`hook`]) — a [`jumpslice_serve::FaultHook`] that
//!   injects worker panics, clock-free cancellations (checkpoint fuel),
//!   and queue rejections, while its [`LeaseTracker`] replays the cache's
//!   lease-event stream into invariant verdicts.
//! * [`run_plan`] / [`run_chaos`] ([`driver`]) — replay difftest-generated
//!   corpora through a real daemon (worker pool, bounded queue, snapshot
//!   store) under a plan, asserting after every response that the answer
//!   is byte-identical to a pristine engine's, or degraded exactly to the
//!   direct Figure-13 answer, or an error the plan caused and the daemon
//!   recovers from.
//! * [`self_test_lease_eviction_detected`] /
//!   [`self_test_forged_snapshot_detected`] — inject *known* bugs (a cache
//!   that evicts leased entries; a checksum-valid forged snapshot) and
//!   prove the harness detects both classes, so a green chaos run means
//!   something.
//!
//! # Example
//!
//! ```
//! use jumpslice_chaos::{run_plan, ChaosConfig, FaultPlan};
//!
//! let cfg = ChaosConfig {
//!     plans: 1,
//!     stress_clients: 0,
//!     ..ChaosConfig::smoke()
//! };
//! let outcome = run_plan(&cfg, 0, &FaultPlan::quiet(0));
//! assert_eq!(outcome.violations, Vec::<String>::new());
//! assert!(outcome.cases > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod hook;
pub mod io;
pub mod plan;

pub use driver::{
    run_chaos, run_plan, self_test_forged_snapshot_detected, self_test_lease_eviction_detected,
    ChaosConfig, ChaosFinding, ChaosReport, PlanOutcome,
};
pub use hook::{ChaosHook, LeaseTracker};
pub use io::FaultIo;
pub use plan::{regression_test, shrink_plan, FaultPlan, IoFault, IoFaultKind, SliceFaultAt};
