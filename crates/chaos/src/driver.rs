//! The chaos driver: replay difftest corpora through a faulted daemon and
//! hold every response to the library's direct answer.
//!
//! One [`run_plan`] call is one experiment: generate a program corpus from
//! the plan's seed (the same three [`jumpslice_difftest::Family`]
//! generators the differential suite fuzzes with), bring up a real daemon
//! — worker pool, bounded queue, byte-budgeted cache, snapshot store on a
//! scratch directory — wire the [`FaultPlan`] into it, and drive requests
//! while checking after **every** response:
//!
//! * a non-degraded `slice` response is **byte-identical** to the answer a
//!   pristine, fault-free engine gives for the same request;
//! * a `"degraded":true` response carries exactly the direct Figure-13
//!   conservative answer for the same criteria, and on structured programs
//!   its lines are a superset of the precise Figure-7 slice (the paper's
//!   §4 contract);
//! * an error response is one the plan *caused* (injected worker panic,
//!   scheduled queue rejection) or one the daemon's contract allows
//!   (`unknown program` after eviction or a panic-dropped entry), in which
//!   case re-sending `load` and retrying must fully recover — anything
//!   else is a violation;
//! * the cache's lease-event stream (observed under the cache lock by the
//!   [`ChaosHook`]) never shows a double lease, an eviction of a leased
//!   entry, or a panic-poisoned entry served without re-registration;
//! * the snapshot store never serves a corrupt record: after a daemon
//!   restart over the same (fault-torn) directory, every restored program
//!   still slices byte-identically to the oracle;
//! * shutdown always drains: every worker joins cleanly after every phase.
//!
//! The sequential and restart phases are fully deterministic — faults are
//! addressed by call counts, cancellation by checkpoint fuel — so a
//! violating plan replays. The concurrency-stress phase admits scheduling
//! nondeterminism but validates each response locally against the same
//! closed set of acceptable outcomes, so any interleaving must satisfy the
//! invariants.
//!
//! [`run_chaos`] samples many plans, shrinks each violating plan to a
//! 1-minimal schedule ([`crate::shrink_plan`]), and emits ready-to-paste
//! regression tests. [`self_test_lease_eviction_detected`] and
//! [`self_test_forged_snapshot_detected`] prove the harness *can* detect
//! lease and corruption violations by injecting known bugs and demanding
//! the detectors fire.

use crate::hook::ChaosHook;
use crate::io::FaultIo;
use crate::plan::{regression_test, shrink_plan, FaultPlan};
use jumpslice_difftest::{DiffConfig, Family};
use jumpslice_lang::print_program;
use jumpslice_obs::{self as obs, Json};
use jumpslice_serve::{content_hash, Engine, Pool};
use jumpslice_store::SnapshotStore;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Chaos-session knobs.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// First plan seed (inclusive); seed `n` generates both the `n`-th
    /// [`FaultPlan`] and the `n`-th program corpus.
    pub start_seed: u64,
    /// Number of fault plans to run.
    pub plans: u64,
    /// Approximate statements per generated program.
    pub target_stmts: usize,
    /// Programs per plan, drawn round-robin from the three difftest
    /// families.
    pub programs_per_plan: usize,
    /// Approximate cache capacity in *entries* (the byte budget is derived
    /// from the corpus). Kept below `programs_per_plan` so eviction and
    /// store-restore churn is constant.
    pub cache_slots: usize,
    /// Snapshot-store byte budget.
    pub store_budget: u64,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue capacity.
    pub queue: usize,
    /// Concurrent clients in the stress phase (0 or 1 disables it).
    pub stress_clients: usize,
    /// Requests per stress client.
    pub stress_rounds: usize,
    /// Whether to minimize violating plans before reporting.
    pub shrink: bool,
    /// Stop after this many violating plans.
    pub max_findings: usize,
}

impl ChaosConfig {
    /// The fixed-seed smoke configuration CI runs: small corpora, every
    /// fault class reachable, a couple of minutes end to end.
    pub fn smoke() -> ChaosConfig {
        ChaosConfig {
            start_seed: 0,
            plans: 8,
            target_stmts: 20,
            programs_per_plan: 3,
            cache_slots: 2,
            store_budget: 1 << 20,
            workers: 2,
            queue: 16,
            stress_clients: 3,
            stress_rounds: 12,
            shrink: true,
            max_findings: 4,
        }
    }
}

/// What one plan's run produced.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// The plan that ran.
    pub plan: FaultPlan,
    /// Seed the corpus was generated from.
    pub program_seed: u64,
    /// Requests the daemon(s) handled (from the `stats` op).
    pub requests: u64,
    /// Slice cases checked against the oracle.
    pub cases: usize,
    /// `"degraded":true` responses observed (and verified).
    pub degraded: u64,
    /// Injected worker panics observed (and recovered from).
    pub panics: u64,
    /// `unknown program` recoveries (eviction/abort churn, re-loaded).
    pub reloads: u64,
    /// Enqueues rejected by the plan.
    pub rejected: u64,
    /// Snapshot restores observed (store round trips that worked).
    pub restored: u64,
    /// IO faults that actually fired, in order.
    pub io_fired: Vec<String>,
    /// Invariant violations. Empty is the passing verdict.
    pub violations: Vec<String>,
}

/// One violating plan, minimized and rendered as a regression test.
#[derive(Clone, Debug)]
pub struct ChaosFinding {
    /// Corpus seed.
    pub program_seed: u64,
    /// The plan as sampled.
    pub plan: FaultPlan,
    /// The 1-minimal plan that still violates.
    pub shrunk: FaultPlan,
    /// The violations the original run observed.
    pub violations: Vec<String>,
    /// Ready-to-paste `#[test]` replaying the shrunk plan.
    pub regression_test: String,
}

/// Aggregate over a whole chaos session.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Plans run.
    pub plans: u64,
    /// Total requests handled.
    pub requests: u64,
    /// Total oracle-checked slice cases.
    pub cases: usize,
    /// Verified degraded responses.
    pub degraded: u64,
    /// Injected panics recovered from.
    pub panics: u64,
    /// Eviction/abort reload recoveries.
    pub reloads: u64,
    /// Scheduled queue rejections served.
    pub rejected: u64,
    /// Snapshot restores.
    pub restored: u64,
    /// IO faults fired.
    pub io_faults_fired: usize,
    /// Violating plans (shrunk, with regression tests).
    pub findings: Vec<ChaosFinding>,
}

impl ChaosReport {
    fn absorb(&mut self, o: &PlanOutcome) {
        self.plans += 1;
        self.requests += o.requests;
        self.cases += o.cases;
        self.degraded += o.degraded;
        self.panics += o.panics;
        self.reloads += o.reloads;
        self.rejected += o.rejected;
        self.restored += o.restored;
        self.io_faults_fired += o.io_fired.len();
    }

    /// Human summary for CLI and CI logs.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} plans, {} requests, {} cases checked, {} degraded verified, \
             {} panics recovered, {} reloads, {} rejections, {} restores, {} io faults fired, \
             {} violating plans",
            self.plans,
            self.requests,
            self.cases,
            self.degraded,
            self.panics,
            self.reloads,
            self.rejected,
            self.restored,
            self.io_faults_fired,
            self.findings.len()
        )
    }
}

struct Prog {
    key: String,
    stmts: usize,
    structured: bool,
    load_req: String,
}

struct Case {
    req: String,
    oracle_resp: String,
    /// `write_compact` of the oracle's direct fig13 `slices` value.
    fig13_slices: String,
    /// Per-criterion precise (requested-algo) line sets, for the superset
    /// check on degraded answers.
    precise_lines: Vec<Vec<u64>>,
    /// Whether fig13 ⊇ precise must hold (structured program, fig7 ask).
    superset: bool,
    load_req: String,
    key: String,
}

#[derive(Default)]
struct Counts {
    degraded: AtomicU64,
    panics: AtomicU64,
    reloads: AtomicU64,
}

fn rundir(tag: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("jumpslice-chaos-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn load_request(source: &str) -> String {
    Json::Obj(vec![
        ("op".to_owned(), Json::Str("load".to_owned())),
        ("source".to_owned(), Json::Str(source.to_owned())),
    ])
    .write_compact()
}

fn slice_request(key: &str, algo: &str, line: usize) -> String {
    format!(r#"{{"op":"slice","program":"{key}","algo":"{algo}","criteria":[{{"line":{line}}}]}}"#)
}

/// Generates the plan's corpus and registers it with the oracle, skipping
/// anything the engine rejects (the generators occasionally produce
/// programs outside the analyzable fragment; both engines reject them
/// identically, so there is nothing to compare).
fn corpus(cfg: &ChaosConfig, program_seed: u64, oracle: &Engine) -> Vec<Prog> {
    let diff_cfg = DiffConfig {
        target_stmts: cfg.target_stmts,
        ..DiffConfig::smoke()
    };
    let mut progs = Vec::new();
    let mut seed = program_seed;
    let mut rounds = 0;
    while progs.len() < cfg.programs_per_plan && rounds < 4 {
        for family in Family::ALL {
            if progs.len() >= cfg.programs_per_plan {
                break;
            }
            let source = print_program(&family.generate(seed, &diff_cfg));
            let load_req = load_request(&source);
            let resp = oracle.handle_line(&load_req);
            let Ok(j) = Json::parse(&resp) else { continue };
            if j.get("ok").and_then(Json::as_bool) != Some(true) {
                continue;
            }
            let (Some(key), Some(stmts)) = (
                j.get("program").and_then(Json::as_str),
                j.get("stmts").and_then(Json::as_num),
            ) else {
                continue;
            };
            progs.push(Prog {
                key: key.to_owned(),
                stmts: stmts as usize,
                structured: !matches!(family, Family::Unstructured),
                load_req,
            });
        }
        seed = seed.wrapping_add(1);
        rounds += 1;
    }
    progs
}

fn make_case(oracle: &Engine, p: &Prog, algo: &str, line: usize) -> Case {
    let req = slice_request(&p.key, algo, line);
    let oracle_resp = oracle.handle_line(&req);
    let fig13_resp = oracle.handle_line(&slice_request(&p.key, "fig13", line));
    let fig13_slices = Json::parse(&fig13_resp)
        .ok()
        .and_then(|j| j.get("slices").map(Json::write_compact))
        .unwrap_or_default();
    let precise_lines = Json::parse(&oracle_resp)
        .ok()
        .and_then(|j| {
            j.get("slices").and_then(Json::as_arr).map(|slices| {
                slices
                    .iter()
                    .map(|s| {
                        s.get("lines")
                            .and_then(Json::as_arr)
                            .map(|ls| {
                                ls.iter()
                                    .filter_map(Json::as_num)
                                    .map(|n| n as u64)
                                    .collect()
                            })
                            .unwrap_or_default()
                    })
                    .collect()
            })
        })
        .unwrap_or_default();
    Case {
        req,
        oracle_resp,
        fig13_slices,
        precise_lines,
        superset: p.structured && algo == "fig7",
        load_req: p.load_req.clone(),
        key: p.key.clone(),
    }
}

/// Re-registers a case's program after eviction or a panic-dropped entry.
fn reload(pool: &Pool, case: &Case, violations: &mut Vec<String>) {
    for _ in 0..6 {
        let Some(resp) = pool.round_trip(&case.load_req) else {
            violations.push("daemon refused a reload before shutdown".to_owned());
            return;
        };
        if resp.contains(r#""error":"queue full"#) {
            continue;
        }
        let Ok(j) = Json::parse(&resp) else {
            violations.push(format!("unparseable reload response: {resp}"));
            return;
        };
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            violations.push(format!("reload failed: {resp}"));
        } else if j.get("program").and_then(Json::as_str) != Some(case.key.as_str()) {
            violations.push(format!(
                "reload produced the wrong program key (want {}): {resp}",
                case.key
            ));
        }
        return;
    }
    violations.push("reload never got past queue rejections".to_owned());
}

/// Sends one oracle-checked slice request and classifies the response
/// against the closed set of acceptable outcomes. Returns the violations.
fn expect_slice(pool: &Pool, case: &Case, counts: &Counts, panic_allowed: bool) -> Vec<String> {
    let mut violations = Vec::new();
    for _ in 0..8 {
        let Some(resp) = pool.round_trip(&case.req) else {
            violations.push("daemon refused a request before shutdown".to_owned());
            return violations;
        };
        if resp == case.oracle_resp {
            return violations; // byte-identical to the direct library answer
        }
        if resp.contains('\n') {
            violations.push(format!("response is not a single line: {resp:?}"));
            return violations;
        }
        let Ok(j) = Json::parse(&resp) else {
            violations.push(format!("unparseable response: {resp}"));
            return violations;
        };
        match j.get("ok").and_then(Json::as_bool) {
            Some(true) if j.get("degraded").and_then(Json::as_bool) == Some(true) => {
                counts.degraded.fetch_add(1, Ordering::SeqCst);
                let got = j.get("slices").map(Json::write_compact).unwrap_or_default();
                if got != case.fig13_slices {
                    violations.push(format!(
                        "degraded response differs from the direct fig13 answer\n  got:  {got}\n  want: {}",
                        case.fig13_slices
                    ));
                } else if case.superset {
                    check_superset(&j, case, &mut violations);
                }
                return violations;
            }
            Some(true) => {
                violations.push(format!(
                    "non-degraded response differs from the direct library slice\n  got:  {resp}\n  want: {}",
                    case.oracle_resp
                ));
                return violations;
            }
            Some(false) => {
                let msg = j.get("error").and_then(Json::as_str).unwrap_or("");
                if msg.starts_with("queue full") {
                    continue; // scheduled rejection; the retry is the client contract
                }
                if msg.contains("injected fault: worker panic") {
                    counts.panics.fetch_add(1, Ordering::SeqCst);
                    if !panic_allowed {
                        violations.push(format!("worker panic nobody injected: {resp}"));
                        return violations;
                    }
                    // The panicked request dropped its entry; re-register
                    // and retry — full recovery is the invariant.
                    reload(pool, case, &mut violations);
                    continue;
                }
                if msg.contains("unknown program") {
                    // Evicted (tiny cache) or dropped by a panic abort;
                    // the daemon's contract is `re-send load`.
                    counts.reloads.fetch_add(1, Ordering::SeqCst);
                    reload(pool, case, &mut violations);
                    continue;
                }
                violations.push(format!("unexpected error for {}: {resp}", case.req));
                return violations;
            }
            None => {
                violations.push(format!("response without ok field: {resp}"));
                return violations;
            }
        }
    }
    violations.push(format!(
        "request never settled after 8 attempts: {}",
        case.req
    ));
    violations
}

fn check_superset(j: &Json, case: &Case, violations: &mut Vec<String>) {
    let Some(slices) = j.get("slices").and_then(Json::as_arr) else {
        return;
    };
    for (got, want) in slices.iter().zip(&case.precise_lines) {
        let got: HashSet<u64> = got
            .get("lines")
            .and_then(Json::as_arr)
            .map(|ls| {
                ls.iter()
                    .filter_map(Json::as_num)
                    .map(|n| n as u64)
                    .collect()
            })
            .unwrap_or_default();
        if let Some(missing) = want.iter().find(|l| !got.contains(l)) {
            violations.push(format!(
                "degraded slice is not a superset of the precise slice on a structured \
                 program: line {missing} missing ({})",
                case.req
            ));
        }
    }
}

fn ensure_loaded(pool: &Pool, p: &Prog, violations: &mut Vec<String>) {
    for _ in 0..6 {
        let Some(resp) = pool.round_trip(&p.load_req) else {
            violations.push("daemon refused a load before shutdown".to_owned());
            return;
        };
        if resp.contains(r#""error":"queue full"#) {
            continue;
        }
        let Ok(j) = Json::parse(&resp) else {
            violations.push(format!("unparseable load response: {resp}"));
            return;
        };
        if j.get("ok").and_then(Json::as_bool) != Some(true) {
            violations.push(format!("load failed under faults: {resp}"));
        } else {
            if j.get("program").and_then(Json::as_str) != Some(p.key.as_str()) {
                violations.push(format!(
                    "load produced the wrong key (want {}): {resp}",
                    p.key
                ));
            }
            if j.get("stmts").and_then(Json::as_num) != Some(p.stmts as f64) {
                violations.push(format!(
                    "load produced the wrong statement count (want {}): {resp}",
                    p.stmts
                ));
            }
        }
        return;
    }
    violations.push("load never got past queue rejections".to_owned());
}

fn pool_requests(pool: &Pool) -> u64 {
    for _ in 0..4 {
        let Some(resp) = pool.round_trip(r#"{"op":"stats"}"#) else {
            return 0;
        };
        if resp.contains(r#""error":"queue full"#) {
            continue;
        }
        return Json::parse(&resp)
            .ok()
            .and_then(|j| j.get("requests").and_then(Json::as_num))
            .map(|n| n as u64)
            .unwrap_or(0);
    }
    0
}

/// Runs one plan over one corpus and returns the full outcome. See the
/// module docs for the phase structure and the invariant catalogue.
pub fn run_plan(cfg: &ChaosConfig, program_seed: u64, plan: &FaultPlan) -> PlanOutcome {
    let mut violations = Vec::new();
    let oracle = Engine::new(usize::MAX);
    let progs = corpus(cfg, program_seed, &oracle);
    let mut cases = Vec::new();
    for p in &progs {
        let mut lines = vec![1, p.stmts.div_ceil(2), p.stmts];
        lines.dedup();
        for (i, line) in lines.into_iter().enumerate() {
            cases.push(make_case(&oracle, p, "fig7", line));
            if i == 1 {
                cases.push(make_case(&oracle, p, "fig13", line));
            }
        }
    }
    let panic_allowed = plan.slice_faults.iter().any(|f| f.cancel_fuel.is_none());

    // Cache budget: roughly `cache_slots` of the corpus's largest entry,
    // so eviction (and therefore store-restore churn) is constant.
    let max_entry = progs
        .iter()
        .map(|p| jumpslice_serve::cache::estimate_bytes(p.load_req.len(), p.stmts))
        .max()
        .unwrap_or(1 << 16);
    let cache_bytes = max_entry * cfg.cache_slots.max(1) + max_entry / 2;

    let dir = rundir(program_seed);
    let io = Arc::new(FaultIo::new(plan));
    let hook = Arc::new(ChaosHook::new(plan));
    let counts = Counts::default();
    let mut requests = 0;

    // Phase 1+2: sequential replay, then concurrency stress.
    {
        let mut engine = Engine::new(cache_bytes);
        match SnapshotStore::open_with_io(&dir, cfg.store_budget, io.clone()) {
            Ok(store) => engine = engine.with_store(store),
            Err(e) => violations.push(format!("store failed to open on a clean dir: {e}")),
        }
        let engine = engine.with_fault_hook(hook.clone());
        let pool = Pool::start(Arc::new(engine), cfg.workers, cfg.queue);
        io.arm();

        for p in &progs {
            ensure_loaded(&pool, p, &mut violations);
        }
        for case in &cases {
            violations.extend(expect_slice(&pool, case, &counts, panic_allowed));
        }

        if cfg.stress_clients > 1 && !cases.is_empty() {
            // Program affinity: each client sticks to one program's cases,
            // so reload-after-eviction always converges for that client
            // even while the others churn the tiny cache.
            let mut keys: Vec<&str> = cases.iter().map(|c| c.key.as_str()).collect();
            keys.dedup();
            let shared = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for c in 0..cfg.stress_clients {
                    let pool = &pool;
                    let cases = &cases;
                    let counts = &counts;
                    let shared = &shared;
                    let my_key = keys[c % keys.len()];
                    scope.spawn(move || {
                        let mine: Vec<&Case> =
                            cases.iter().filter(|case| case.key == my_key).collect();
                        let mut local = Vec::new();
                        for r in 0..cfg.stress_rounds {
                            let case = mine[r % mine.len()];
                            local.extend(expect_slice(pool, case, counts, panic_allowed));
                        }
                        shared.lock().expect("stress lock").append(&mut local);
                    });
                }
            });
            violations.append(&mut shared.into_inner().expect("stress lock"));
        }

        requests += pool_requests(&pool);
        if !pool.shutdown() {
            violations.push("workers did not drain cleanly at shutdown".to_owned());
        }
    }

    // Phase 3: restart over the same (possibly fault-torn) directory. A
    // corrupt record served here would surface as a slice mismatch.
    {
        match SnapshotStore::open_with_io(&dir, cfg.store_budget, io.clone()) {
            Ok(store) => {
                let engine = Engine::new(cache_bytes)
                    .with_store(store)
                    .with_fault_hook(hook.clone());
                let pool = Pool::start(Arc::new(engine), cfg.workers, cfg.queue);
                for p in &progs {
                    ensure_loaded(&pool, p, &mut violations);
                }
                for case in cases.iter().step_by(2) {
                    violations.extend(expect_slice(&pool, case, &counts, panic_allowed));
                }
                requests += pool_requests(&pool);
                if !pool.shutdown() {
                    violations.push("workers did not drain cleanly after restart".to_owned());
                }
            }
            Err(e) => violations.push(format!("store failed to reopen after the run: {e}")),
        }
    }

    violations.extend(hook.tracker().violations());
    std::fs::remove_dir_all(&dir).ok();

    PlanOutcome {
        plan: plan.clone(),
        program_seed,
        requests,
        cases: cases.len(),
        degraded: counts.degraded.load(Ordering::SeqCst),
        panics: counts.panics.load(Ordering::SeqCst),
        reloads: counts.reloads.load(Ordering::SeqCst),
        rejected: hook.rejected(),
        restored: hook.restores(),
        io_fired: io.fired(),
        violations,
    }
}

/// Samples and runs `cfg.plans` fault plans, shrinking every violating
/// plan to a 1-minimal schedule and rendering it as a regression test.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport::default();
    for i in 0..cfg.plans {
        let seed = cfg.start_seed.wrapping_add(i);
        let plan = FaultPlan::sample(seed);
        let outcome = run_plan(cfg, seed, &plan);
        report.absorb(&outcome);
        if !outcome.violations.is_empty() {
            let shrunk = if cfg.shrink {
                shrink_plan(&plan, &|p| !run_plan(cfg, seed, p).violations.is_empty())
            } else {
                plan.clone()
            };
            let test = regression_test(&shrunk, seed, &outcome.violations[0]);
            report.findings.push(ChaosFinding {
                program_seed: seed,
                plan,
                shrunk,
                violations: outcome.violations,
                regression_test: test,
            });
            if report.findings.len() >= cfg.max_findings {
                break;
            }
        }
    }
    obs::record(|| obs::Event::Count {
        name: "chaos.plans",
        value: report.plans,
    });
    obs::record(|| obs::Event::Count {
        name: "chaos.io_faults_fired",
        value: report.io_faults_fired as u64,
    });
    obs::record(|| obs::Event::Count {
        name: "chaos.violations",
        value: report.findings.len() as u64,
    });
    report
}

/// Known-bug self-test 1 (lease class): flips the cache's
/// `evict_leased` override — the deliberately wrong policy that victimizes
/// checked-out entries — and demands the lease tracker flag it, while the
/// identical sequence without the bug stays silent. `Err` means the
/// harness cannot be trusted to catch lease violations.
pub fn self_test_lease_eviction_detected() -> Result<(), String> {
    use jumpslice_serve::{AnalysisCache, Entry};

    let mk = |src: &str| {
        let prog = jumpslice_lang::parse(src).expect("self-test source parses");
        let session = jumpslice_incr::EditSession::try_new(prog).expect("analyzable");
        (content_hash(src), Entry::new(session, src.to_owned()))
    };
    let run = |evict_leased: bool| -> Vec<String> {
        let plan = FaultPlan {
            evict_leased,
            ..FaultPlan::quiet(0)
        };
        let hook = Arc::new(ChaosHook::new(&plan));
        let (ka, ea) = mk("a = 1; write(a);");
        let (kb, eb) = mk("b = 2; write(b);");
        let (kc, ec) = mk("c = 3; write(c);");
        // Budget below three entries: the third insert must evict.
        let mut cache = AnalysisCache::new(ea.bytes * 2 + ea.bytes / 2);
        cache.set_fault_hook(hook.clone());
        cache.insert(ka, ea);
        let lease = cache.checkout(ka).expect("lease ka");
        cache.insert(kb, eb);
        cache.insert(kc, ec); // over budget; the leased ka is the LRU victim iff the bug is on
        cache.checkin(ka, ka, lease);
        hook.tracker().violations()
    };

    let clean = run(false);
    if !clean.is_empty() {
        return Err(format!(
            "lease tracker false-positived on a correct cache: {clean:?}"
        ));
    }
    let buggy = run(true);
    if !buggy.iter().any(|v| v.contains("leased entry evicted")) {
        return Err(format!(
            "lease tracker MISSED the injected leased-entry eviction (saw {buggy:?})"
        ));
    }
    Ok(())
}

/// Known-bug self-test 2 (corruption class): plants a **forged snapshot**
/// in the store — a record that passes the checksum, the version gate, the
/// decoder, and the source byte-equality check, but whose analysis belongs
/// to a different program — and demands the slice-identity invariant catch
/// it. This is the corruption no storage-layer defense can see; only
/// comparing served answers against the direct library slice does. `Err`
/// means the harness cannot be trusted to catch corruption violations.
pub fn self_test_forged_snapshot_detected(scratch: &Path) -> Result<(), String> {
    use jumpslice_core::encode_snapshot;

    let target = "read(a); read(b); c = a; write(c);";
    let variant = "read(a); read(b); c = b; write(c);";
    let key = content_hash(target);
    let dir = scratch.join("forged-snapshot");
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;

    // Forge: the variant's analysis wearing the target's source.
    {
        let prog = jumpslice_lang::parse(variant).map_err(|e| format!("variant parses: {e}"))?;
        let session =
            jumpslice_incr::EditSession::try_new(prog).map_err(|e| format!("analyzable: {e}"))?;
        let forged = encode_snapshot(target, session.prog(), session.seed());
        let store = SnapshotStore::open(&dir, 1 << 20).map_err(|e| format!("store opens: {e}"))?;
        store
            .save(key, &forged)
            .map_err(|e| format!("forgery saves: {e}"))?;
    }

    let store = SnapshotStore::open(&dir, 1 << 20).map_err(|e| format!("store reopens: {e}"))?;
    let poisoned = Engine::new(usize::MAX).with_store(store);
    let oracle = Engine::new(usize::MAX);
    let load_req = load_request(target);
    let slice_req = slice_request(&jumpslice_serve::key_string(key), "fig7", 4);

    let restored = poisoned.handle_line(&load_req);
    let result = if !restored.contains(r#""restored":true"#) {
        Err(format!(
            "the forgery should pass every storage-layer check and restore: {restored}"
        ))
    } else {
        oracle.handle_line(&load_req);
        let got = poisoned.handle_line(&slice_req);
        let want = oracle.handle_line(&slice_req);
        if got == want {
            Err(
                "harness MISSED the forged snapshot: served slice is identical to the \
                 direct answer"
                    .to_owned(),
            )
        } else {
            Ok(())
        }
    };
    std::fs::remove_dir_all(&dir).ok();
    result
}
