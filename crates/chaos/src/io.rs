//! `FaultIo`: the [`StoreIo`] implementation that makes disks lie.
//!
//! Wraps the real filesystem and injects the [`FaultPlan`]'s scheduled IO
//! faults by **per-category call count**: the plan's `io#7=torn-write`
//! fires on the 8th `write` call the store makes, wherever that falls in
//! the run. Counting is per category (reads, writes, renames, removals)
//! and advances only while the injector is armed, so the driver can bring
//! the store up cleanly, arm, and know the schedule lands on the same
//! calls every replay.
//!
//! The faults are the crash-consistency classics:
//!
//! * failed reads (EIO) and **single-bit flips** at a seed-chosen offset,
//! * failed writes (ENOSPC) and **torn writes** that persist a seed-chosen
//!   prefix before failing — what a crash mid-`write(2)` leaves behind,
//! * failed renames (the atomic-publish step) and failed removals (the
//!   cleanup and eviction paths).

use crate::plan::{FaultPlan, IoFault, IoFaultKind};
use jumpslice_store::{FileMeta, RealIo, StoreIo};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

#[derive(Debug, Default)]
struct Counters {
    reads: u64,
    writes: u64,
    renames: u64,
    removes: u64,
}

/// A [`StoreIo`] that replays a [`FaultPlan`]'s IO schedule over the real
/// filesystem. Shared (`Arc`) between the store under test and the driver,
/// which arms it and later audits [`FaultIo::fired`].
#[derive(Debug)]
pub struct FaultIo {
    inner: RealIo,
    armed: AtomicBool,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    counters: Counters,
    faults: Vec<IoFault>,
    fired: Vec<String>,
}

impl FaultIo {
    /// An injector loaded with `plan`'s IO schedule, initially disarmed.
    pub fn new(plan: &FaultPlan) -> FaultIo {
        FaultIo {
            inner: RealIo,
            armed: AtomicBool::new(false),
            state: Mutex::new(State {
                counters: Counters::default(),
                faults: plan.io_faults.clone(),
                fired: Vec::new(),
            }),
        }
    }

    /// Starts counting calls and firing scheduled faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops injecting (counters freeze too, so re-arming resumes the
    /// same schedule).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Descriptions of every fault that actually fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.state.lock().expect("fault io lock").fired.clone()
    }

    /// Takes the scheduled fault (if any) for the current call of a
    /// category, advancing that category's counter.
    fn take(
        &self,
        category: fn(&mut Counters) -> &mut u64,
        matches: fn(IoFaultKind) -> bool,
    ) -> Option<IoFault> {
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let mut g = self.state.lock().expect("fault io lock");
        let n = {
            let c = category(&mut g.counters);
            let n = *c;
            *c += 1;
            n
        };
        let hit = g.faults.iter().position(|f| f.at == n && matches(f.kind))?;
        let fault = g.faults.remove(hit);
        g.fired.push(format!("{}@{n}", fault.kind.name()));
        Some(fault)
    }
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fault = self.take(
            |c| &mut c.reads,
            |k| matches!(k, IoFaultKind::ReadErr | IoFaultKind::ReadBitFlip(_)),
        );
        match fault.map(|f| f.kind) {
            Some(IoFaultKind::ReadErr) => Err(injected(io::ErrorKind::Other, "read error")),
            Some(IoFaultKind::ReadBitFlip(seed)) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    // Seed-chosen single-bit corruption: the exact class the
                    // store's checksum must catch on every record byte.
                    let bit = (seed % (bytes.len() as u64 * 8)) as usize;
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            _ => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = self.take(
            |c| &mut c.writes,
            |k| matches!(k, IoFaultKind::WriteErr | IoFaultKind::TornWrite(_)),
        );
        match fault.map(|f| f.kind) {
            // `ErrorKind::Other` rather than `StorageFull`: the latter only
            // stabilized in 1.83 and the store treats every write error the
            // same way regardless of kind.
            Some(IoFaultKind::WriteErr) => Err(injected(io::ErrorKind::Other, "write error")),
            Some(IoFaultKind::TornWrite(seed)) => {
                // Persist a seed-chosen strict prefix, then fail — the torn
                // state a crash between write and fsync leaves on disk.
                if !bytes.is_empty() {
                    let keep = (seed % bytes.len() as u64) as usize;
                    self.inner.write(path, &bytes[..keep])?;
                }
                Err(injected(io::ErrorKind::Other, "torn write"))
            }
            _ => self.inner.write(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let fault = self.take(|c| &mut c.renames, |k| matches!(k, IoFaultKind::RenameErr));
        if fault.is_some() {
            return Err(injected(io::ErrorKind::Other, "rename error"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let fault = self.take(|c| &mut c.removes, |k| matches!(k, IoFaultKind::RemoveErr));
        if fault.is_some() {
            return Err(injected(io::ErrorKind::Other, "remove error"));
        }
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<FileMeta>> {
        self.inner.list(dir)
    }

    fn set_modified(&self, path: &Path, mtime: SystemTime) -> io::Result<()> {
        self.inner.set_modified(path, mtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "jumpslice-chaos-io-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn plan_with(faults: Vec<IoFault>) -> FaultPlan {
        FaultPlan {
            io_faults: faults,
            ..FaultPlan::quiet(0)
        }
    }

    #[test]
    fn disarmed_injector_is_a_passthrough_and_counts_nothing() {
        let dir = tmpdir("passthrough");
        let io = FaultIo::new(&plan_with(vec![IoFault {
            at: 0,
            kind: IoFaultKind::WriteErr,
        }]));
        let p = dir.join("f");
        io.write(&p, b"hello").expect("disarmed write works");
        assert_eq!(io.read(&p).expect("disarmed read works"), b"hello");
        io.arm();
        // The scheduled write#0 fault fires on the first *armed* write.
        assert!(io.write(&p, b"again").is_err());
        assert_eq!(io.fired(), vec!["write-err@0".to_owned()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_persists_a_prefix_and_bit_flip_corrupts_one_bit() {
        let dir = tmpdir("torn");
        let io = FaultIo::new(&plan_with(vec![
            IoFault {
                at: 0,
                kind: IoFaultKind::TornWrite(3),
            },
            IoFault {
                at: 1,
                kind: IoFaultKind::ReadBitFlip(9),
            },
        ]));
        io.arm();
        let p = dir.join("f");
        let payload = b"0123456789";
        assert!(io.write(&p, payload).is_err(), "torn write reports failure");
        let on_disk = std::fs::read(&p).expect("prefix persisted");
        assert_eq!(on_disk.len() as u64, 3 % payload.len() as u64);
        assert_eq!(&on_disk[..], &payload[..on_disk.len()]);

        io.write(&p, payload).expect("unscheduled write is clean");
        let clean = io.read(&p).expect("read 0 unscheduled");
        assert_eq!(clean, payload);
        let flipped = io.read(&p).expect("read 1 flips a bit");
        assert_ne!(flipped, payload);
        let differing: u32 = flipped
            .iter()
            .zip(payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1, "exactly one bit differs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_fire_once_and_replays_are_identical() {
        let plan = plan_with(vec![IoFault {
            at: 1,
            kind: IoFaultKind::ReadErr,
        }]);
        let dir = tmpdir("replay");
        let p = dir.join("f");
        std::fs::write(&p, b"data").expect("seed file");
        for _ in 0..2 {
            let io = FaultIo::new(&plan);
            io.arm();
            assert!(io.read(&p).is_ok(), "read 0 clean");
            assert!(io.read(&p).is_err(), "read 1 faulted");
            assert!(io.read(&p).is_ok(), "fault consumed; read 2 clean");
            assert_eq!(io.fired(), vec!["read-err@1".to_owned()]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rename_and_remove_faults_hit_their_categories() {
        let dir = tmpdir("cat");
        let io = FaultIo::new(&plan_with(vec![
            IoFault {
                at: 0,
                kind: IoFaultKind::RenameErr,
            },
            IoFault {
                at: 0,
                kind: IoFaultKind::RemoveErr,
            },
        ]));
        io.arm();
        let a = dir.join("a");
        let b = dir.join("b");
        io.write(&a, b"x").expect("write unscheduled");
        assert!(io.rename(&a, &b).is_err(), "rename 0 faulted");
        io.rename(&a, &b).expect("rename 1 clean");
        assert!(io.remove_file(&b).is_err(), "remove 0 faulted");
        io.remove_file(&b).expect("remove 1 clean");
        std::fs::remove_dir_all(&dir).ok();
    }
}
