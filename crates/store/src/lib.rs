//! The persistent snapshot store: content-addressed analysis payloads on
//! disk, so a restarted daemon serves its first slice warm.
//!
//! The store is deliberately dumb about *what* it holds — records are
//! opaque byte payloads keyed by a caller-supplied 64-bit content key (the
//! daemon uses the FNV-1a hash of the program source, the same key its
//! in-memory cache uses). What the store *is* opinionated about is
//! surviving the real world:
//!
//! * **Versioned, checksummed records.** Every file starts with a fixed
//!   header: magic, format version, the content key, the payload length,
//!   and a word-at-a-time FNV-style checksum over version + key + payload.
//!   A load validates
//!   all of it; any mismatch — wrong version after an upgrade, truncation
//!   from a torn write, bit rot, a file renamed under the wrong key — is a
//!   counted rejection ([`RecordError`]), never a panic and never a wrong
//!   payload.
//! * **Corruption is degradation, not failure.** A corrupt record is
//!   deleted and reported as a miss; the caller rebuilds from source and
//!   usually re-saves. The `serve.store.corrupt` counter makes the
//!   degradation observable.
//! * **Atomic writes.** Payloads land in a temp file in the same directory
//!   and are `rename`d into place, so a crash mid-write leaves either the
//!   old state or the new record, never a half-written one under a live
//!   name.
//! * **Byte-budget LRU.** The directory is bounded: after each write, the
//!   oldest records (by modification time — loads touch it) are evicted
//!   until the total fits the budget, keeping at least the record just
//!   written.
//!
//! Concurrency: one store value may be shared across threads (`&self`
//! everywhere, counters atomic, writes serialized by an internal lock).
//! Multiple *processes* sharing a directory are safe against torn reads by
//! the checksum, though their evictions may race benignly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumpslice_obs as obs;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// The record format version this build reads and writes. Bump on any
/// payload- or header-layout change: old records then fail the version
/// check and fall back to a from-source rebuild instead of misdecoding.
pub const FORMAT_VERSION: u32 = 1;

/// Record files start with these four bytes.
pub const MAGIC: [u8; 4] = *b"JSST";

/// Fixed header size: magic + version + key + payload length + checksum.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit over raw bytes — the content-key hash (the daemon keys
/// programs by `fnv1a(source)`). The whole-record checksum uses the faster
/// word-at-a-time variant below instead.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Why a record failed to decode. Every variant maps to "ignore this file
/// and rebuild from source"; the variants exist so tests can pin that each
/// failure mode is detected for the right reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Shorter than the fixed header.
    TooShort,
    /// The first four bytes are not [`MAGIC`] — not a record at all.
    BadMagic,
    /// A record from a different format generation; carries the version
    /// found on disk.
    WrongVersion(u32),
    /// The header's payload length disagrees with the bytes present.
    LengthMismatch,
    /// The whole-record checksum does not match — bit corruption somewhere
    /// in version, key, or payload.
    BadChecksum,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::TooShort => f.write_str("record shorter than its header"),
            RecordError::BadMagic => f.write_str("bad magic"),
            RecordError::WrongVersion(v) => write!(f, "unsupported format version {v}"),
            RecordError::LengthMismatch => f.write_str("payload length mismatch"),
            RecordError::BadChecksum => f.write_str("checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

/// The whole-record checksum: everything after the magic that the reader
/// acts on, mixed with the FNV-1a step applied a 64-bit word at a time
/// (byte-at-a-time FNV costs milliseconds on multi-megabyte snapshots,
/// which would dominate the very restore latency the store exists to
/// save). The payload words feed four independent lanes, round-robin:
/// a single chain's throughput is bound by the multiply's latency, while
/// four interleaved chains keep the multiplier busy every cycle.
///
/// Corruption coverage: each lane's `xor`-then-multiply step is bijective
/// in the running hash, so any single corrupted word — hence any single
/// flipped bit — changes exactly one lane's final value; the combining
/// fold is bijective in every lane, so the change reaches the sum.
/// Seeding lane 0 with the payload length keeps distinct-length payloads
/// with a shared prefix from colliding.
fn checksum(version: u32, key: u64, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mix = |h: u64, w: u64| (h ^ w).wrapping_mul(PRIME);
    let mut lanes = [
        mix(OFFSET, payload.len() as u64),
        mix(OFFSET, u64::from(version)),
        mix(OFFSET, key),
        OFFSET,
    ];
    let mut blocks = payload.chunks_exact(32);
    for b in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().expect("sized"));
            *lane = mix(*lane, w);
        }
    }
    let mut i = 0;
    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        lanes[i] = mix(
            lanes[i],
            u64::from_le_bytes(w.try_into().expect("chunks_exact(8)")),
        );
        i += 1;
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        lanes[i] = mix(lanes[i], u64::from_le_bytes(tail));
    }
    mix(mix(mix(lanes[0], lanes[1]), lanes[2]), lanes[3])
}

/// Frames `payload` as a versioned record under `key`.
pub fn encode_record(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(FORMAT_VERSION, key, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a record and returns its key and a borrow of its payload.
///
/// The version check runs before the checksum: a future format may change
/// the checksum recipe itself, so an old reader must classify new-version
/// records as [`RecordError::WrongVersion`], not as corruption.
pub fn decode_record(bytes: &[u8]) -> Result<(u64, &[u8]), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::TooShort);
    }
    if bytes[..4] != MAGIC {
        return Err(RecordError::BadMagic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("sized"));
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("sized"));
    let version = u32_at(4);
    if version != FORMAT_VERSION {
        return Err(RecordError::WrongVersion(version));
    }
    let key = u64_at(8);
    let len = u64_at(16);
    let stored_sum = u64_at(24);
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(RecordError::LengthMismatch);
    }
    if checksum(version, key, payload) != stored_sum {
        return Err(RecordError::BadChecksum);
    }
    Ok((key, payload))
}

/// Counter and occupancy snapshot for [`SnapshotStore::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records currently on disk.
    pub records: usize,
    /// Total record bytes currently on disk.
    pub bytes: u64,
    /// Loads that returned a valid payload.
    pub hits: u64,
    /// Loads that found no record.
    pub misses: u64,
    /// Records evicted by the byte budget.
    pub evictions: u64,
    /// Loads that found a record but rejected it (bad version, truncation,
    /// checksum, or key mismatch); the file is deleted.
    pub corrupt: u64,
    /// Records written (deduplicated saves not counted).
    pub writes: u64,
}

/// The on-disk snapshot store described in the module docs.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    byte_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    /// Serializes save + evict so two writers cannot double-evict.
    write_lock: Mutex<()>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store in `dir`, evicting past
    /// `byte_budget` total record bytes.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `dir` cannot be created.
    pub fn open(dir: impl Into<PathBuf>, byte_budget: u64) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore {
            dir,
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.snap"))
    }

    /// Whether a record for `key` is on disk (without validating it).
    pub fn contains(&self, key: u64) -> bool {
        self.path(key).exists()
    }

    /// Loads and validates the record for `key`. `None` means "no usable
    /// record" — absent, unreadable, or corrupt (corrupt files are deleted
    /// and counted, so the next save can replace them). A hit refreshes the
    /// record's modification time, keeping hot programs out of the LRU's
    /// reach.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.path(key);
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.bump(&self.misses, "serve.store.miss");
                return None;
            }
        };
        match decode_record(&bytes) {
            Ok((k, _)) if k == key => {
                self.bump(&self.hits, "serve.store.hit");
                touch(&path);
                // Shift the header off in place rather than copying the
                // (multi-megabyte) payload into a fresh allocation.
                bytes.drain(..HEADER_LEN);
                Some(bytes)
            }
            _ => {
                // Wrong key under this filename is corruption too: the
                // payload belongs to some other program.
                fs::remove_file(&path).ok();
                self.bump(&self.corrupt, "serve.store.corrupt");
                None
            }
        }
    }

    /// Persists `payload` under `key`, atomically. Content is immutable
    /// under its key, so an existing record makes this a no-op; returns
    /// whether a record was actually written. Eviction runs after a write.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the temp-file write or the rename; the
    /// store directory is left without a partial record either way.
    pub fn save(&self, key: u64, payload: &[u8]) -> io::Result<bool> {
        let _g = self.write_lock.lock().expect("store write lock");
        let path = self.path(key);
        if path.exists() {
            return Ok(false);
        }
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}-{}", std::process::id()));
        fs::write(&tmp, encode_record(key, payload))?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                fs::remove_file(&tmp).ok();
                return Err(e);
            }
        }
        self.bump(&self.writes, "serve.store.write");
        self.evict_over_budget(key);
        Ok(true)
    }

    /// Counter and occupancy snapshot (occupancy by directory scan).
    pub fn stats(&self) -> StoreStats {
        let mut records = 0usize;
        let mut bytes = 0u64;
        for (_, _, len) in self.scan() {
            records += 1;
            bytes += len;
        }
        StoreStats {
            records,
            bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, counter: &AtomicU64, name: &'static str) {
        let v = counter.fetch_add(1, Ordering::Relaxed) + 1;
        obs::record(|| obs::Event::Count { name, value: v });
    }

    /// Every record file: `(path, mtime, len)`. Temp files and strangers
    /// are ignored.
    fn scan(&self) -> Vec<(PathBuf, SystemTime, u64)> {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        rd.flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                let stem = name.strip_suffix(".snap")?;
                if stem.len() != 16 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((e.path(), mtime, meta.len()))
            })
            .collect()
    }

    /// Deletes oldest-modified records until the directory fits the
    /// budget; `keep` (the record just written) is never a victim, so one
    /// oversized snapshot still persists rather than thrashing.
    fn evict_over_budget(&self, keep: u64) {
        let keep_path = self.path(keep);
        let mut files = self.scan();
        let mut total: u64 = files.iter().map(|&(_, _, len)| len).sum();
        files.sort_by_key(|&(_, mtime, _)| mtime);
        for (path, _, len) in files {
            if total <= self.byte_budget {
                break;
            }
            if path == keep_path {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                self.bump(&self.evictions, "serve.store.evict");
            }
        }
    }
}

/// Best-effort mtime refresh; ignored on filesystems that refuse it (the
/// LRU then degrades toward FIFO, which is still bounded).
fn touch(path: &Path) {
    if let Ok(f) = fs::OpenOptions::new().write(true).open(path) {
        f.set_modified(SystemTime::now()).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "jumpslice-store-{tag}-{}-{:x}",
            std::process::id(),
            // Distinct per test invocation without a clock: address of a
            // fresh leak-free local is not portable, so use a counter.
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    #[test]
    fn record_round_trips() {
        for payload in [&b""[..], b"x", &[0u8; 1000][..]] {
            let rec = encode_record(0xDEAD_BEEF, payload);
            assert_eq!(decode_record(&rec), Ok((0xDEAD_BEEF, payload)));
        }
    }

    /// Pinned: a version-mismatched record is classified as WrongVersion
    /// even when its checksum is internally consistent — upgrades fall
    /// back cleanly instead of reporting corruption.
    #[test]
    fn version_mismatch_is_rejected_as_wrong_version() {
        let key = 7u64;
        let payload = b"future payload";
        let v2 = FORMAT_VERSION + 1;
        let mut rec = Vec::new();
        rec.extend_from_slice(&MAGIC);
        rec.extend_from_slice(&v2.to_le_bytes());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(&checksum(v2, key, payload).to_le_bytes());
        rec.extend_from_slice(payload);
        assert_eq!(decode_record(&rec), Err(RecordError::WrongVersion(v2)));
    }

    /// Pinned: truncation anywhere — header or payload — is an error,
    /// never a panic or a short read.
    #[test]
    fn truncation_at_every_length_is_rejected() {
        let rec = encode_record(42, b"some payload worth keeping");
        for cut in 0..rec.len() {
            let err = decode_record(&rec[..cut]).expect_err("truncated record must fail");
            assert!(
                matches!(
                    err,
                    RecordError::TooShort | RecordError::LengthMismatch | RecordError::BadChecksum
                ),
                "cut {cut}: {err}"
            );
        }
    }

    /// Pinned: any single flipped bit is caught by magic, version, length,
    /// or checksum validation.
    #[test]
    fn every_single_bit_flip_is_rejected() {
        let rec = encode_record(42, b"bit flips shall not pass");
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_record(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    /// A record renamed under another key (or a hash collision) fails the
    /// key comparison in `load` and is treated as corruption.
    #[test]
    fn key_mismatch_on_disk_is_corruption() {
        let dir = tmpdir("keymismatch");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(1, b"payload of key 1").unwrap();
        fs::rename(dir.join(format!("{:016x}.snap", 1)), store.path(2)).unwrap();
        assert_eq!(store.load(2), None);
        assert!(!store.contains(2), "corrupt record deleted");
        assert_eq!(store.stats().corrupt, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_hit_miss_and_dedup() {
        let dir = tmpdir("basic");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        assert_eq!(store.load(9), None, "empty store misses");
        assert!(store.save(9, b"nine").unwrap());
        assert!(!store.save(9, b"nine again").unwrap(), "dedup save");
        assert_eq!(store.load(9), Some(b"nine".to_vec()), "first save wins");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.records), (1, 1, 1, 1));
        assert!(s.bytes >= HEADER_LEN as u64);

        // A fresh store over the same directory — the restart — still
        // serves the record.
        let store2 = SnapshotStore::open(&dir, u64::MAX).unwrap();
        assert_eq!(store2.load(9), Some(b"nine".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bytes_on_disk_fall_back_and_delete() {
        let dir = tmpdir("corrupt");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(5, b"to be mangled").unwrap();
        let path = store.path(5);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(5), None, "corruption is a miss, not a panic");
        assert!(!path.exists(), "corrupt record deleted for re-save");
        assert_eq!(store.stats().corrupt, 1);
        assert!(store.save(5, b"to be mangled").unwrap(), "re-save works");
        assert_eq!(store.load(5), Some(b"to be mangled".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_removes_oldest_but_never_the_just_written() {
        let dir = tmpdir("evict");
        // Budget fits roughly one record.
        let store = SnapshotStore::open(&dir, (HEADER_LEN + 40) as u64).unwrap();
        store.save(1, &[1u8; 32]).unwrap();
        // Age record 1 explicitly — mtime granularity is too coarse to
        // rely on write order inside one test.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(store.path(1))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        store.save(2, &[2u8; 32]).unwrap();
        assert!(!store.contains(1), "oldest evicted");
        assert!(store.contains(2), "just-written survives its own eviction");
        assert_eq!(store.stats().evictions, 1);

        // An oversized single record also survives (nothing else to evict).
        let store2 = SnapshotStore::open(tmpdir("evict2"), 1).unwrap();
        store2.save(3, &[3u8; 64]).unwrap();
        assert!(store2.contains(3));
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(store2.dir()).ok();
    }

    #[test]
    fn load_refreshes_mtime_to_protect_hot_records() {
        let dir = tmpdir("touch");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(1, b"hot").unwrap();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(store.path(1))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        store.load(1).unwrap();
        let mtime = fs::metadata(store.path(1)).unwrap().modified().unwrap();
        assert!(mtime > SystemTime::UNIX_EPOCH, "hit refreshed the mtime");
        fs::remove_dir_all(&dir).ok();
    }
}
