//! The persistent snapshot store: content-addressed analysis payloads on
//! disk, so a restarted daemon serves its first slice warm.
//!
//! The store is deliberately dumb about *what* it holds — records are
//! opaque byte payloads keyed by a caller-supplied 64-bit content key (the
//! daemon uses the FNV-1a hash of the program source, the same key its
//! in-memory cache uses). What the store *is* opinionated about is
//! surviving the real world:
//!
//! * **Versioned, checksummed records.** Every file starts with a fixed
//!   header: magic, format version, the content key, the payload length,
//!   and a word-at-a-time FNV-style checksum over version + key + payload.
//!   A load validates
//!   all of it; any mismatch — wrong version after an upgrade, truncation
//!   from a torn write, bit rot, a file renamed under the wrong key — is a
//!   counted rejection ([`RecordError`]), never a panic and never a wrong
//!   payload.
//! * **Corruption is degradation, not failure.** A corrupt record is
//!   deleted and reported as a miss; the caller rebuilds from source and
//!   usually re-saves. The `serve.store.corrupt` counter makes the
//!   degradation observable.
//! * **Atomic writes.** Payloads land in a temp file in the same directory
//!   and are `rename`d into place, so a crash mid-write leaves either the
//!   old state or the new record, never a half-written one under a live
//!   name.
//! * **Byte-budget LRU.** The directory is bounded: after each write, the
//!   oldest records (by modification time — loads touch it) are evicted
//!   until the total fits the budget, keeping at least the record just
//!   written.
//!
//! Concurrency: one store value may be shared across threads (`&self`
//! everywhere, counters atomic, writes serialized by an internal lock).
//! Multiple *processes* sharing a directory are safe against torn reads by
//! the checksum, though their evictions may race benignly.
//!
//! All filesystem traffic goes through the narrow [`StoreIo`] trait.
//! Production code uses [`RealIo`] (thin `std::fs` passthroughs); fault
//! injection (the `jumpslice-chaos` crate, and this crate's own property
//! tests) substitutes an implementation that fails, tears, or corrupts
//! specific calls on a deterministic schedule. The store's recovery
//! obligations — corruption is a counted miss, a failed write leaves no
//! partial record, eviction never exceeds what the budget demands — are
//! stated against that trait, not against a well-behaved kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumpslice_obs as obs;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Metadata for one file as listed by [`StoreIo::list`]: enough for the
/// store's LRU (mtime order) and byte accounting (lengths), nothing more.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Full path of the entry.
    pub path: PathBuf,
    /// Last-modification time (drives LRU eviction order).
    pub mtime: SystemTime,
    /// File length in bytes.
    pub len: u64,
}

/// The complete filesystem surface the snapshot store drives, abstracted
/// so tests can make any call fail, tear, or lie deterministically.
///
/// Implementations must be shareable across threads (`&self` methods,
/// `Send + Sync`); the store serializes writes itself, so `write`,
/// `rename`, and `remove_file` are never raced *by one store value*,
/// but `read`/`exists`/`list` may run concurrently with them.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error (absent file included).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `bytes` to `path`, creating or truncating it.
    ///
    /// # Errors
    /// Propagates the underlying I/O error. On error the file may hold a
    /// prefix of `bytes` (a torn write) — callers must clean up.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory in store usage).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists at `path` (best-effort, no error channel).
    fn exists(&self, path: &Path) -> bool;
    /// Lists every plain file directly inside `dir` with its metadata.
    ///
    /// # Errors
    /// Propagates the directory-read error; per-entry metadata failures
    /// drop the entry instead.
    fn list(&self, dir: &Path) -> io::Result<Vec<FileMeta>>;
    /// Sets the modification time of `path` (the LRU "touch").
    ///
    /// # Errors
    /// Propagates the underlying I/O error; the store treats failure as
    /// benign (LRU degrades toward FIFO).
    fn set_modified(&self, path: &Path, mtime: SystemTime) -> io::Result<()>;
}

/// The production [`StoreIo`]: direct `std::fs` passthroughs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<FileMeta>> {
        let rd = fs::read_dir(dir)?;
        Ok(rd
            .flatten()
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                if !meta.is_file() {
                    return None;
                }
                Some(FileMeta {
                    path: e.path(),
                    mtime: meta.modified().ok()?,
                    len: meta.len(),
                })
            })
            .collect())
    }
    fn set_modified(&self, path: &Path, mtime: SystemTime) -> io::Result<()> {
        fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_modified(mtime)
    }
}

/// The record format version this build reads and writes. Bump on any
/// payload- or header-layout change: old records then fail the version
/// check and fall back to a from-source rebuild instead of misdecoding.
pub const FORMAT_VERSION: u32 = 1;

/// Record files start with these four bytes.
pub const MAGIC: [u8; 4] = *b"JSST";

/// Fixed header size: magic + version + key + payload length + checksum.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit over raw bytes — the content-key hash (the daemon keys
/// programs by `fnv1a(source)`). The whole-record checksum uses the faster
/// word-at-a-time variant below instead.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Why a record failed to decode. Every variant maps to "ignore this file
/// and rebuild from source"; the variants exist so tests can pin that each
/// failure mode is detected for the right reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Shorter than the fixed header.
    TooShort,
    /// The first four bytes are not [`MAGIC`] — not a record at all.
    BadMagic,
    /// A record from a different format generation; carries the version
    /// found on disk.
    WrongVersion(u32),
    /// The header's payload length disagrees with the bytes present.
    LengthMismatch,
    /// The whole-record checksum does not match — bit corruption somewhere
    /// in version, key, or payload.
    BadChecksum,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::TooShort => f.write_str("record shorter than its header"),
            RecordError::BadMagic => f.write_str("bad magic"),
            RecordError::WrongVersion(v) => write!(f, "unsupported format version {v}"),
            RecordError::LengthMismatch => f.write_str("payload length mismatch"),
            RecordError::BadChecksum => f.write_str("checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

/// The whole-record checksum: everything after the magic that the reader
/// acts on, mixed with the FNV-1a step applied a 64-bit word at a time
/// (byte-at-a-time FNV costs milliseconds on multi-megabyte snapshots,
/// which would dominate the very restore latency the store exists to
/// save). The payload words feed four independent lanes, round-robin:
/// a single chain's throughput is bound by the multiply's latency, while
/// four interleaved chains keep the multiplier busy every cycle.
///
/// Corruption coverage: each lane's `xor`-then-multiply step is bijective
/// in the running hash, so any single corrupted word — hence any single
/// flipped bit — changes exactly one lane's final value; the combining
/// fold is bijective in every lane, so the change reaches the sum.
/// Seeding lane 0 with the payload length keeps distinct-length payloads
/// with a shared prefix from colliding.
fn checksum(version: u32, key: u64, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mix = |h: u64, w: u64| (h ^ w).wrapping_mul(PRIME);
    let mut lanes = [
        mix(OFFSET, payload.len() as u64),
        mix(OFFSET, u64::from(version)),
        mix(OFFSET, key),
        OFFSET,
    ];
    let mut blocks = payload.chunks_exact(32);
    for b in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().expect("sized"));
            *lane = mix(*lane, w);
        }
    }
    let mut i = 0;
    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        lanes[i] = mix(
            lanes[i],
            u64::from_le_bytes(w.try_into().expect("chunks_exact(8)")),
        );
        i += 1;
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        lanes[i] = mix(lanes[i], u64::from_le_bytes(tail));
    }
    mix(mix(mix(lanes[0], lanes[1]), lanes[2]), lanes[3])
}

/// Frames `payload` as a versioned record under `key`.
pub fn encode_record(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(FORMAT_VERSION, key, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a record and returns its key and a borrow of its payload.
///
/// The version check runs before the checksum: a future format may change
/// the checksum recipe itself, so an old reader must classify new-version
/// records as [`RecordError::WrongVersion`], not as corruption.
pub fn decode_record(bytes: &[u8]) -> Result<(u64, &[u8]), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::TooShort);
    }
    if bytes[..4] != MAGIC {
        return Err(RecordError::BadMagic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("sized"));
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("sized"));
    let version = u32_at(4);
    if version != FORMAT_VERSION {
        return Err(RecordError::WrongVersion(version));
    }
    let key = u64_at(8);
    let len = u64_at(16);
    let stored_sum = u64_at(24);
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(RecordError::LengthMismatch);
    }
    if checksum(version, key, payload) != stored_sum {
        return Err(RecordError::BadChecksum);
    }
    Ok((key, payload))
}

/// Counter and occupancy snapshot for [`SnapshotStore::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records currently on disk.
    pub records: usize,
    /// Total record bytes currently on disk.
    pub bytes: u64,
    /// Loads that returned a valid payload.
    pub hits: u64,
    /// Loads that found no record.
    pub misses: u64,
    /// Records evicted by the byte budget.
    pub evictions: u64,
    /// Loads that found a record but rejected it (bad version, truncation,
    /// checksum, or key mismatch); the file is deleted.
    pub corrupt: u64,
    /// Records written (deduplicated saves not counted).
    pub writes: u64,
}

/// The on-disk snapshot store described in the module docs.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    byte_budget: u64,
    io: Arc<dyn StoreIo>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    /// Serializes save + evict so two writers cannot double-evict.
    write_lock: Mutex<()>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store in `dir`, evicting past
    /// `byte_budget` total record bytes, over the real filesystem.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `dir` cannot be created.
    pub fn open(dir: impl Into<PathBuf>, byte_budget: u64) -> io::Result<SnapshotStore> {
        SnapshotStore::open_with_io(dir, byte_budget, Arc::new(RealIo))
    }

    /// Opens a store whose every filesystem call goes through `io` — the
    /// fault-injection seam. Leftover temp files from a previous crashed
    /// (or fault-interrupted) writer are swept on open, so torn writes
    /// never accumulate as untracked disk usage.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `dir` cannot be created.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        byte_budget: u64,
        io: Arc<dyn StoreIo>,
    ) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let store = SnapshotStore {
            dir,
            byte_budget,
            io,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        };
        store.sweep_tmp();
        Ok(store)
    }

    /// Best-effort removal of stale `.tmp-*` files (crashed writers, torn
    /// writes whose cleanup itself failed). Listing failures are ignored:
    /// the sweep is an optimization, not a correctness requirement.
    fn sweep_tmp(&self) {
        let Ok(entries) = self.io.list(&self.dir) else {
            return;
        };
        for f in entries {
            let is_tmp = f
                .path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"));
            if is_tmp {
                self.io.remove_file(&f.path).ok();
            }
        }
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.snap"))
    }

    /// Whether a record for `key` is on disk (without validating it).
    pub fn contains(&self, key: u64) -> bool {
        self.io.exists(&self.path(key))
    }

    /// Loads and validates the record for `key`. `None` means "no usable
    /// record" — absent, unreadable, or corrupt (corrupt files are deleted
    /// and counted, so the next save can replace them). A hit refreshes the
    /// record's modification time, keeping hot programs out of the LRU's
    /// reach.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.path(key);
        let mut bytes = match self.io.read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.bump(&self.misses, "serve.store.miss");
                return None;
            }
        };
        match decode_record(&bytes) {
            Ok((k, _)) if k == key => {
                self.bump(&self.hits, "serve.store.hit");
                self.io.set_modified(&path, SystemTime::now()).ok();
                // Shift the header off in place rather than copying the
                // (multi-megabyte) payload into a fresh allocation.
                bytes.drain(..HEADER_LEN);
                Some(bytes)
            }
            _ => {
                // Wrong key under this filename is corruption too: the
                // payload belongs to some other program.
                self.io.remove_file(&path).ok();
                self.bump(&self.corrupt, "serve.store.corrupt");
                None
            }
        }
    }

    /// Persists `payload` under `key`, atomically. Content is immutable
    /// under its key, so an existing record makes this a no-op; returns
    /// whether a record was actually written. Eviction runs after a write.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the temp-file write or the rename; the
    /// store directory is left without a partial record either way.
    pub fn save(&self, key: u64, payload: &[u8]) -> io::Result<bool> {
        let _g = self.write_lock.lock().expect("store write lock");
        let path = self.path(key);
        if self.io.exists(&path) {
            return Ok(false);
        }
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}-{}", std::process::id()));
        if let Err(e) = self.io.write(&tmp, &encode_record(key, payload)) {
            // A failed write (ENOSPC mid-stream, EIO) can leave a torn
            // prefix behind under the temp name; remove it so the failure
            // costs nothing but the error. Surfaced by fault injection:
            // the original code propagated the error and leaked the file.
            self.io.remove_file(&tmp).ok();
            return Err(e);
        }
        match self.io.rename(&tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                self.io.remove_file(&tmp).ok();
                return Err(e);
            }
        }
        self.bump(&self.writes, "serve.store.write");
        self.evict_over_budget(key);
        Ok(true)
    }

    /// Counter and occupancy snapshot (occupancy by directory scan).
    pub fn stats(&self) -> StoreStats {
        let mut records = 0usize;
        let mut bytes = 0u64;
        for (_, _, len) in self.scan() {
            records += 1;
            bytes += len;
        }
        StoreStats {
            records,
            bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, counter: &AtomicU64, name: &'static str) {
        let v = counter.fetch_add(1, Ordering::Relaxed) + 1;
        obs::record(|| obs::Event::Count { name, value: v });
    }

    /// Every record file: `(path, mtime, len)`. Temp files and strangers
    /// are ignored.
    fn scan(&self) -> Vec<(PathBuf, SystemTime, u64)> {
        let Ok(entries) = self.io.list(&self.dir) else {
            return Vec::new();
        };
        entries
            .into_iter()
            .filter_map(|f| {
                let name = f.path.file_name()?.to_str()?;
                let stem = name.strip_suffix(".snap")?;
                if stem.len() != 16 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return None;
                }
                Some((f.path, f.mtime, f.len))
            })
            .collect()
    }

    /// Deletes oldest-modified records until the directory fits the
    /// budget; `keep` (the record just written) is never a victim, so one
    /// oversized snapshot still persists rather than thrashing.
    fn evict_over_budget(&self, keep: u64) {
        let keep_path = self.path(keep);
        let mut files = self.scan();
        let mut total: u64 = files.iter().map(|&(_, _, len)| len).sum();
        files.sort_by_key(|&(_, mtime, _)| mtime);
        for (path, _, len) in files {
            if total <= self.byte_budget {
                break;
            }
            if path == keep_path {
                continue;
            }
            if self.io.remove_file(&path).is_ok() {
                total -= len;
                self.bump(&self.evictions, "serve.store.evict");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "jumpslice-store-{tag}-{}-{:x}",
            std::process::id(),
            // Distinct per test invocation without a clock: address of a
            // fresh leak-free local is not portable, so use a counter.
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    #[test]
    fn record_round_trips() {
        for payload in [&b""[..], b"x", &[0u8; 1000][..]] {
            let rec = encode_record(0xDEAD_BEEF, payload);
            assert_eq!(decode_record(&rec), Ok((0xDEAD_BEEF, payload)));
        }
    }

    /// Pinned: a version-mismatched record is classified as WrongVersion
    /// even when its checksum is internally consistent — upgrades fall
    /// back cleanly instead of reporting corruption.
    #[test]
    fn version_mismatch_is_rejected_as_wrong_version() {
        let key = 7u64;
        let payload = b"future payload";
        let v2 = FORMAT_VERSION + 1;
        let mut rec = Vec::new();
        rec.extend_from_slice(&MAGIC);
        rec.extend_from_slice(&v2.to_le_bytes());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(&checksum(v2, key, payload).to_le_bytes());
        rec.extend_from_slice(payload);
        assert_eq!(decode_record(&rec), Err(RecordError::WrongVersion(v2)));
    }

    /// Pinned: truncation anywhere — header or payload — is an error,
    /// never a panic or a short read.
    #[test]
    fn truncation_at_every_length_is_rejected() {
        let rec = encode_record(42, b"some payload worth keeping");
        for cut in 0..rec.len() {
            let err = decode_record(&rec[..cut]).expect_err("truncated record must fail");
            assert!(
                matches!(
                    err,
                    RecordError::TooShort | RecordError::LengthMismatch | RecordError::BadChecksum
                ),
                "cut {cut}: {err}"
            );
        }
    }

    /// Pinned: any single flipped bit is caught by magic, version, length,
    /// or checksum validation.
    #[test]
    fn every_single_bit_flip_is_rejected() {
        let rec = encode_record(42, b"bit flips shall not pass");
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_record(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    /// A record renamed under another key (or a hash collision) fails the
    /// key comparison in `load` and is treated as corruption.
    #[test]
    fn key_mismatch_on_disk_is_corruption() {
        let dir = tmpdir("keymismatch");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(1, b"payload of key 1").unwrap();
        fs::rename(dir.join(format!("{:016x}.snap", 1)), store.path(2)).unwrap();
        assert_eq!(store.load(2), None);
        assert!(!store.contains(2), "corrupt record deleted");
        assert_eq!(store.stats().corrupt, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_hit_miss_and_dedup() {
        let dir = tmpdir("basic");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        assert_eq!(store.load(9), None, "empty store misses");
        assert!(store.save(9, b"nine").unwrap());
        assert!(!store.save(9, b"nine again").unwrap(), "dedup save");
        assert_eq!(store.load(9), Some(b"nine".to_vec()), "first save wins");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.records), (1, 1, 1, 1));
        assert!(s.bytes >= HEADER_LEN as u64);

        // A fresh store over the same directory — the restart — still
        // serves the record.
        let store2 = SnapshotStore::open(&dir, u64::MAX).unwrap();
        assert_eq!(store2.load(9), Some(b"nine".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bytes_on_disk_fall_back_and_delete() {
        let dir = tmpdir("corrupt");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(5, b"to be mangled").unwrap();
        let path = store.path(5);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(5), None, "corruption is a miss, not a panic");
        assert!(!path.exists(), "corrupt record deleted for re-save");
        assert_eq!(store.stats().corrupt, 1);
        assert!(store.save(5, b"to be mangled").unwrap(), "re-save works");
        assert_eq!(store.load(5), Some(b"to be mangled".to_vec()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_removes_oldest_but_never_the_just_written() {
        let dir = tmpdir("evict");
        // Budget fits roughly one record.
        let store = SnapshotStore::open(&dir, (HEADER_LEN + 40) as u64).unwrap();
        store.save(1, &[1u8; 32]).unwrap();
        // Age record 1 explicitly — mtime granularity is too coarse to
        // rely on write order inside one test.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(store.path(1))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        store.save(2, &[2u8; 32]).unwrap();
        assert!(!store.contains(1), "oldest evicted");
        assert!(store.contains(2), "just-written survives its own eviction");
        assert_eq!(store.stats().evictions, 1);

        // An oversized single record also survives (nothing else to evict).
        let store2 = SnapshotStore::open(tmpdir("evict2"), 1).unwrap();
        store2.save(3, &[3u8; 64]).unwrap();
        assert!(store2.contains(3));
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(store2.dir()).ok();
    }

    /// A [`StoreIo`] that wraps [`RealIo`] and, while armed, makes a
    /// seeded fraction of calls fail: reads error or return one flipped
    /// bit, writes tear (persist a prefix, then report `ENOSPC`) or fail
    /// outright, renames and removals error. Disarming restores perfect
    /// passthrough so end-of-run invariants can be checked against the
    /// real directory contents.
    #[derive(Debug)]
    struct FlakyIo {
        rng: Mutex<jumpslice_testkit::Rng>,
        armed: std::sync::atomic::AtomicBool,
    }

    impl FlakyIo {
        fn new(seed: u64) -> FlakyIo {
            FlakyIo {
                rng: Mutex::new(jumpslice_testkit::Rng::seed_from_u64(seed)),
                armed: std::sync::atomic::AtomicBool::new(true),
            }
        }

        fn disarm(&self) {
            self.armed.store(false, Ordering::Relaxed);
        }

        /// Draws a fault for the next call: 0 = behave, otherwise a
        /// mode number interpreted by the caller.
        fn roll(&self, modes: u32) -> u32 {
            if !self.armed.load(Ordering::Relaxed) {
                return 0;
            }
            let mut rng = self.rng.lock().expect("flaky rng");
            if rng.gen_bool(0.3) {
                rng.gen_range(1..modes + 1)
            } else {
                0
            }
        }

        fn err(kind: io::ErrorKind) -> io::Error {
            io::Error::new(kind, "injected fault")
        }
    }

    impl StoreIo for FlakyIo {
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            RealIo.create_dir_all(dir)
        }
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            match self.roll(2) {
                1 => Err(FlakyIo::err(io::ErrorKind::Other)),
                2 => {
                    let mut bytes = RealIo.read(path)?;
                    if !bytes.is_empty() {
                        let at = {
                            let mut rng = self.rng.lock().expect("flaky rng");
                            rng.gen_range(0..bytes.len())
                        };
                        bytes[at] ^= 0x10;
                    }
                    Ok(bytes)
                }
                _ => RealIo.read(path),
            }
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            match self.roll(2) {
                1 => Err(FlakyIo::err(io::ErrorKind::StorageFull)),
                2 => {
                    // Torn write: a prefix lands, then the device fills.
                    let cut = {
                        let mut rng = self.rng.lock().expect("flaky rng");
                        rng.gen_range(0..bytes.len().max(1))
                    };
                    RealIo.write(path, &bytes[..cut.min(bytes.len())])?;
                    Err(FlakyIo::err(io::ErrorKind::StorageFull))
                }
                _ => RealIo.write(path, bytes),
            }
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            match self.roll(1) {
                1 => Err(FlakyIo::err(io::ErrorKind::Other)),
                _ => RealIo.rename(from, to),
            }
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            match self.roll(1) {
                1 => Err(FlakyIo::err(io::ErrorKind::Other)),
                _ => RealIo.remove_file(path),
            }
        }
        fn exists(&self, path: &Path) -> bool {
            RealIo.exists(path)
        }
        fn list(&self, dir: &Path) -> io::Result<Vec<FileMeta>> {
            RealIo.list(dir)
        }
        fn set_modified(&self, path: &Path, mtime: SystemTime) -> io::Result<()> {
            match self.roll(1) {
                1 => Err(FlakyIo::err(io::ErrorKind::Other)),
                _ => RealIo.set_modified(path, mtime),
            }
        }
    }

    fn prop_payload(key: u64) -> Vec<u8> {
        let mut p = key.to_le_bytes().to_vec();
        p.resize(16 + (key % 48) as usize, key as u8);
        p
    }

    /// Real on-disk `.snap` bytes and whether any `.tmp-` residue exists,
    /// observed through the raw filesystem (not through the store's IO).
    fn disk_state(dir: &Path) -> (u64, usize, bool) {
        let mut bytes = 0u64;
        let mut records = 0usize;
        let mut tmp = false;
        if let Ok(rd) = fs::read_dir(dir) {
            for e in rd.flatten() {
                let name = e.file_name();
                let name = name.to_str().unwrap_or("");
                if name.starts_with(".tmp-") {
                    tmp = true;
                } else if name.ends_with(".snap") {
                    records += 1;
                    bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        (bytes, records, tmp)
    }

    /// Property (ISSUE 9 satellite): under *any* injected IO fault
    /// sequence — torn writes, read errors, bit-flipped reads, failed
    /// renames/removals — the store never serves bytes that differ from
    /// what was saved under the key, never leaks a temp file past a save
    /// call, keeps its occupancy accounting equal to the files actually
    /// on disk, and never evicts the record it just wrote.
    #[test]
    fn any_fault_sequence_preserves_integrity_accounting_and_the_kept_record() {
        jumpslice_testkit::check(24, |outer| {
            let seed = outer.next_u64();
            let dir = tmpdir("fault");
            let io = Arc::new(FlakyIo::new(seed));
            let budget = (3 * (HEADER_LEN + 64)) as u64;
            let store = SnapshotStore::open_with_io(&dir, budget, io.clone())
                .expect("open_with_io survives (create_dir_all not faulted)");
            let mut ops = jumpslice_testkit::Rng::seed_from_u64(seed ^ 0x9e37_79b9);
            for _ in 0..60 {
                let key = ops.gen_range(1u64..8);
                match ops.gen_range(0..3u32) {
                    0 => {
                        if store.save(key, &prop_payload(key)).unwrap_or(false) {
                            assert!(
                                store.contains(key),
                                "seed {seed}: successful save not on disk"
                            );
                        }
                    }
                    1 => {
                        if let Some(got) = store.load(key) {
                            assert_eq!(
                                got,
                                prop_payload(key),
                                "seed {seed}: load served bytes that were never saved under {key}"
                            );
                        }
                    }
                    _ => {
                        // The eviction keep-guard must hold even when the
                        // faults starve every other removal.
                        let fresh = 100 + ops.gen_range(0u64..4);
                        if store.save(fresh, &prop_payload(fresh)).unwrap_or(false) {
                            assert!(
                                store.contains(fresh),
                                "seed {seed}: just-written record {fresh} was evicted"
                            );
                        }
                    }
                }
            }
            // With faults off, the next write re-runs eviction over real
            // IO: accounting must reconverge with the actual directory.
            io.disarm();
            store.save(999, &prop_payload(999)).expect("clean save");
            let (bytes, records, _) = disk_state(&dir);
            let s = store.stats();
            assert_eq!(
                (s.bytes, s.records),
                (bytes, records),
                "seed {seed}: stats diverged from disk"
            );
            assert!(
                bytes <= budget || records == 1,
                "seed {seed}: {bytes} bytes across {records} records exceeds budget {budget}"
            );
            // A reopen sweeps any temp file a torn write stranded (the
            // in-line cleanup is best-effort: the same fault burst that
            // tore the write may have failed the removal too).
            let store2 = SnapshotStore::open_with_io(&dir, budget, io.clone()).expect("reopen");
            let (_, _, tmp) = disk_state(&dir);
            assert!(!tmp, "seed {seed}: temp residue survived the reopen sweep");
            assert_eq!(store2.load(999), Some(prop_payload(999)));
            fs::remove_dir_all(&dir).ok();
        });
    }

    #[test]
    fn load_refreshes_mtime_to_protect_hot_records() {
        let dir = tmpdir("touch");
        let store = SnapshotStore::open(&dir, u64::MAX).unwrap();
        store.save(1, b"hot").unwrap();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(store.path(1))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        store.load(1).unwrap();
        let mtime = fs::metadata(store.path(1)).unwrap().modified().unwrap();
        assert!(mtime > SystemTime::UNIX_EPOCH, "hit refreshed the mtime");
        fs::remove_dir_all(&dir).ok();
    }
}
