//! Whole-pipeline round-trip: generated program → warm analysis →
//! snapshot payload → store record → bytes → record → payload → restored
//! analysis, asserting byte equality at the record layer and slice
//! equality — for all eight slicers — at the analysis layer, with zero
//! artifact rebuilds in between.

use jumpslice_core::baselines::{ball_horwitz_slice, gallagher_slice, jzr_slice, lyle_slice};
use jumpslice_core::{
    agrawal_slice, conservative_slice, conventional_slice, decode_snapshot, encode_snapshot,
    structured_slice, Analysis, AnalysisStats, Criterion, Slice,
};
use jumpslice_lang::{parse, print_program};
use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};
use jumpslice_store::{decode_record, encode_record, fnv1a};

type Slicer = (&'static str, fn(&Analysis<'_>, &Criterion) -> Slice);

const SLICERS: &[Slicer] = &[
    ("fig7", agrawal_slice),
    ("conventional", conventional_slice),
    ("fig12", structured_slice),
    ("fig13", conservative_slice),
    ("ball_horwitz", ball_horwitz_slice),
    ("lyle", lyle_slice),
    ("gallagher", gallagher_slice),
    ("jzr", jzr_slice),
];

fn check_roundtrip(src: &str) {
    let prog = parse(src).expect("printed programs re-parse");
    let fresh = Analysis::new(&prog);
    fresh.warm();

    // Through the codec and the record framing, as the store would.
    let payload = {
        let snap_prog = parse(src).unwrap();
        let a = Analysis::new(&snap_prog);
        a.warm();
        encode_snapshot(src, &snap_prog, &a.into_seed())
    };
    let key = fnv1a(src.as_bytes());
    let record = encode_record(key, &payload);
    let (k, decoded_payload) = decode_record(&record).expect("fresh record decodes");
    assert_eq!(k, key);
    assert_eq!(decoded_payload, payload, "record framing is lossless");

    let snap = decode_snapshot(decoded_payload).expect("payload decodes");
    assert_eq!(snap.source, src, "embedded source survives verbatim");
    let restored = Analysis::with_seed(&snap.prog, snap.seed);
    restored.warm();
    assert_eq!(
        restored.stats(),
        AnalysisStats::default(),
        "restore must not recompute any artifact"
    );

    // Slice at every fourth statement to keep runtime sane while still
    // hitting jumps, guards, and plain assignments.
    for line in (1..=prog.len()).step_by(4) {
        let crit = Criterion::at_stmt(prog.at_line(line));
        let rcrit = Criterion::at_stmt(snap.prog.at_line(line));
        for (name, slicer) in SLICERS {
            assert_eq!(
                slicer(&restored, &rcrit),
                slicer(&fresh, &crit),
                "{name} slice diverged after restore (line {line})"
            );
        }
    }
}

#[test]
fn snapshots_round_trip_on_structured_corpora() {
    for seed in 0..4 {
        let src = print_program(&gen_structured(&GenConfig::sized(seed, 60)));
        check_roundtrip(&src);
    }
}

#[test]
fn snapshots_round_trip_on_unstructured_corpora() {
    for seed in 0..4 {
        let src = print_program(&gen_unstructured(&GenConfig::sized(seed, 50)));
        check_roundtrip(&src);
    }
}

#[test]
fn snapshots_round_trip_on_jump_dense_corpora() {
    for seed in 0..2 {
        let src = print_program(&gen_unstructured(
            &GenConfig::sized(seed, 80).with_jump_density(0.5),
        ));
        check_roundtrip(&src);
    }
}
