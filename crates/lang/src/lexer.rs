//! Hand-rolled lexer for the mini-C language.

use crate::error::{Error, ErrorKind};
use std::fmt;

/// A half-open source region, tracked as 1-based line/column of its start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The lexical categories of the language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (variable, function, or label name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keywords.
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `switch`
    KwSwitch,
    /// `case`
    KwCase,
    /// `default`
    KwDefault,
    /// `goto`
    KwGoto,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `return`
    KwReturn,
    /// `read`
    KwRead,
    /// `write`
    KwWrite,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::KwIf => write!(f, "`if`"),
            TokenKind::KwElse => write!(f, "`else`"),
            TokenKind::KwWhile => write!(f, "`while`"),
            TokenKind::KwDo => write!(f, "`do`"),
            TokenKind::KwSwitch => write!(f, "`switch`"),
            TokenKind::KwCase => write!(f, "`case`"),
            TokenKind::KwDefault => write!(f, "`default`"),
            TokenKind::KwGoto => write!(f, "`goto`"),
            TokenKind::KwBreak => write!(f, "`break`"),
            TokenKind::KwContinue => write!(f, "`continue`"),
            TokenKind::KwReturn => write!(f, "`return`"),
            TokenKind::KwRead => write!(f, "`read`"),
            TokenKind::KwWrite => write!(f, "`write`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token category and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

/// Streaming lexer over source text.
///
/// Supports `// line` and `/* block */` comments.
///
/// # Examples
///
/// ```
/// use jumpslice_lang::{Lexer, TokenKind};
/// let tokens = Lexer::new("x = 1; // init").tokenize()?;
/// assert_eq!(tokens.len(), 5); // x, =, 1, ;, EOF
/// assert_eq!(tokens[1].kind, TokenKind::Assign);
/// # Ok::<(), jumpslice_lang::Error>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'src> {
    chars: std::iter::Peekable<std::str::Chars<'src>>,
    line: u32,
    col: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Maybe a comment: look one further by cloning cheaply.
                    let mut probe = self.chars.clone();
                    probe.next();
                    match probe.peek() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            self.bump();
                            self.bump();
                            let mut prev = '\0';
                            loop {
                                match self.bump() {
                                    Some('/') if prev == '*' => break,
                                    Some(c) => prev = c,
                                    None => return Ok(()), // unterminated: treat as EOF
                                }
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token.
    ///
    /// # Errors
    ///
    /// Returns an error on characters outside the language or on integer
    /// literals that overflow `i64`.
    pub fn next_token(&mut self) -> Result<Token, Error> {
        self.skip_trivia()?;
        let span = Span {
            line: self.line,
            col: self.col,
        };
        let tok = |kind| Ok(Token { kind, span });
        let c = match self.bump() {
            None => return tok(TokenKind::Eof),
            Some(c) => c,
        };
        match c {
            '(' => tok(TokenKind::LParen),
            ')' => tok(TokenKind::RParen),
            '{' => tok(TokenKind::LBrace),
            '}' => tok(TokenKind::RBrace),
            ';' => tok(TokenKind::Semi),
            ':' => tok(TokenKind::Colon),
            ',' => tok(TokenKind::Comma),
            '+' => tok(TokenKind::Plus),
            '-' => tok(TokenKind::Minus),
            '*' => tok(TokenKind::Star),
            '/' => tok(TokenKind::Slash),
            '%' => tok(TokenKind::Percent),
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    tok(TokenKind::EqEq)
                } else {
                    tok(TokenKind::Assign)
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    tok(TokenKind::NotEq)
                } else {
                    tok(TokenKind::Bang)
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    tok(TokenKind::Le)
                } else {
                    tok(TokenKind::Lt)
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    tok(TokenKind::Ge)
                } else {
                    tok(TokenKind::Gt)
                }
            }
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    tok(TokenKind::AndAnd)
                } else {
                    Err(Error::new(
                        ErrorKind::UnexpectedChar('&'),
                        span.line,
                        span.col,
                    ))
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    tok(TokenKind::OrOr)
                } else {
                    Err(Error::new(
                        ErrorKind::UnexpectedChar('|'),
                        span.line,
                        span.col,
                    ))
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                text.push(c);
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match text.parse::<i64>() {
                    Ok(n) => tok(TokenKind::Int(n)),
                    Err(_) => Err(Error::new(
                        ErrorKind::IntOverflow(text),
                        span.line,
                        span.col,
                    )),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                text.push(c);
                while let Some(d) = self.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        text.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let kind = match text.as_str() {
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "do" => TokenKind::KwDo,
                    "switch" => TokenKind::KwSwitch,
                    "case" => TokenKind::KwCase,
                    "default" => TokenKind::KwDefault,
                    "goto" => TokenKind::KwGoto,
                    "break" => TokenKind::KwBreak,
                    "continue" => TokenKind::KwContinue,
                    "return" => TokenKind::KwReturn,
                    "read" => TokenKind::KwRead,
                    "write" => TokenKind::KwWrite,
                    _ => TokenKind::Ident(text),
                };
                tok(kind)
            }
            other => Err(Error::new(
                ErrorKind::UnexpectedChar(other),
                span.line,
                span.col,
            )),
        }
    }

    /// Tokenizes the entire input (including the final [`TokenKind::Eof`]).
    ///
    /// # Errors
    ///
    /// Propagates the first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, Error> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ks = kinds("if ifx goto L3 eof");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwIf,
                TokenKind::Ident("ifx".into()),
                TokenKind::KwGoto,
                TokenKind::Ident("L3".into()),
                TokenKind::Ident("eof".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let ks = kinds("== != <= >= && || < > = !");
        assert_eq!(
            ks,
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Bang,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("x // all of this vanishes\n = /* and this */ 1 ;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = Lexer::new("x\n  y").tokenize().unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn int_overflow_is_reported() {
        let err = Lexer::new("99999999999999999999").tokenize().unwrap_err();
        assert!(matches!(err.kind, ErrorKind::IntOverflow(_)));
    }

    #[test]
    fn unexpected_char_is_reported() {
        let err = Lexer::new("x = @;").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('@'));
        assert_eq!(err.col, 5);
    }

    #[test]
    fn lone_ampersand_rejected() {
        let err = Lexer::new("x & y").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('&'));
    }

    #[test]
    fn slash_not_comment_is_division() {
        let ks = kinds("x / y");
        assert_eq!(ks[1], TokenKind::Slash);
    }
}
