//! Lexical-structure queries over a [`Program`].
//!
//! Computed once and shared by the CFG builder, the lexical-successor-tree
//! construction, and the baseline slicers: parent links, next-statement-in-
//! block links, enclosing loop/breakable constructs, and the lexical
//! (preorder) numbering.

use crate::ast::*;

/// Precomputed structural facts about every statement of a [`Program`].
///
/// # Examples
///
/// ```
/// use jumpslice_lang::{parse, Structure};
/// let p = parse("while (c) { x = 1; break; }")?;
/// let s = Structure::of(&p);
/// let brk = p.at_line(3);
/// assert_eq!(s.enclosing_breakable(brk), Some(p.at_line(1)));
/// # Ok::<(), jumpslice_lang::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Structure {
    parent: Vec<Option<StmtId>>,
    next_in_block: Vec<Option<StmtId>>,
    enclosing_loop: Vec<Option<StmtId>>,
    enclosing_breakable: Vec<Option<StmtId>>,
    lexical: Vec<StmtId>,
    lexical_pos: Vec<usize>,
}

impl Structure {
    /// Computes the structure of `prog`.
    pub fn of(prog: &Program) -> Structure {
        let n = prog.len();
        let mut s = Structure {
            parent: vec![None; n],
            next_in_block: vec![None; n],
            enclosing_loop: vec![None; n],
            enclosing_breakable: vec![None; n],
            lexical: prog.lexical_order(),
            lexical_pos: vec![usize::MAX; n],
        };
        for (i, &id) in s.lexical.iter().enumerate() {
            s.lexical_pos[id.index()] = i;
        }
        s.walk_block(prog, prog.body(), None, None, None);
        s
    }

    fn walk_block(
        &mut self,
        prog: &Program,
        block: &[StmtId],
        parent: Option<StmtId>,
        enclosing_loop: Option<StmtId>,
        enclosing_breakable: Option<StmtId>,
    ) {
        for (i, &id) in block.iter().enumerate() {
            self.parent[id.index()] = parent;
            self.next_in_block[id.index()] = block.get(i + 1).copied();
            self.enclosing_loop[id.index()] = enclosing_loop;
            self.enclosing_breakable[id.index()] = enclosing_breakable;
            match &prog.stmt(id).kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.walk_block(
                        prog,
                        then_branch,
                        Some(id),
                        enclosing_loop,
                        enclosing_breakable,
                    );
                    self.walk_block(
                        prog,
                        else_branch,
                        Some(id),
                        enclosing_loop,
                        enclosing_breakable,
                    );
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    self.walk_block(prog, body, Some(id), Some(id), Some(id));
                }
                StmtKind::Switch { arms, .. } => {
                    for arm in arms {
                        self.walk_block(prog, &arm.body, Some(id), enclosing_loop, Some(id));
                    }
                }
                _ => {}
            }
        }
    }

    /// The compound statement lexically containing `id`, if any.
    pub fn parent(&self, id: StmtId) -> Option<StmtId> {
        self.parent[id.index()]
    }

    /// The statement immediately following `id` in its own block, if any.
    pub fn next_in_block(&self, id: StmtId) -> Option<StmtId> {
        self.next_in_block[id.index()]
    }

    /// The nearest enclosing `while`/`do-while` of `id` (what `continue`
    /// targets), excluding `id` itself.
    pub fn enclosing_loop(&self, id: StmtId) -> Option<StmtId> {
        self.enclosing_loop[id.index()]
    }

    /// The nearest enclosing `while`/`do-while`/`switch` of `id` (what
    /// `break` exits), excluding `id` itself.
    pub fn enclosing_breakable(&self, id: StmtId) -> Option<StmtId> {
        self.enclosing_breakable[id.index()]
    }

    /// Statements in lexical (preorder) order.
    pub fn lexical(&self) -> &[StmtId] {
        &self.lexical
    }

    /// Zero-based lexical position of `id`.
    pub fn lexical_pos(&self, id: StmtId) -> usize {
        self.lexical_pos[id.index()]
    }

    /// The chain of ancestors of `id` (parent, grandparent, …), nearest
    /// first.
    pub fn ancestors(&self, id: StmtId) -> Vec<StmtId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Whether `anc` lexically contains `id` (strictly).
    pub fn contains(&self, anc: StmtId, id: StmtId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parents_and_next_links() {
        let p = parse(
            "x = 0;
             if (x) { y = 1; z = 2; }
             w = 3;",
        )
        .unwrap();
        let s = Structure::of(&p);
        let ifs = p.at_line(2);
        let y = p.at_line(3);
        let z = p.at_line(4);
        let w = p.at_line(5);
        assert_eq!(s.parent(y), Some(ifs));
        assert_eq!(s.parent(ifs), None);
        assert_eq!(s.next_in_block(y), Some(z));
        assert_eq!(s.next_in_block(z), None);
        assert_eq!(s.next_in_block(ifs), Some(w));
    }

    #[test]
    fn enclosing_loop_and_breakable() {
        let p = parse(
            "while (c) {
               switch (x) {
                 case 1: break;
               }
               continue;
             }",
        )
        .unwrap();
        let s = Structure::of(&p);
        let whl = p.at_line(1);
        let sw = p.at_line(2);
        let brk = p.at_line(3);
        let cont = p.at_line(4);
        assert_eq!(s.enclosing_breakable(brk), Some(sw));
        assert_eq!(s.enclosing_loop(brk), Some(whl));
        assert_eq!(s.enclosing_breakable(cont), Some(whl));
        assert_eq!(s.enclosing_loop(cont), Some(whl));
    }

    #[test]
    fn nested_loops() {
        let p = parse("while (a) { while (b) { break; } break; }").unwrap();
        let s = Structure::of(&p);
        let outer = p.at_line(1);
        let inner = p.at_line(2);
        assert_eq!(s.enclosing_breakable(p.at_line(3)), Some(inner));
        assert_eq!(s.enclosing_breakable(p.at_line(4)), Some(outer));
    }

    #[test]
    fn ancestors_and_contains() {
        let p = parse("if (a) { while (b) { x = 1; } }").unwrap();
        let s = Structure::of(&p);
        let x = p.at_line(3);
        assert_eq!(s.ancestors(x), vec![p.at_line(2), p.at_line(1)]);
        assert!(s.contains(p.at_line(1), x));
        assert!(!s.contains(x, p.at_line(1)));
    }

    #[test]
    fn lexical_positions() {
        let p = parse("a = 1; b = 2; c = 3;").unwrap();
        let s = Structure::of(&p);
        assert_eq!(s.lexical_pos(p.at_line(2)), 1);
        assert_eq!(s.lexical().len(), 3);
    }
}
