//! Error types for parsing and validation.

use std::error::Error as StdError;
use std::fmt;

/// What went wrong while turning source text into a valid [`crate::Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// A character the lexer does not understand.
    UnexpectedChar(char),
    /// An integer literal that does not fit in `i64`.
    IntOverflow(String),
    /// The parser found `found` where it expected `expected`.
    UnexpectedToken {
        /// Human-readable description of what was expected.
        expected: String,
        /// The token actually found.
        found: String,
    },
    /// `goto L;` names a label that is attached to no statement.
    UndefinedLabel(String),
    /// The same label is attached to two statements.
    DuplicateLabel(String),
    /// `break;` outside any loop or switch.
    BreakOutsideLoop,
    /// `continue;` outside any loop.
    ContinueOutsideLoop,
    /// Two `case` guards with the same value in one `switch`.
    DuplicateCase(i64),
    /// More than one `default:` in one `switch`.
    DuplicateDefault,
}

/// A parse or validation error with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// The error category.
    pub kind: ErrorKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (0 when unknown, e.g. builder-produced).
    pub col: u32,
}

impl Error {
    pub(crate) fn new(kind: ErrorKind, line: u32, col: u32) -> Self {
        Error { kind, line, col }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.line, self.col)?;
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ErrorKind::IntOverflow(s) => write!(f, "integer literal `{s}` overflows i64"),
            ErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ErrorKind::UndefinedLabel(l) => write!(f, "goto target `{l}` is not defined"),
            ErrorKind::DuplicateLabel(l) => write!(f, "label `{l}` is defined more than once"),
            ErrorKind::BreakOutsideLoop => write!(f, "`break` outside of loop or switch"),
            ErrorKind::ContinueOutsideLoop => write!(f, "`continue` outside of loop"),
            ErrorKind::DuplicateCase(v) => write!(f, "duplicate case value {v}"),
            ErrorKind::DuplicateDefault => write!(f, "duplicate `default` arm"),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = Error::new(ErrorKind::UndefinedLabel("L9".into()), 4, 7);
        assert_eq!(e.to_string(), "4:7: goto target `L9` is not defined");
    }
}
