//! A tiny string interner shared by variable names, function names, and
//! labels.

use std::collections::HashMap;

/// Append-only string interner handing out dense `u32` ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Interner {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_owned());
        self.ids.insert(s.to_owned(), id);
        id
    }

    /// Rebuilds an interner from its resolved strings, in id order — the
    /// inverse of resolving `0..len()`. Returns `None` if any entry is
    /// empty or repeats: duplicates would give two ids for one string, and
    /// `lookup` could then disagree with `resolve`.
    pub(crate) fn from_entries(strings: Vec<String>) -> Option<Interner> {
        u32::try_from(strings.len()).ok()?;
        let mut ids = HashMap::with_capacity(strings.len());
        for (i, s) in strings.iter().enumerate() {
            if s.is_empty() || ids.insert(s.clone(), i as u32).is_some() {
                return None;
            }
        }
        Some(Interner { strings, ids })
    }

    pub(crate) fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    pub(crate) fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.strings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::default();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.lookup("y"), Some(b));
        assert_eq!(i.lookup("z"), None);
        assert_eq!(i.len(), 2);
    }
}
