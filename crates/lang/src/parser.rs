//! Recursive-descent parser producing a validated [`Program`].

use crate::ast::*;
use crate::error::{Error, ErrorKind};
use crate::lexer::{Lexer, Span, Token, TokenKind};
use crate::validate::validate;

/// Parses mini-C source text into a validated [`Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error (undefined or
/// duplicate labels, `break`/`continue` outside their contexts, duplicate
/// `case` values).
///
/// # Examples
///
/// ```
/// use jumpslice_lang::parse;
/// let p = parse("read(x); if (x > 0) write(x);")?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), jumpslice_lang::Error>(())
/// ```
pub fn parse(src: &str) -> Result<Program, Error> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prog: Program::default(),
    };
    let mut body = Vec::new();
    while !p.at(&TokenKind::Eof) {
        body.push(p.parse_stmt()?);
    }
    p.prog.body = body;
    validate(&mut p.prog)?;
    Ok(p.prog)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prog: Program,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &TokenKind {
        self.tokens
            .get(self.pos + 1)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Error> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err_expected(&format!("{kind}")))
        }
    }

    fn err_expected(&self, expected: &str) -> Error {
        let t = self.peek();
        Error::new(
            ErrorKind::UnexpectedToken {
                expected: expected.to_owned(),
                found: t.kind.to_string(),
            },
            t.span.line,
            t.span.col,
        )
    }

    fn intern_name(&mut self, s: &str) -> Name {
        Name(self.prog.names.intern(s))
    }

    fn intern_label(&mut self, s: &str) -> Label {
        let l = Label(self.prog.labels.intern(s));
        if self.prog.label_targets.len() < self.prog.labels.len() {
            self.prog.label_targets.resize(self.prog.labels.len(), None);
        }
        l
    }

    fn alloc(&mut self, kind: StmtKind, labels: Vec<Label>, span: Span) -> StmtId {
        let id = StmtId(self.prog.stmts.len() as u32);
        self.prog.stmts.push(Stmt {
            kind,
            labels,
            line: span.line,
        });
        id
    }

    /// `IDENT ':'` label prefixes of a statement.
    fn parse_labels(&mut self) -> Vec<Label> {
        let mut labels = Vec::new();
        while let TokenKind::Ident(name) = &self.peek().kind {
            if self.peek2() == &TokenKind::Colon {
                let name = name.clone();
                self.bump();
                self.bump();
                labels.push(self.intern_label(&name));
            } else {
                break;
            }
        }
        labels
    }

    /// A brace-enclosed block or a single statement.
    fn parse_block_or_stmt(&mut self) -> Result<Vec<StmtId>, Error> {
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let mut stmts = Vec::new();
            while !self.at(&TokenKind::RBrace) {
                if self.at(&TokenKind::Eof) {
                    return Err(self.err_expected("`}`"));
                }
                stmts.push(self.parse_stmt()?);
            }
            self.bump();
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<StmtId, Error> {
        let labels = self.parse_labels();
        let span = self.peek().span;
        let kind = self.parse_stmt_kind()?;
        Ok(self.alloc(kind, labels, span))
    }

    fn parse_stmt_kind(&mut self) -> Result<StmtKind, Error> {
        match self.peek().kind.clone() {
            TokenKind::Semi => {
                self.bump();
                Ok(StmtKind::Skip)
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(TokenKind::Assign)?;
                let rhs = self.parse_expr()?;
                self.expect(TokenKind::Semi)?;
                let lhs = self.intern_name(&name);
                Ok(StmtKind::Assign { lhs, rhs })
            }
            TokenKind::KwRead => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let var = match self.peek().kind.clone() {
                    TokenKind::Ident(v) => {
                        self.bump();
                        self.intern_name(&v)
                    }
                    _ => return Err(self.err_expected("variable name")),
                };
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Read { var })
            }
            TokenKind::KwWrite => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let arg = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Write { arg })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                // Fuse the exact unbraced `if (c) goto L;` pattern into a
                // single conditional-jump statement (paper, Figure 4).
                if self.at(&TokenKind::KwGoto) {
                    let save = self.pos;
                    self.bump();
                    if let TokenKind::Ident(l) = self.peek().kind.clone() {
                        self.bump();
                        if self.at(&TokenKind::Semi) {
                            self.bump();
                            if !self.at(&TokenKind::KwElse) {
                                let target = self.intern_label(&l);
                                return Ok(StmtKind::CondGoto { cond, target });
                            }
                        }
                    }
                    self.pos = save;
                }
                let then_branch = self.parse_block_or_stmt()?;
                let else_branch = if self.at(&TokenKind::KwElse) {
                    self.bump();
                    self.parse_block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.parse_block_or_stmt()?;
                Ok(StmtKind::While { cond, body })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.parse_block_or_stmt()?;
                self.expect(TokenKind::KwWhile)?;
                self.expect(TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::DoWhile { body, cond })
            }
            TokenKind::KwSwitch => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let scrutinee = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::LBrace)?;
                let arms = self.parse_switch_arms()?;
                self.expect(TokenKind::RBrace)?;
                Ok(StmtKind::Switch { scrutinee, arms })
            }
            TokenKind::KwGoto => {
                self.bump();
                let target = match self.peek().kind.clone() {
                    TokenKind::Ident(l) => {
                        self.bump();
                        self.intern_label(&l)
                    }
                    _ => return Err(self.err_expected("label name")),
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Goto { target })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Continue)
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtKind::Return { value })
            }
            _ => Err(self.err_expected("a statement")),
        }
    }

    fn parse_switch_arms(&mut self) -> Result<Vec<SwitchArm>, Error> {
        let mut arms = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err_expected("`}`"));
            }
            let mut guards = Vec::new();
            loop {
                match &self.peek().kind {
                    TokenKind::KwCase => {
                        self.bump();
                        let neg = if self.at(&TokenKind::Minus) {
                            self.bump();
                            true
                        } else {
                            false
                        };
                        let v = match self.peek().kind.clone() {
                            TokenKind::Int(v) => {
                                self.bump();
                                if neg {
                                    -v
                                } else {
                                    v
                                }
                            }
                            _ => return Err(self.err_expected("case value")),
                        };
                        self.expect(TokenKind::Colon)?;
                        guards.push(CaseGuard::Case(v));
                    }
                    TokenKind::KwDefault => {
                        self.bump();
                        self.expect(TokenKind::Colon)?;
                        guards.push(CaseGuard::Default);
                    }
                    _ => break,
                }
            }
            if guards.is_empty() {
                return Err(self.err_expected("`case` or `default`"));
            }
            let mut body = Vec::new();
            while !matches!(
                self.peek().kind,
                TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace | TokenKind::Eof
            ) {
                body.push(self.parse_stmt()?);
            }
            arms.push(SwitchArm { guards, body });
        }
        Ok(arms)
    }

    // ---- Expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr, Error> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_and()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_equality()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, Error> {
        match self.peek().kind {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, Error> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.at(&TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    let f = self.intern_name(&name);
                    Ok(Expr::Call(f, args))
                } else {
                    let v = self.intern_name(&name);
                    Ok(Expr::Var(v))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            _ => Err(self.err_expected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program() {
        let p = parse("x = 1; write(x);").unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(p.stmt(p.body()[0]).kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse("x = 1 + 2 * 3 == 7 && 1 < 2;").unwrap();
        let StmtKind::Assign { rhs, .. } = &p.stmt(p.body()[0]).kind else {
            panic!()
        };
        // (((1 + (2*3)) == 7) && (1 < 2))
        let Expr::Binary(BinOp::And, l, r) = rhs else {
            panic!("top is And: {rhs:?}")
        };
        assert!(matches!(**l, Expr::Binary(BinOp::Eq, ..)));
        assert!(matches!(**r, Expr::Binary(BinOp::Lt, ..)));
    }

    #[test]
    fn unary_chains() {
        let p = parse("x = !-y;").unwrap();
        let StmtKind::Assign { rhs, .. } = &p.stmt(p.body()[0]).kind else {
            panic!()
        };
        let Expr::Unary(UnOp::Not, inner) = rhs else {
            panic!()
        };
        assert!(matches!(**inner, Expr::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn cond_goto_fusion() {
        let p = parse("L: x = 0; if (x > 0) goto L;").unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(
            p.stmt(p.body()[1]).kind,
            StmtKind::CondGoto { .. }
        ));
    }

    #[test]
    fn cond_goto_not_fused_with_else() {
        let p = parse("L: x = 0; if (x > 0) goto L; else x = 1;").unwrap();
        // if + goto + assigns: the else-form must stay a plain If.
        assert!(matches!(p.stmt(p.body()[1]).kind, StmtKind::If { .. }));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn braced_goto_not_fused() {
        let p = parse("L: x = 0; if (x > 0) { goto L; }").unwrap();
        assert!(matches!(p.stmt(p.body()[1]).kind, StmtKind::If { .. }));
    }

    #[test]
    fn labels_attach_to_statements() {
        let p = parse("L1: L2: x = 0; goto L1; goto L2;").unwrap();
        let s = p.body()[0];
        assert_eq!(p.stmt(s).labels.len(), 2);
        assert_eq!(p.label_target(p.label("L1").unwrap()), Some(s));
        assert_eq!(p.label_target(p.label("L2").unwrap()), Some(s));
    }

    #[test]
    fn switch_with_fallthrough_and_default() {
        let p = parse(
            "switch (c) {
               case 1: case 2: x = 1;
               case 3: x = 2; break;
               default: x = 3;
             }",
        )
        .unwrap();
        let StmtKind::Switch { arms, .. } = &p.stmt(p.body()[0]).kind else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].guards.len(), 2);
        assert_eq!(arms[1].body.len(), 2);
        assert_eq!(arms[2].guards, vec![CaseGuard::Default]);
    }

    #[test]
    fn negative_case_values() {
        let p = parse("switch (c) { case -5: x = 1; }").unwrap();
        let StmtKind::Switch { arms, .. } = &p.stmt(p.body()[0]).kind else {
            panic!()
        };
        assert_eq!(arms[0].guards, vec![CaseGuard::Case(-5)]);
    }

    #[test]
    fn do_while_parses() {
        let p = parse("do { x = x + 1; } while (x < 10);").unwrap();
        assert!(matches!(p.stmt(p.body()[0]).kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn dangling_else_binds_tight() {
        let p = parse("if (a) if (b) x = 1; else x = 2;").unwrap();
        let StmtKind::If {
            then_branch,
            else_branch,
            ..
        } = &p.stmt(p.body()[0]).kind
        else {
            panic!()
        };
        assert!(else_branch.is_empty());
        let StmtKind::If { else_branch, .. } = &p.stmt(then_branch[0]).kind else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn error_missing_semi() {
        let err = parse("x = 1").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn error_unclosed_block() {
        let err = parse("while (1) { x = 1;").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn error_undefined_label() {
        let err = parse("goto nowhere;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn error_break_outside() {
        let err = parse("break;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BreakOutsideLoop);
    }

    #[test]
    fn error_continue_in_switch_only() {
        let err = parse("switch (c) { case 1: continue; }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::ContinueOutsideLoop);
    }

    #[test]
    fn continue_ok_in_loop_inside_switch() {
        let p = parse("while (1) { switch (c) { case 1: continue; } }");
        assert!(p.is_ok());
    }

    #[test]
    fn break_ok_in_switch() {
        assert!(parse("switch (c) { case 1: break; }").is_ok());
    }

    #[test]
    fn call_with_multiple_args() {
        let p = parse("x = g(a, b + 1, f());").unwrap();
        let StmtKind::Assign { rhs, .. } = &p.stmt(p.body()[0]).kind else {
            panic!()
        };
        let Expr::Call(_, args) = rhs else { panic!() };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn empty_program_is_ok() {
        let p = parse("").unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn skip_statement() {
        let p = parse("L: ; goto L;").unwrap();
        assert!(matches!(p.stmt(p.body()[0]).kind, StmtKind::Skip));
    }
}
