//! The mini-C language the slicer operates on.
//!
//! Agrawal's PLDI'94 paper works over an informal C-like pseudocode. This
//! crate gives that language a concrete definition: a lexer, a
//! recursive-descent parser, an arena-based AST with stable statement ids, a
//! programmatic builder, label/semantic validation, lexical-structure
//! queries, and a pretty-printer able to render residual slices.
//!
//! The language covers exactly the constructs the paper exercises —
//! assignments, `read`/`write`, `if`/`else`, `while` (plus `do`/`while` as a
//! documented extension), `switch`/`case`/`default` with C fall-through,
//! `goto`/labels, `break`, `continue`, `return`, and calls to uninterpreted
//! pure functions such as `f1(x)` and `eof()`.
//!
//! Following the paper's Figure 4 (where `L3: if (eof()) goto L14` is a
//! single flowgraph node), the parser fuses the exact pattern
//! `if (c) goto L;` into one [`StmtKind::CondGoto`] statement.
//!
//! # Examples
//!
//! ```
//! use jumpslice_lang::parse;
//!
//! let program = parse(
//!     "sum = 0;
//!      while (!eof()) { read(x); sum = sum + x; }
//!      write(sum);",
//! )?;
//! assert_eq!(program.lexical_order().len(), 5);
//! # Ok::<(), jumpslice_lang::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod builder;
mod error;
mod intern;
mod lexer;
mod parser;
mod path;
mod print;
mod structure;
mod validate;

pub use ast::{
    BinOp, CaseGuard, Expr, Label, Name, Program, Stmt, StmtId, StmtKind, SwitchArm, UnOp,
};
pub use builder::{ProgramBuilder, SwitchArms};
pub use error::{Error, ErrorKind};
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::parse;
pub use path::{path_of, BlockSel, PathStep, StmtPath};
pub use print::{print_program, print_slice, print_with_options, PrintOptions};
pub use structure::Structure;
