//! Structural statement paths.
//!
//! A [`StmtPath`] names a statement by its position in the nesting
//! structure — "top-level statement 2, then-branch statement 0" — rather
//! than by its [`StmtId`]. Paths survive rebuilds: the same path resolved
//! against an edited copy of a program finds the statement occupying the
//! same structural slot, even though arena ids may have shifted. The
//! incremental editing layer expresses all edits against paths for exactly
//! this reason.

use crate::ast::{Program, StmtId, StmtKind};

/// Selects one nested block of a compound statement (or the program body).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockSel {
    /// The top-level program body, or the body of a `while`/`do-while`.
    Body,
    /// The then-branch of an `if`.
    Then,
    /// The else-branch of an `if`.
    Else,
    /// The body of the `i`-th arm of a `switch`.
    Arm(usize),
}

/// One step of a [`StmtPath`]: which block to enter, and the 0-based
/// position within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathStep {
    /// The block entered by this step. The first step of a path must use
    /// [`BlockSel::Body`] (the program's top-level body).
    pub block: BlockSel,
    /// 0-based index within that block.
    pub index: usize,
}

/// A structural path from the program root to a statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StmtPath {
    /// The steps, outermost first. Never empty for a valid path.
    pub steps: Vec<PathStep>,
}

impl StmtPath {
    /// A path to the `index`-th top-level statement.
    pub fn root(index: usize) -> StmtPath {
        StmtPath {
            steps: vec![PathStep {
                block: BlockSel::Body,
                index,
            }],
        }
    }

    /// Extends the path one level deeper: into `block` of the statement the
    /// path currently names, at position `index`.
    pub fn child(mut self, block: BlockSel, index: usize) -> StmtPath {
        self.steps.push(PathStep { block, index });
        self
    }

    /// Nesting depth (number of steps).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Resolves the path to the statement it names in `p`, or `None` if any
    /// step selects a block the enclosing statement does not have or an
    /// index past the end of that block.
    pub fn resolve(&self, p: &Program) -> Option<StmtId> {
        let mut cur: Option<StmtId> = None;
        for step in &self.steps {
            let block = block_of(p, cur, step.block)?;
            cur = Some(*block.get(step.index)?);
        }
        cur
    }

    /// Resolves the path as an *insertion slot*: every step but the last
    /// must name an existing statement, while the final index may equal the
    /// block length (append position). Returns the statement owning the
    /// final block (`None` for the top-level body) plus the slot index.
    pub fn resolve_slot(&self, p: &Program) -> Option<(Option<StmtId>, BlockSel, usize)> {
        let (last, prefix) = self.steps.split_last()?;
        let mut cur: Option<StmtId> = None;
        for step in prefix {
            let block = block_of(p, cur, step.block)?;
            cur = Some(*block.get(step.index)?);
        }
        let block = block_of(p, cur, last.block)?;
        if last.index > block.len() {
            return None;
        }
        Some((cur, last.block, last.index))
    }
}

/// The statement list selected by `sel` inside `owner` (`None` = program
/// root), or `None` when the owner has no such block.
fn block_of(p: &Program, owner: Option<StmtId>, sel: BlockSel) -> Option<&[StmtId]> {
    match owner {
        None => match sel {
            BlockSel::Body => Some(p.body()),
            _ => None,
        },
        Some(id) => match (&p.stmt(id).kind, sel) {
            (StmtKind::If { then_branch, .. }, BlockSel::Then) => Some(then_branch),
            (StmtKind::If { else_branch, .. }, BlockSel::Else) => Some(else_branch),
            (StmtKind::While { body, .. }, BlockSel::Body)
            | (StmtKind::DoWhile { body, .. }, BlockSel::Body) => Some(body),
            (StmtKind::Switch { arms, .. }, BlockSel::Arm(i)) => {
                arms.get(i).map(|a| a.body.as_slice())
            }
            _ => None,
        },
    }
}

/// Computes the structural path of `target` in `p`, or `None` when the
/// statement is not reachable from the program body (a detached arena id).
pub fn path_of(p: &Program, target: StmtId) -> Option<StmtPath> {
    let mut steps = Vec::new();
    if find_in_block(p, p.body(), BlockSel::Body, target, &mut steps) {
        Some(StmtPath { steps })
    } else {
        None
    }
}

fn find_in_block(
    p: &Program,
    block: &[StmtId],
    sel: BlockSel,
    target: StmtId,
    steps: &mut Vec<PathStep>,
) -> bool {
    for (i, &id) in block.iter().enumerate() {
        steps.push(PathStep {
            block: sel,
            index: i,
        });
        if id == target {
            return true;
        }
        let found = match &p.stmt(id).kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                find_in_block(p, then_branch, BlockSel::Then, target, steps)
                    || find_in_block(p, else_branch, BlockSel::Else, target, steps)
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                find_in_block(p, body, BlockSel::Body, target, steps)
            }
            StmtKind::Switch { arms, .. } => arms
                .iter()
                .enumerate()
                .any(|(k, arm)| find_in_block(p, &arm.body, BlockSel::Arm(k), target, steps)),
            _ => false,
        };
        if found {
            return true;
        }
        steps.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_every_statement() {
        let p = parse(
            "read(c);
             if (c > 0) { x = 1; while (x < 5) { x = x + 1; } } else { x = 2; }
             switch (c) { case 0: y = 1; default: y = 2; }
             do { c = c - 1; } while (c > 0);
             write(x);",
        )
        .unwrap();
        for id in p.stmt_ids() {
            let path = path_of(&p, id).expect("every arena stmt is reachable");
            assert_eq!(path.resolve(&p), Some(id), "roundtrip for {id:?}");
        }
    }

    #[test]
    fn resolve_rejects_bad_steps() {
        let p = parse("x = 1; while (x < 3) { x = x + 1; }").unwrap();
        // Index past the end of the top-level body.
        assert_eq!(StmtPath::root(5).resolve(&p), None);
        // An assignment has no nested body.
        assert_eq!(StmtPath::root(0).child(BlockSel::Body, 0).resolve(&p), None);
        // A while has a Body but no Then.
        assert_eq!(StmtPath::root(1).child(BlockSel::Then, 0).resolve(&p), None);
        // Valid descent.
        let inner = StmtPath::root(1).child(BlockSel::Body, 0).resolve(&p);
        assert_eq!(inner, Some(p.at_line(3)));
    }

    #[test]
    fn slot_resolution_allows_append() {
        let p = parse("x = 1; while (x < 3) { x = x + 1; }").unwrap();
        // Append at the end of the loop body (index == len).
        let slot = StmtPath::root(1)
            .child(BlockSel::Body, 1)
            .resolve_slot(&p)
            .unwrap();
        assert_eq!(slot, (Some(p.at_line(2)), BlockSel::Body, 1));
        // One past that is invalid.
        assert!(StmtPath::root(1)
            .child(BlockSel::Body, 2)
            .resolve_slot(&p)
            .is_none());
        // Top-level append.
        let slot = StmtPath::root(2).resolve_slot(&p).unwrap();
        assert_eq!(slot, (None, BlockSel::Body, 2));
    }

    #[test]
    fn paths_survive_reprint() {
        let src = "read(c); if (c > 0) { x = 1; } else { x = 2; } write(x);";
        let p = parse(src).unwrap();
        let q = parse(&crate::print_program(&p)).unwrap();
        let then_stmt = StmtPath::root(1).child(BlockSel::Then, 0);
        assert_eq!(
            p.line_of(then_stmt.resolve(&p).unwrap()),
            q.line_of(then_stmt.resolve(&q).unwrap()),
        );
    }
}
