//! Arena-based abstract syntax tree.
//!
//! Every statement lives in a flat arena inside [`Program`] and is referred
//! to by a stable [`StmtId`]. Slices, dependence graphs, and flowgraph nodes
//! all key off these ids, so a slice is simply a set of `StmtId`s.

use crate::intern::Interner;
use std::fmt;

/// A stable handle to a statement in a [`Program`]'s arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub(crate) u32);

impl StmtId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a statement id from a dense arena index.
    ///
    /// Statement ids are dense `0..program.len()` indices; analyses that
    /// store per-statement tables use this to map back. Passing an index
    /// outside the owning program yields an id that panics on use.
    pub fn from_index(i: usize) -> StmtId {
        StmtId(u32::try_from(i).expect("statement index overflows u32"))
    }
}

impl fmt::Debug for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interned variable or function name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(pub(crate) u32);

impl Name {
    /// Raw intern-table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a name from its dense intern index, the inverse of
    /// [`Name::index`]. An index outside the owning program's name table
    /// yields a name that panics on resolution.
    pub fn from_index(i: usize) -> Name {
        Name(u32::try_from(i).expect("name index overflows u32"))
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name{}", self.0)
    }
}

/// An interned statement label (a `goto` target).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Raw intern-table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a label from its dense intern index, the inverse of
    /// [`Label::index`]. An index outside the owning program's label table
    /// yields a label that panics on resolution.
    pub fn from_index(i: usize) -> Label {
        Label(u32::try_from(i).expect("label index overflows u32"))
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label{}", self.0)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation, `-e`.
    Neg,
    /// Logical not, `!e`.
    Not,
}

/// Binary operators, C-style semantics over `i64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero evaluates to 0 in the interpreter)
    Div,
    /// `%` (modulo by zero evaluates to 0 in the interpreter)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit in this language: both sides are pure)
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The C surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression. Expressions are pure: they read variables and call
/// uninterpreted pure functions, but never write state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Var(Name),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call to an uninterpreted pure function, e.g. `f1(x)` or `eof()`.
    Call(Name, Vec<Expr>),
}

impl Expr {
    /// Collects every variable read by this expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Name>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Returns `true` if the expression calls any function (e.g. `eof()`).
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Num(_) | Expr::Var(_) => false,
            Expr::Unary(_, e) => e.has_call(),
            Expr::Binary(_, l, r) => l.has_call() || r.has_call(),
            Expr::Call(..) => true,
        }
    }
}

/// One `case`/`default` guard of a [`SwitchArm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaseGuard {
    /// `case n:`
    Case(i64),
    /// `default:`
    Default,
}

/// One arm of a `switch`: one or more guards followed by a statement list.
/// Control falls through to the next arm unless a jump intervenes (C
/// semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchArm {
    /// The guards that select this arm.
    pub guards: Vec<CaseGuard>,
    /// The arm body, in lexical order.
    pub body: Vec<StmtId>,
}

/// The statement forms of the language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// `x = e;`
    Assign {
        /// Variable assigned.
        lhs: Name,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `read(x);` — defines `x` from the input.
    Read {
        /// Variable defined.
        var: Name,
    },
    /// `write(e);` — the observable output used as a slicing criterion.
    Write {
        /// Expression written.
        arg: Expr,
    },
    /// `;` — empty statement, mostly a label carrier.
    Skip,
    /// `if (cond) { .. } else { .. }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-branch statements.
        then_branch: Vec<StmtId>,
        /// Else-branch statements (empty when absent).
        else_branch: Vec<StmtId>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<StmtId>,
    },
    /// `do { .. } while (cond);` — extension beyond the paper's figures.
    DoWhile {
        /// Loop body.
        body: Vec<StmtId>,
        /// Loop condition, tested after the body.
        cond: Expr,
    },
    /// `switch (scrutinee) { case ..: .. }` with C fall-through.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// The arms, in lexical order.
        arms: Vec<SwitchArm>,
    },
    /// `goto L;`
    Goto {
        /// Target label.
        target: Label,
    },
    /// `if (cond) goto L;` fused into a single conditional-jump node,
    /// matching the paper's Figure 4 where such statements are single
    /// flowgraph nodes.
    CondGoto {
        /// Branch condition.
        cond: Expr,
        /// Target label taken when the condition is true.
        target: Label,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` or `return e;` — jumps to the program exit.
    Return {
        /// Optional returned value (written to the output trace).
        value: Option<Expr>,
    },
}

impl StmtKind {
    /// Whether this statement is a jump statement in the paper's sense
    /// (`goto` or one of its structured derivatives, including the fused
    /// conditional goto).
    pub fn is_jump(&self) -> bool {
        matches!(
            self,
            StmtKind::Goto { .. }
                | StmtKind::CondGoto { .. }
                | StmtKind::Break
                | StmtKind::Continue
                | StmtKind::Return { .. }
        )
    }

    /// Whether this statement is an *unconditional* jump.
    pub fn is_unconditional_jump(&self) -> bool {
        matches!(
            self,
            StmtKind::Goto { .. } | StmtKind::Break | StmtKind::Continue | StmtKind::Return { .. }
        )
    }

    /// Whether this statement contains a branch condition (so other
    /// statements can be control dependent on it).
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            StmtKind::If { .. }
                | StmtKind::While { .. }
                | StmtKind::DoWhile { .. }
                | StmtKind::Switch { .. }
                | StmtKind::CondGoto { .. }
        )
    }

    /// Whether this statement is compound (owns nested statement lists).
    pub fn is_compound(&self) -> bool {
        matches!(
            self,
            StmtKind::If { .. }
                | StmtKind::While { .. }
                | StmtKind::DoWhile { .. }
                | StmtKind::Switch { .. }
        )
    }
}

/// A statement: its form, any labels attached to it, and its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    /// The statement form.
    pub kind: StmtKind,
    /// Labels attached to this statement (goto targets).
    pub labels: Vec<Label>,
    /// 1-based source line (or builder sequence number).
    pub line: u32,
}

/// A complete (single-procedure) program.
///
/// Holds the statement arena, the top-level statement list, the interned
/// name/label tables, and the label-to-statement resolution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub(crate) stmts: Vec<Stmt>,
    pub(crate) body: Vec<StmtId>,
    pub(crate) names: Interner,
    pub(crate) labels: Interner,
    /// Per-label resolved target statement.
    pub(crate) label_targets: Vec<Option<StmtId>>,
}

impl Program {
    /// The statement behind an id.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.index()]
    }

    /// Number of statements in the arena.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// The top-level statement list, in lexical order.
    pub fn body(&self) -> &[StmtId] {
        &self.body
    }

    /// Iterator over every statement id in the arena (arbitrary order).
    pub fn stmt_ids(&self) -> impl Iterator<Item = StmtId> + '_ {
        (0..self.stmts.len() as u32).map(StmtId)
    }

    /// The human-readable name of an interned [`Name`].
    pub fn name_str(&self, n: Name) -> &str {
        self.names.resolve(n.0)
    }

    /// The human-readable name of an interned [`Label`].
    pub fn label_str(&self, l: Label) -> &str {
        self.labels.resolve(l.0)
    }

    /// Looks up a variable/function [`Name`] by its string.
    pub fn name(&self, s: &str) -> Option<Name> {
        self.names.lookup(s).map(Name)
    }

    /// Looks up a [`Label`] by its string.
    pub fn label(&self, s: &str) -> Option<Label> {
        self.labels.lookup(s).map(Label)
    }

    /// The statement a label is attached to.
    pub fn label_target(&self, l: Label) -> Option<StmtId> {
        self.label_targets.get(l.0 as usize).copied().flatten()
    }

    /// Number of distinct interned names (variables and functions).
    pub fn num_names(&self) -> usize {
        self.names.len()
    }

    /// Iterator over all interned names, in interning order. Rebuilders
    /// that must keep [`Name`] values stable re-intern these first, in
    /// order, before emitting any statement.
    pub fn all_names(&self) -> impl Iterator<Item = Name> + '_ {
        (0..self.names.len() as u32).map(Name)
    }

    /// Number of distinct labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Iterator over all labels.
    pub fn all_labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.labels.len() as u32).map(Label)
    }

    /// Statements in lexical (preorder) order: a compound statement precedes
    /// the statements of its branches/body.
    ///
    /// This order matches the line-numbering convention of the paper's
    /// figures, so the `n`-th element (1-based) is the statement the paper
    /// calls "line n".
    pub fn lexical_order(&self) -> Vec<StmtId> {
        let mut out = Vec::with_capacity(self.stmts.len());
        self.walk_block(&self.body, &mut out);
        out
    }

    fn walk_block(&self, block: &[StmtId], out: &mut Vec<StmtId>) {
        for &id in block {
            out.push(id);
            match &self.stmt(id).kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.walk_block(then_branch, out);
                    self.walk_block(else_branch, out);
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    self.walk_block(body, out);
                }
                StmtKind::Switch { arms, .. } => {
                    for arm in arms {
                        self.walk_block(&arm.body, out);
                    }
                }
                _ => {}
            }
        }
    }

    /// The statement at a paper-style line number (1-based lexical index).
    ///
    /// # Panics
    ///
    /// Panics if `line` is 0 or past the end of the program. Callers
    /// handling untrusted line numbers (request decoding in the serve
    /// daemon) should use [`try_at_line`](Program::try_at_line).
    pub fn at_line(&self, line: usize) -> StmtId {
        self.try_at_line(line)
            .unwrap_or_else(|| panic!("line {line} out of range"))
    }

    /// The statement at a paper-style line number, or `None` when `line`
    /// is 0 or past the end of the program — the bounds-checked form of
    /// [`at_line`](Program::at_line).
    pub fn try_at_line(&self, line: usize) -> Option<StmtId> {
        let order = self.lexical_order();
        if line >= 1 && line <= order.len() {
            Some(order[line - 1])
        } else {
            None
        }
    }

    /// Paper-style line number (1-based lexical position) of a statement.
    pub fn line_of(&self, id: StmtId) -> usize {
        self.lexical_order()
            .iter()
            .position(|&s| s == id)
            .map(|p| p + 1)
            .expect("statement not in program body")
    }

    /// All variables defined anywhere in the program.
    pub fn defined_vars(&self) -> Vec<Name> {
        let mut vars = Vec::new();
        for s in &self.stmts {
            match &s.kind {
                StmtKind::Assign { lhs, .. } if !vars.contains(lhs) => {
                    vars.push(*lhs);
                }
                StmtKind::Read { var } if !vars.contains(var) => {
                    vars.push(*var);
                }
                _ => {}
            }
        }
        vars
    }

    /// Variables defined by a statement (at most one in this language).
    pub fn defs(&self, id: StmtId) -> Option<Name> {
        match &self.stmt(id).kind {
            StmtKind::Assign { lhs, .. } => Some(*lhs),
            StmtKind::Read { var } => Some(*var),
            _ => None,
        }
    }

    /// Reassembles a program from its constituent parts — the inverse of
    /// reading them back through the public accessors (`stmt`, `body`,
    /// `name_str`, `label_str`, `label_target`). This is the trust
    /// boundary for *persisted* programs: a snapshot codec hands in parts
    /// decoded from disk, and every structural invariant the parser would
    /// have established is re-checked here. Any violation returns `None`.
    ///
    /// Checked invariants:
    ///
    /// * `names` and `labels` are duplicate-free, non-empty strings
    ///   (intern-table well-formedness);
    /// * `label_targets` has exactly one entry per label;
    /// * the block tree rooted at `body` visits every arena statement
    ///   exactly once — ids in bounds, no sharing, no orphans, no cycles;
    /// * every [`Name`] and [`Label`] a statement or expression mentions
    ///   is in bounds, and every `goto` target resolves to a statement;
    /// * a label is attached to a statement iff `label_targets` maps it
    ///   there.
    ///
    /// What this deliberately does *not* check is fidelity to any source
    /// text — callers persisting a program next to its source rely on
    /// their own integrity check (e.g. a whole-record checksum) for that.
    pub fn from_parts(
        stmts: Vec<Stmt>,
        body: Vec<StmtId>,
        names: Vec<String>,
        labels: Vec<String>,
        label_targets: Vec<Option<StmtId>>,
    ) -> Option<Program> {
        let names = Interner::from_entries(names)?;
        let labels = Interner::from_entries(labels)?;
        if label_targets.len() != labels.len() {
            return None;
        }
        let n = stmts.len();
        u32::try_from(n).ok()?;
        let resolves =
            |l: Label| l.index() < label_targets.len() && label_targets[l.index()].is_some();
        // Iterative preorder over the block tree: hostile nesting depth
        // must exhaust the worklist, not the call stack.
        let mut visited = vec![false; n];
        let mut attached = vec![false; labels.len()];
        let mut seen = 0usize;
        let mut work: Vec<StmtId> = body.clone();
        while let Some(id) = work.pop() {
            if id.index() >= n || std::mem::replace(&mut visited[id.index()], true) {
                return None;
            }
            seen += 1;
            let s = &stmts[id.index()];
            for &l in &s.labels {
                if !resolves(l)
                    || label_targets[l.index()] != Some(id)
                    || std::mem::replace(&mut attached[l.index()], true)
                {
                    return None;
                }
            }
            let ok = match &s.kind {
                StmtKind::Assign { lhs, rhs } => {
                    lhs.index() < names.len() && expr_ok(rhs, names.len())
                }
                StmtKind::Read { var } => var.index() < names.len(),
                StmtKind::Write { arg } => expr_ok(arg, names.len()),
                StmtKind::Skip | StmtKind::Break | StmtKind::Continue => true,
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    work.extend_from_slice(then_branch);
                    work.extend_from_slice(else_branch);
                    expr_ok(cond, names.len())
                }
                StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                    work.extend_from_slice(body);
                    expr_ok(cond, names.len())
                }
                StmtKind::Switch { scrutinee, arms } => {
                    for arm in arms {
                        work.extend_from_slice(&arm.body);
                    }
                    expr_ok(scrutinee, names.len())
                }
                StmtKind::Goto { target } => resolves(*target),
                StmtKind::CondGoto { cond, target } => {
                    resolves(*target) && expr_ok(cond, names.len())
                }
                StmtKind::Return { value } => match value {
                    Some(e) => expr_ok(e, names.len()),
                    None => true,
                },
            };
            if !ok {
                return None;
            }
        }
        if seen != n {
            return None;
        }
        // The reverse direction of label consistency: a mapped label whose
        // statement never claimed it (or a dangling arena id) is a lie.
        if attached
            .iter()
            .zip(&label_targets)
            .any(|(&a, t)| a != t.is_some())
        {
            return None;
        }
        Some(Program {
            stmts,
            body,
            names,
            labels,
            label_targets,
        })
    }

    /// Variables used (read) by a statement — the right-hand side, branch
    /// condition, written expression, or return value.
    pub fn uses(&self, id: StmtId) -> Vec<Name> {
        let mut out = Vec::new();
        match &self.stmt(id).kind {
            StmtKind::Assign { rhs, .. } => rhs.collect_vars(&mut out),
            StmtKind::Write { arg } => arg.collect_vars(&mut out),
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::DoWhile { cond, .. }
            | StmtKind::CondGoto { cond, .. } => cond.collect_vars(&mut out),
            StmtKind::Switch { scrutinee, .. } => scrutinee.collect_vars(&mut out),
            StmtKind::Return { value: Some(e) } => e.collect_vars(&mut out),
            StmtKind::Read { .. }
            | StmtKind::Skip
            | StmtKind::Goto { .. }
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Return { value: None } => {}
        }
        out
    }
}

/// Bounds-checks every name an expression mentions. Iterative on purpose:
/// decoded expressions can nest arbitrarily deep, and a recursive walk
/// would turn hostile bytes into a stack overflow.
fn expr_ok(e: &Expr, num_names: usize) -> bool {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Num(_) => {}
            Expr::Var(v) => {
                if v.index() >= num_names {
                    return false;
                }
            }
            Expr::Unary(_, a) => stack.push(a),
            Expr::Binary(_, l, r) => {
                stack.push(l);
                stack.push(r);
            }
            Expr::Call(f, args) => {
                if f.index() >= num_names {
                    return false;
                }
                stack.extend(args.iter());
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn lexical_order_matches_paper_numbering() {
        // Figure 1-a of the paper.
        let p = parse(
            "sum = 0;
             positives = 0;
             while (!eof()) {
               read(x);
               if (x <= 0)
                 sum = sum + f1(x);
               else {
                 positives = positives + 1;
                 if (x % 2 == 0)
                   sum = sum + f2(x);
                 else
                   sum = sum + f3(x);
               }
             }
             write(sum);
             write(positives);",
        )
        .unwrap();
        let order = p.lexical_order();
        assert_eq!(order.len(), 12);
        // Line 3 is the while, line 5 the inner if, line 12 write(positives).
        assert!(matches!(p.stmt(p.at_line(3)).kind, StmtKind::While { .. }));
        assert!(matches!(p.stmt(p.at_line(5)).kind, StmtKind::If { .. }));
        assert!(matches!(p.stmt(p.at_line(12)).kind, StmtKind::Write { .. }));
        assert_eq!(p.line_of(p.at_line(7)), 7);
    }

    #[test]
    fn defs_and_uses() {
        let p = parse("x = y + f1(z); write(x); read(w);").unwrap();
        let assign = p.at_line(1);
        assert_eq!(p.defs(assign), p.name("x"));
        let uses = p.uses(assign);
        assert!(uses.contains(&p.name("y").unwrap()));
        assert!(uses.contains(&p.name("z").unwrap()));
        assert_eq!(uses.len(), 2);
        let read = p.at_line(3);
        assert_eq!(p.defs(read), p.name("w"));
        assert!(p.uses(read).is_empty());
    }

    #[test]
    fn jump_classification() {
        let p = parse(
            "while (eof()) { break; continue; }
             L: x = 0;
             goto L;
             if (x) goto L;
             return;",
        )
        .unwrap();
        let kinds: Vec<bool> = p
            .lexical_order()
            .iter()
            .map(|&s| p.stmt(s).kind.is_jump())
            .collect();
        // while, break, continue, x=0, goto, condgoto, return
        assert_eq!(kinds, vec![false, true, true, false, true, true, true]);
        assert!(p.stmt(p.at_line(6)).kind.is_predicate());
        assert!(!p.stmt(p.at_line(6)).kind.is_unconditional_jump());
        assert!(p.stmt(p.at_line(5)).kind.is_unconditional_jump());
    }

    #[test]
    fn expr_var_collection_dedups() {
        let p = parse("x = y + y * y;").unwrap();
        assert_eq!(p.uses(p.at_line(1)).len(), 1);
    }

    #[test]
    fn has_call_detection() {
        let p = parse("x = f1(1) + 2; y = x + 1;").unwrap();
        let rhs_of = |line: usize| match &p.stmt(p.at_line(line)).kind {
            StmtKind::Assign { rhs, .. } => rhs.clone(),
            _ => unreachable!(),
        };
        assert!(rhs_of(1).has_call());
        assert!(!rhs_of(2).has_call());
    }

    type Parts = (
        Vec<Stmt>,
        Vec<StmtId>,
        Vec<String>,
        Vec<String>,
        Vec<Option<StmtId>>,
    );

    /// Explodes a program into exactly what `from_parts` consumes, read
    /// back through the public accessors a persisting codec would use.
    fn parts(p: &Program) -> Parts {
        (
            p.stmts.clone(),
            p.body.clone(),
            p.all_names().map(|n| p.name_str(n).to_owned()).collect(),
            p.all_labels().map(|l| p.label_str(l).to_owned()).collect(),
            p.all_labels().map(|l| p.label_target(l)).collect(),
        )
    }

    #[test]
    fn from_parts_round_trips_parsed_programs() {
        for src in [
            "x = 1; write(x);",
            "L: read(x); if (x > 0) goto L; while (x) { x = x - 1; break; } write(f1(x));",
            "switch (x) { case 1: y = 2; default: return; } do { continue; } while (1);",
        ] {
            let p = parse(src).unwrap();
            let (stmts, body, names, labels, targets) = parts(&p);
            let back = Program::from_parts(stmts, body, names, labels, targets)
                .expect("a parsed program's own parts are valid");
            assert_eq!(back, p, "{src:?}");
        }
    }

    #[test]
    fn from_parts_rejects_structural_lies() {
        let p = parse("L: read(x); if (x) goto L;").unwrap();
        let ok = parts(&p);

        // Duplicate interner entry.
        let mut bad = ok.clone();
        bad.2.push(bad.2[0].clone());
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // An arena statement the block tree never reaches (orphan).
        let mut bad = ok.clone();
        bad.0.push(Stmt {
            kind: StmtKind::Skip,
            labels: vec![],
            line: 99,
        });
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // The same statement listed twice (sharing).
        let mut bad = ok.clone();
        let first = bad.1[0];
        bad.1.push(first);
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // A body id past the arena.
        let mut bad = ok.clone();
        bad.1.push(StmtId::from_index(100));
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // An out-of-bounds name inside an expression.
        let mut bad = ok.clone();
        let cg = bad
            .0
            .iter()
            .position(|s| matches!(s.kind, StmtKind::CondGoto { .. }))
            .expect("fixture has a fused conditional goto");
        if let StmtKind::CondGoto { cond, .. } = &mut bad.0[cg].kind {
            *cond = Expr::Var(Name::from_index(50));
        }
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // A goto whose label has no target statement.
        let mut bad = ok.clone();
        bad.4[0] = None;
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // A label map pointing at a statement that never claimed it.
        let mut bad = ok.clone();
        bad.4[0] = Some(StmtId::from_index(1));
        assert!(Program::from_parts(bad.0, bad.1, bad.2, bad.3, bad.4).is_none());

        // The untampered parts still pass (the fixture itself is valid).
        assert!(Program::from_parts(ok.0, ok.1, ok.2, ok.3, ok.4).is_some());
    }
}
