//! Post-parse semantic validation: label resolution, jump-context checks,
//! and switch well-formedness.

use crate::ast::*;
use crate::error::{Error, ErrorKind};
use std::collections::HashSet;

/// Resolves labels and checks semantic rules. Called by both the parser and
/// the builder before a [`Program`] is released to users.
pub(crate) fn validate(prog: &mut Program) -> Result<(), Error> {
    resolve_labels(prog)?;
    let body = prog.body.clone();
    check_block(prog, &body, &Ctx::default())?;
    Ok(())
}

fn resolve_labels(prog: &mut Program) -> Result<(), Error> {
    prog.label_targets = vec![None; prog.labels.len()];
    for id in 0..prog.stmts.len() {
        let stmt = &prog.stmts[id];
        let line = stmt.line;
        for &l in stmt.labels.clone().iter() {
            if prog.label_targets[l.0 as usize].is_some() {
                return Err(Error::new(
                    ErrorKind::DuplicateLabel(prog.label_str(l).to_owned()),
                    line,
                    0,
                ));
            }
            prog.label_targets[l.0 as usize] = Some(StmtId(id as u32));
        }
    }
    // Every goto / fused conditional goto must name a defined label.
    for id in 0..prog.stmts.len() {
        let stmt = &prog.stmts[id];
        let target = match stmt.kind {
            StmtKind::Goto { target } | StmtKind::CondGoto { target, .. } => Some(target),
            _ => None,
        };
        if let Some(t) = target {
            if prog.label_targets[t.0 as usize].is_none() {
                return Err(Error::new(
                    ErrorKind::UndefinedLabel(prog.label_str(t).to_owned()),
                    stmt.line,
                    0,
                ));
            }
        }
    }
    Ok(())
}

#[derive(Clone, Copy, Default)]
struct Ctx {
    in_loop: bool,
    in_breakable: bool,
}

fn check_block(prog: &Program, block: &[StmtId], ctx: &Ctx) -> Result<(), Error> {
    for &id in block {
        check_stmt(prog, id, ctx)?;
    }
    Ok(())
}

fn check_stmt(prog: &Program, id: StmtId, ctx: &Ctx) -> Result<(), Error> {
    let stmt = prog.stmt(id);
    match &stmt.kind {
        StmtKind::Break if !ctx.in_breakable => {
            return Err(Error::new(ErrorKind::BreakOutsideLoop, stmt.line, 0));
        }
        StmtKind::Continue if !ctx.in_loop => {
            return Err(Error::new(ErrorKind::ContinueOutsideLoop, stmt.line, 0));
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            check_block(prog, then_branch, ctx)?;
            check_block(prog, else_branch, ctx)?;
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            let inner = Ctx {
                in_loop: true,
                in_breakable: true,
            };
            check_block(prog, body, &inner)?;
        }
        StmtKind::Switch { arms, .. } => {
            let mut seen = HashSet::new();
            let mut saw_default = false;
            for arm in arms {
                for g in &arm.guards {
                    match g {
                        CaseGuard::Case(v) => {
                            if !seen.insert(*v) {
                                return Err(Error::new(ErrorKind::DuplicateCase(*v), stmt.line, 0));
                            }
                        }
                        CaseGuard::Default => {
                            if saw_default {
                                return Err(Error::new(ErrorKind::DuplicateDefault, stmt.line, 0));
                            }
                            saw_default = true;
                        }
                    }
                }
            }
            let inner = Ctx {
                in_loop: ctx.in_loop,
                in_breakable: true,
            };
            for arm in arms {
                check_block(prog, &arm.body, &inner)?;
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::error::ErrorKind;
    use crate::parse;

    #[test]
    fn duplicate_label_rejected() {
        let err = parse("L: x = 0; L: y = 0; goto L;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateLabel("L".into()));
    }

    #[test]
    fn duplicate_case_rejected() {
        let err = parse("switch (c) { case 1: x = 0; case 1: y = 0; }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateCase(1));
    }

    #[test]
    fn duplicate_default_rejected() {
        let err = parse("switch (c) { default: x = 0; default: y = 0; }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateDefault);
    }

    #[test]
    fn label_on_nested_statement_resolves() {
        let p = parse("while (1) { L: x = 0; goto L; }").unwrap();
        assert!(p.label_target(p.label("L").unwrap()).is_some());
    }

    #[test]
    fn cond_goto_target_checked() {
        let err = parse("if (x) goto MISSING;").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndefinedLabel("MISSING".into()));
    }

    #[test]
    fn break_in_nested_if_inside_loop_ok() {
        assert!(parse("while (1) { if (x) { break; } }").is_ok());
    }
}
