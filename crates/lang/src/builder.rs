//! Programmatic construction of [`Program`]s.
//!
//! The builder is the random program generator's backbone and a convenient
//! way to embed fixtures in tests without parsing strings.
//!
//! # Examples
//!
//! ```
//! use jumpslice_lang::{Expr, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.var("x");
//! b.read("x");
//! b.while_(Expr::gt(x.clone(), Expr::num(0)), |b| {
//!     let x = b.var("x");
//!     b.assign("x", Expr::sub(x, Expr::num(1)));
//! });
//! b.write(x);
//! let program = b.build()?;
//! assert_eq!(program.len(), 4);
//! # Ok::<(), jumpslice_lang::Error>(())
//! ```

use crate::ast::*;
use crate::error::Error;
use crate::validate::validate;

// Constructor names mirror the surface syntax (`add`, `not`, …); they are
// static constructors, not operator-trait impls, and `Expr: !Copy` makes
// real operator overloading more awkward than these calls.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal.
    pub fn num(n: i64) -> Expr {
        Expr::Num(n)
    }

    /// Unary operation.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// `l + r`
    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Add, l, r)
    }

    /// `l - r`
    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Sub, l, r)
    }

    /// `l * r`
    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mul, l, r)
    }

    /// `l % r`
    pub fn rem(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Mod, l, r)
    }

    /// `l == r`
    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Eq, l, r)
    }

    /// `l != r`
    pub fn ne(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Ne, l, r)
    }

    /// `l < r`
    pub fn lt(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Lt, l, r)
    }

    /// `l <= r`
    pub fn le(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Le, l, r)
    }

    /// `l > r`
    pub fn gt(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Gt, l, r)
    }

    /// `!e`
    pub fn not(e: Expr) -> Expr {
        Expr::un(UnOp::Not, e)
    }
}

/// Incrementally builds a [`Program`]; the `builder` module example
/// shows the typical flow.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
    blocks: Vec<Vec<StmtId>>,
    pending_labels: Vec<Label>,
    next_line: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            prog: Program::default(),
            blocks: vec![Vec::new()],
            pending_labels: Vec::new(),
            next_line: 0,
        }
    }

    /// Interns a variable name and returns it as an expression.
    pub fn var(&mut self, name: &str) -> Expr {
        Expr::Var(Name(self.prog.names.intern(name)))
    }

    /// Interns a function name and builds a call expression.
    pub fn call(&mut self, func: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(Name(self.prog.names.intern(func)), args)
    }

    /// `eof()` — the input-exhaustion test used by the paper's examples.
    pub fn eof(&mut self) -> Expr {
        self.call("eof", Vec::new())
    }

    fn intern_label(&mut self, name: &str) -> Label {
        let l = Label(self.prog.labels.intern(name));
        if self.prog.label_targets.len() < self.prog.labels.len() {
            self.prog.label_targets.resize(self.prog.labels.len(), None);
        }
        l
    }

    fn reserve_line(&mut self) -> u32 {
        self.next_line += 1;
        self.next_line
    }

    fn push(&mut self, kind: StmtKind, line: u32, labels: Vec<Label>) -> StmtId {
        let id = StmtId(self.prog.stmts.len() as u32);
        self.prog.stmts.push(Stmt { kind, labels, line });
        self.blocks
            .last_mut()
            .expect("builder block stack never empty")
            .push(id);
        id
    }

    fn simple(&mut self, kind: StmtKind) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        self.push(kind, line, labels)
    }

    /// Attaches `name` as a label to the *next* statement built.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let l = self.intern_label(name);
        self.pending_labels.push(l);
        self
    }

    /// `var = rhs;`
    pub fn assign(&mut self, var: &str, rhs: Expr) -> StmtId {
        let lhs = Name(self.prog.names.intern(var));
        self.simple(StmtKind::Assign { lhs, rhs })
    }

    /// `read(var);`
    pub fn read(&mut self, var: &str) -> StmtId {
        let var = Name(self.prog.names.intern(var));
        self.simple(StmtKind::Read { var })
    }

    /// `write(arg);`
    pub fn write(&mut self, arg: Expr) -> StmtId {
        self.simple(StmtKind::Write { arg })
    }

    /// `;`
    pub fn skip(&mut self) -> StmtId {
        self.simple(StmtKind::Skip)
    }

    /// `goto label;`
    pub fn goto(&mut self, label: &str) -> StmtId {
        let target = self.intern_label(label);
        self.simple(StmtKind::Goto { target })
    }

    /// `if (cond) goto label;` as a single fused conditional jump.
    pub fn cond_goto(&mut self, cond: Expr, label: &str) -> StmtId {
        let target = self.intern_label(label);
        self.simple(StmtKind::CondGoto { cond, target })
    }

    /// `break;`
    pub fn break_(&mut self) -> StmtId {
        self.simple(StmtKind::Break)
    }

    /// `continue;`
    pub fn continue_(&mut self) -> StmtId {
        self.simple(StmtKind::Continue)
    }

    /// `return;` / `return value;`
    pub fn ret(&mut self, value: Option<Expr>) -> StmtId {
        self.simple(StmtKind::Return { value })
    }

    fn nested(&mut self, f: impl FnOnce(&mut Self)) -> Vec<StmtId> {
        self.blocks.push(Vec::new());
        f(self);
        self.blocks.pop().expect("pushed above")
    }

    /// `if (cond) { then_f } else { else_f }`
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        let then_branch = self.nested(then_f);
        let else_branch = self.nested(else_f);
        self.push(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            line,
            labels,
        )
    }

    /// `if (cond) { then_f }`
    pub fn if_then(&mut self, cond: Expr, then_f: impl FnOnce(&mut Self)) -> StmtId {
        self.if_else(cond, then_f, |_| {})
    }

    /// [`ProgramBuilder::if_else`] threading an external mutable context
    /// through both branch closures.
    ///
    /// Recursive generators cannot capture themselves mutably in two
    /// closures at once; passing the generator as `ctx` sidesteps the
    /// double borrow:
    ///
    /// ```
    /// use jumpslice_lang::{Expr, ProgramBuilder};
    /// let mut b = ProgramBuilder::new();
    /// let mut count = 0u32;
    /// let c = b.var("c");
    /// b.if_else_with(
    ///     c,
    ///     &mut count,
    ///     |n, b| { *n += 1; b.assign("x", Expr::num(1)); },
    ///     |n, b| { *n += 1; b.assign("x", Expr::num(2)); },
    /// );
    /// assert_eq!(count, 2);
    /// # b.build().unwrap();
    /// ```
    pub fn if_else_with<C>(
        &mut self,
        cond: Expr,
        ctx: &mut C,
        then_f: impl FnOnce(&mut C, &mut Self),
        else_f: impl FnOnce(&mut C, &mut Self),
    ) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        self.blocks.push(Vec::new());
        then_f(ctx, self);
        let then_branch = self.blocks.pop().expect("pushed above");
        self.blocks.push(Vec::new());
        else_f(ctx, self);
        let else_branch = self.blocks.pop().expect("pushed above");
        self.push(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            line,
            labels,
        )
    }

    /// `while (cond) { body_f }`
    pub fn while_(&mut self, cond: Expr, body_f: impl FnOnce(&mut Self)) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        let body = self.nested(body_f);
        self.push(StmtKind::While { cond, body }, line, labels)
    }

    /// `do { body_f } while (cond);`
    pub fn do_while(&mut self, body_f: impl FnOnce(&mut Self), cond: Expr) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        let body = self.nested(body_f);
        self.push(StmtKind::DoWhile { body, cond }, line, labels)
    }

    /// `switch (scrutinee) { arms }`; arms are added through the
    /// [`SwitchArms`] handle.
    pub fn switch(&mut self, scrutinee: Expr, arms_f: impl FnOnce(&mut SwitchArms<'_>)) -> StmtId {
        let line = self.reserve_line();
        let labels = std::mem::take(&mut self.pending_labels);
        let mut handle = SwitchArms {
            builder: self,
            arms: Vec::new(),
        };
        arms_f(&mut handle);
        let arms = handle.arms;
        self.push(StmtKind::Switch { scrutinee, arms }, line, labels)
    }

    /// Finishes the program, running full semantic validation.
    ///
    /// # Errors
    ///
    /// Returns the same class of errors as [`crate::parse`]: undefined or
    /// duplicate labels, `break`/`continue` outside their contexts, and
    /// duplicate `case` guards.
    pub fn build(mut self) -> Result<Program, Error> {
        assert_eq!(self.blocks.len(), 1, "unclosed nested block in builder");
        self.prog.body = self.blocks.pop().expect("checked above");
        validate(&mut self.prog)?;
        Ok(self.prog)
    }
}

/// Handle for adding arms to a `switch` under construction.
#[derive(Debug)]
pub struct SwitchArms<'b> {
    builder: &'b mut ProgramBuilder,
    arms: Vec<SwitchArm>,
}

impl SwitchArms<'_> {
    /// Adds an arm with the given guards and body.
    pub fn arm(&mut self, guards: &[CaseGuard], body_f: impl FnOnce(&mut ProgramBuilder)) {
        let body = self.builder.nested(body_f);
        self.arms.push(SwitchArm {
            guards: guards.to_vec(),
            body,
        });
    }

    /// Convenience: a single `case value:` arm.
    pub fn case(&mut self, value: i64, body_f: impl FnOnce(&mut ProgramBuilder)) {
        self.arm(&[CaseGuard::Case(value)], body_f);
    }

    /// Convenience: the `default:` arm.
    pub fn default(&mut self, body_f: impl FnOnce(&mut ProgramBuilder)) {
        self.arm(&[CaseGuard::Default], body_f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, print_program};

    #[test]
    fn builder_matches_parsed_equivalent() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.read("x");
        b.if_else(
            Expr::le(x.clone(), Expr::num(0)),
            |b| {
                let x = b.var("x");
                b.assign("y", Expr::add(x, Expr::num(1)));
            },
            |b| {
                b.assign("y", Expr::num(0));
            },
        );
        let y = b.var("y");
        b.write(y);
        let built = b.build().unwrap();
        let parsed =
            parse("read(x); if (x <= 0) { y = x + 1; } else { y = 0; } write(y);").unwrap();
        assert_eq!(print_program(&built), print_program(&parsed));
    }

    #[test]
    fn builder_lines_are_lexical() {
        let mut b = ProgramBuilder::new();
        b.assign("a", Expr::num(1));
        b.while_(Expr::num(1), |b| {
            b.assign("b", Expr::num(2));
            b.break_();
        });
        b.assign("c", Expr::num(3));
        let p = b.build().unwrap();
        for (i, &s) in p.lexical_order().iter().enumerate() {
            assert_eq!(p.stmt(s).line as usize, i + 1);
        }
    }

    #[test]
    fn labels_and_gotos() {
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.assign("x", Expr::num(0));
        let x = b.var("x");
        b.cond_goto(x, "top");
        let p = b.build().unwrap();
        assert_eq!(p.label_target(p.label("top").unwrap()), Some(p.at_line(1)));
    }

    #[test]
    fn undefined_label_fails_build() {
        let mut b = ProgramBuilder::new();
        b.goto("nowhere");
        assert!(b.build().is_err());
    }

    #[test]
    fn switch_builder() {
        let mut b = ProgramBuilder::new();
        let c = b.var("c");
        b.switch(c, |s| {
            s.case(1, |b| {
                b.assign("x", Expr::num(1));
                b.break_();
            });
            s.default(|b| {
                b.assign("x", Expr::num(0));
            });
        });
        let p = b.build().unwrap();
        assert_eq!(p.len(), 4);
        let text = print_program(&p);
        assert!(text.contains("case 1:"));
        assert!(text.contains("default:"));
    }

    #[test]
    fn misplaced_break_fails_build() {
        let mut b = ProgramBuilder::new();
        b.break_();
        assert!(b.build().is_err());
    }
}
