//! Pretty-printing of programs and residual slices.
//!
//! The printer can render a whole program or a *slice view*: only the
//! statements in a given set, with re-associated labels (the paper's final
//! step: "for each `goto L` in the slice whose target is not, associate `L`
//! with the target's nearest postdominator in the slice").

use crate::ast::*;
use std::fmt::Write as _;

/// Options controlling [`print_with_options`].
#[derive(Default)]
pub struct PrintOptions<'a> {
    /// When present, only statements accepted by the filter (or with an
    /// accepted descendant) are printed.
    pub filter: Option<&'a dyn Fn(StmtId) -> bool>,
    /// Labels to print at statements other than their original target,
    /// `None` meaning "at the very end of the program" (the label's new
    /// target is the exit). Labels listed here suppress nothing — their
    /// original carrier is expected to be filtered out.
    pub moved_labels: &'a [(Label, Option<StmtId>)],
    /// Prefix every statement with its original paper-style lexical line
    /// number (`7: goto L13;`).
    pub line_numbers: bool,
}

/// Prints the whole program in canonical form.
///
/// The output parses back to a structurally identical program (see the
/// round-trip tests).
///
/// # Examples
///
/// ```
/// use jumpslice_lang::{parse, print_program};
/// let p = parse("x=1;while(x<3){x=x+1;}")?;
/// let text = print_program(&p);
/// assert!(text.contains("while (x < 3) {"));
/// # Ok::<(), jumpslice_lang::Error>(())
/// ```
pub fn print_program(prog: &Program) -> String {
    print_with_options(prog, &PrintOptions::default())
}

/// Prints the residual program induced by `included`, re-placing the given
/// moved labels, with paper-style line numbers.
pub fn print_slice(
    prog: &Program,
    included: &dyn Fn(StmtId) -> bool,
    moved_labels: &[(Label, Option<StmtId>)],
) -> String {
    print_with_options(
        prog,
        &PrintOptions {
            filter: Some(included),
            moved_labels,
            line_numbers: true,
        },
    )
}

/// Prints with full control over filtering, label placement, and numbering.
pub fn print_with_options(prog: &Program, opts: &PrintOptions<'_>) -> String {
    let mut p = Printer {
        prog,
        opts,
        out: String::new(),
        lexical_no: prog
            .lexical_order()
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i + 1))
            .collect(),
    };
    p.block(prog.body(), 0);
    // Labels re-targeted past the last statement (their new target is the
    // program exit) print as trailing label-only lines.
    for &(l, dest) in opts.moved_labels {
        if dest.is_none() {
            let _ = writeln!(p.out, "{}:", prog.label_str(l));
        }
    }
    p.out
}

struct Printer<'a> {
    prog: &'a Program,
    opts: &'a PrintOptions<'a>,
    out: String,
    lexical_no: std::collections::HashMap<StmtId, usize>,
}

impl Printer<'_> {
    fn visible(&self, id: StmtId) -> bool {
        match self.opts.filter {
            None => true,
            Some(f) => f(id) || self.any_descendant_included(id, f),
        }
    }

    fn any_descendant_included(&self, id: StmtId, f: &dyn Fn(StmtId) -> bool) -> bool {
        let check = |block: &[StmtId]| {
            block
                .iter()
                .any(|&s| f(s) || self.any_descendant_included(s, f))
        };
        match &self.prog.stmt(id).kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => check(then_branch) || check(else_branch),
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => check(body),
            StmtKind::Switch { arms, .. } => arms.iter().any(|a| check(&a.body)),
            _ => false,
        }
    }

    fn block(&mut self, stmts: &[StmtId], depth: usize) {
        for &id in stmts {
            if self.visible(id) {
                self.stmt(id, depth);
            }
        }
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn stmt_prefix(&mut self, id: StmtId, depth: usize) {
        self.indent(depth);
        if self.opts.line_numbers {
            let _ = write!(self.out, "{:>3}: ", self.lexical_no[&id]);
        }
        // Labels re-associated to this statement come first (matching the
        // paper's Figure 16-c rendering), then the statement's own labels.
        for &(l, dest) in self.opts.moved_labels {
            if dest == Some(id) {
                let _ = write!(self.out, "{}: ", self.prog.label_str(l));
            }
        }
        for &l in &self.prog.stmt(id).labels {
            let _ = write!(self.out, "{}: ", self.prog.label_str(l));
        }
    }

    fn stmt(&mut self, id: StmtId, depth: usize) {
        self.stmt_prefix(id, depth);
        match &self.prog.stmt(id).kind {
            StmtKind::Assign { lhs, rhs } => {
                let _ = writeln!(
                    self.out,
                    "{} = {};",
                    self.prog.name_str(*lhs),
                    self.expr_str(rhs)
                );
            }
            StmtKind::Read { var } => {
                let _ = writeln!(self.out, "read({});", self.prog.name_str(*var));
            }
            StmtKind::Write { arg } => {
                let _ = writeln!(self.out, "write({});", self.expr_str(arg));
            }
            StmtKind::Skip => {
                let _ = writeln!(self.out, ";");
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let _ = writeln!(self.out, "if ({}) {{", self.expr_str(cond));
                self.block(then_branch, depth + 1);
                if else_branch.iter().any(|&s| self.visible(s)) {
                    self.indent(depth);
                    if self.opts.line_numbers {
                        self.out.push_str("     ");
                    }
                    self.out.push_str("} else {\n");
                    self.block(else_branch, depth + 1);
                }
                self.close_brace(depth);
            }
            StmtKind::While { cond, body } => {
                let _ = writeln!(self.out, "while ({}) {{", self.expr_str(cond));
                self.block(body, depth + 1);
                self.close_brace(depth);
            }
            StmtKind::DoWhile { body, cond } => {
                self.out.push_str("do {\n");
                self.block(body, depth + 1);
                self.indent(depth);
                if self.opts.line_numbers {
                    self.out.push_str("     ");
                }
                let _ = writeln!(self.out, "}} while ({});", self.expr_str(cond));
            }
            StmtKind::Switch { scrutinee, arms } => {
                let _ = writeln!(self.out, "switch ({}) {{", self.expr_str(scrutinee));
                for arm in arms {
                    for g in &arm.guards {
                        self.indent(depth + 1);
                        if self.opts.line_numbers {
                            self.out.push_str("     ");
                        }
                        match g {
                            CaseGuard::Case(v) => {
                                let _ = writeln!(self.out, "case {v}:");
                            }
                            CaseGuard::Default => {
                                let _ = writeln!(self.out, "default:");
                            }
                        }
                    }
                    self.block(&arm.body, depth + 2);
                }
                self.close_brace(depth);
            }
            StmtKind::Goto { target } => {
                let _ = writeln!(self.out, "goto {};", self.prog.label_str(*target));
            }
            StmtKind::CondGoto { cond, target } => {
                let _ = writeln!(
                    self.out,
                    "if ({}) goto {};",
                    self.expr_str(cond),
                    self.prog.label_str(*target)
                );
            }
            StmtKind::Break => {
                self.out.push_str("break;\n");
            }
            StmtKind::Continue => {
                self.out.push_str("continue;\n");
            }
            StmtKind::Return { value } => match value {
                Some(e) => {
                    let _ = writeln!(self.out, "return {};", self.expr_str(e));
                }
                None => self.out.push_str("return;\n"),
            },
        }
    }

    fn close_brace(&mut self, depth: usize) {
        self.indent(depth);
        if self.opts.line_numbers {
            self.out.push_str("     ");
        }
        self.out.push_str("}\n");
    }

    fn expr_str(&self, e: &Expr) -> String {
        let mut s = String::new();
        self.expr(e, 0, &mut s);
        s
    }

    /// Precedence-aware expression printing with minimal parentheses.
    fn expr(&self, e: &Expr, parent_prec: u8, out: &mut String) {
        match e {
            Expr::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Expr::Var(v) => out.push_str(self.prog.name_str(*v)),
            Expr::Unary(op, inner) => {
                out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                });
                self.expr(inner, 7, out);
            }
            Expr::Binary(op, l, r) => {
                let prec = bin_prec(*op);
                let need = prec < parent_prec;
                if need {
                    out.push('(');
                }
                self.expr(l, prec, out);
                let _ = write!(out, " {} ", op.symbol());
                // Right operand binds one tighter: keeps left-association on
                // reparse for non-associative cases like `a - (b - c)`.
                self.expr(r, prec + 1, out);
                if need {
                    out.push(')');
                }
            }
            Expr::Call(f, args) => {
                out.push_str(self.prog.name_str(*f));
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.expr(a, 0, out);
                }
                out.push(')');
            }
        }
    }
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let text = print_program(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let k1: Vec<_> = p1
            .lexical_order()
            .iter()
            .map(|&s| format!("{:?}", kind_shape(&p1, s)))
            .collect();
        let k2: Vec<_> = p2
            .lexical_order()
            .iter()
            .map(|&s| format!("{:?}", kind_shape(&p2, s)))
            .collect();
        assert_eq!(k1, k2, "round-trip changed structure:\n{text}");
    }

    fn kind_shape(p: &Program, s: crate::StmtId) -> &'static str {
        match &p.stmt(s).kind {
            StmtKind::Assign { .. } => "assign",
            StmtKind::Read { .. } => "read",
            StmtKind::Write { .. } => "write",
            StmtKind::Skip => "skip",
            StmtKind::If { .. } => "if",
            StmtKind::While { .. } => "while",
            StmtKind::DoWhile { .. } => "dowhile",
            StmtKind::Switch { .. } => "switch",
            StmtKind::Goto { .. } => "goto",
            StmtKind::CondGoto { .. } => "condgoto",
            StmtKind::Break => "break",
            StmtKind::Continue => "continue",
            StmtKind::Return { .. } => "return",
        }
    }

    #[test]
    fn roundtrip_structured() {
        roundtrip(
            "sum = 0; while (!eof()) { read(x); if (x <= 0) { sum = sum + f1(x); continue; } \
             sum = sum + 1; } write(sum);",
        );
    }

    #[test]
    fn roundtrip_goto() {
        roundtrip("L3: if (eof()) goto L14; x = 1; goto L3; L14: write(x);");
    }

    #[test]
    fn roundtrip_switch() {
        roundtrip("switch (c) { case 1: x = 1; break; case 2: default: x = 2; } write(x);");
    }

    #[test]
    fn roundtrip_do_while() {
        roundtrip("do { x = x - 1; } while (x > 0);");
    }

    #[test]
    fn minimal_parentheses() {
        let p = parse("x = (a + b) * c - d / (e - f);").unwrap();
        let text = print_program(&p);
        assert!(text.contains("x = (a + b) * c - d / (e - f);"), "{text}");
    }

    #[test]
    fn left_assoc_subtraction_preserved() {
        let p = parse("x = a - (b - c);").unwrap();
        let text = print_program(&p);
        assert!(text.contains("a - (b - c)"), "{text}");
        roundtrip("x = a - (b - c); y = (a - b) - c;");
    }

    #[test]
    fn filtered_print_keeps_containers() {
        let p = parse("a = 1; if (a) { b = 2; c = 3; } d = 4;").unwrap();
        let keep: Vec<crate::StmtId> = vec![p.at_line(2), p.at_line(3)];
        let text = print_slice(&p, &|s| keep.contains(&s), &[]);
        assert!(text.contains("if (a) {"));
        assert!(text.contains("b = 2;"));
        assert!(!text.contains("c = 3;"));
        assert!(!text.contains("d = 4;"));
    }

    #[test]
    fn moved_labels_print_at_new_target() {
        let p = parse("x = 1; goto L; y = 2; L: z = 3; write(z);").unwrap();
        let l = p.label("L").unwrap();
        let write = p.at_line(5);
        // Pretend the slice dropped `z = 3` and re-targeted L to the write.
        let keep = [p.at_line(1), p.at_line(2), write];
        let text = print_slice(&p, &|s| keep.contains(&s), &[(l, Some(write))]);
        assert!(text.contains("L: write(z);"), "{text}");
        assert!(!text.contains("z = 3"));
    }

    #[test]
    fn label_moved_to_exit_prints_trailing() {
        let p = parse("goto L; L: x = 1;").unwrap();
        let l = p.label("L").unwrap();
        let keep = [p.at_line(1)];
        let text = print_slice(&p, &|s| keep.contains(&s), &[(l, None)]);
        assert!(text.trim_end().ends_with("L:"), "{text}");
    }

    #[test]
    fn line_numbers_use_lexical_positions() {
        let p = parse("a = 1; while (a) { b = 2; } c = 3;").unwrap();
        let text = print_slice(&p, &|_| true, &[]);
        assert!(text.contains("  1: a = 1;"));
        assert!(text.contains("  3: b = 2;"));
        assert!(text.contains("  4: c = 3;"));
    }
}
