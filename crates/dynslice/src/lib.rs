//! Dynamic slicing over execution trajectories.
//!
//! The paper's opening motivation cites debugging with *dynamic* slicing
//! (Agrawal–DeMillo–Spafford \[1\]): instead of every statement that *may*
//! affect the criterion on *some* input, keep only the statements that
//! *did* affect it on *this* run. This crate implements trajectory-based
//! dynamic slicing on top of the workspace interpreter:
//!
//! * **dynamic data dependence** — the event that actually wrote each
//!   variable an event reads (exact, from the trace);
//! * **dynamic control dependence** — the latest earlier occurrence of a
//!   predicate the statement is statically control dependent on (the
//!   standard last-occurrence approximation; exact for the structured and
//!   flat-goto programs this workspace generates).
//!
//! The classic containment theorem connects the two worlds and is enforced
//! by this crate's property tests: every dynamic slice is contained in the
//! conventional static slice for the same criterion statement — and hence
//! in every jump-repaired slice.
//!
//! # Examples
//!
//! ```
//! use jumpslice_dynslice::{dynamic_slice, DynCriterion};
//! use jumpslice_interp::Input;
//! use jumpslice_lang::parse;
//!
//! let p = parse(
//!     "read(c);
//!      if (c > 0) { x = 1; } else { x = 2; }
//!      write(x);",
//! )?;
//! let d = dynamic_slice(&p, &Input { seed: 1, ..Input::default() }, &DynCriterion::last(p.at_line(5)));
//! // Exactly one of the two assignments executed; only it is in the slice.
//! let branches = [p.at_line(3), p.at_line(4)];
//! assert_eq!(branches.iter().filter(|&&s| d.stmts.contains(s)).count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumpslice_core::Analysis;
use jumpslice_dataflow::StmtSet;
use jumpslice_interp::{run, Input, Trajectory};
use jumpslice_lang::{Name, Program, StmtId};
use std::collections::{BTreeSet, HashMap};

/// Which execution of a statement the dynamic slice observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynCriterion {
    /// The criterion statement.
    pub stmt: StmtId,
    /// The 0-based occurrence, or `None` for the last execution.
    pub occurrence: Option<usize>,
}

impl DynCriterion {
    /// The last execution of `stmt` in the run.
    pub fn last(stmt: StmtId) -> DynCriterion {
        DynCriterion {
            stmt,
            occurrence: None,
        }
    }

    /// The `k`-th (0-based) execution of `stmt`.
    pub fn nth(stmt: StmtId, k: usize) -> DynCriterion {
        DynCriterion {
            stmt,
            occurrence: Some(k),
        }
    }
}

/// The result of [`dynamic_slice`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicSlice {
    /// Statements whose executions influenced the criterion occurrence.
    pub stmts: StmtSet,
    /// The trace event indices in the dynamic backward closure.
    pub events: BTreeSet<usize>,
    /// Whether the criterion occurrence was found in the (fuel-bounded)
    /// trace at all.
    pub criterion_found: bool,
}

/// Computes the dynamic backward slice of one criterion occurrence on one
/// input, running the program with the workspace interpreter.
///
/// Convenience over [`dynamic_slice_of_trace`] — use that form to reuse a
/// trajectory or an [`Analysis`].
pub fn dynamic_slice(prog: &Program, input: &Input, crit: &DynCriterion) -> DynamicSlice {
    let a = Analysis::new(prog);
    let traj = run(prog, input);
    dynamic_slice_of_trace(&a, &traj, crit)
}

/// Computes the dynamic backward slice over an existing trajectory.
pub fn dynamic_slice_of_trace(
    a: &Analysis<'_>,
    traj: &Trajectory,
    crit: &DynCriterion,
) -> DynamicSlice {
    let prog = a.prog();
    let n = traj.events.len();

    // Criterion event index.
    let mut occurrences = traj
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.stmt == crit.stmt)
        .map(|(i, _)| i);
    let crit_event = match crit.occurrence {
        Some(k) => occurrences.nth(k),
        None => occurrences.next_back(),
    };
    let Some(crit_event) = crit_event else {
        return DynamicSlice::default();
    };

    // Forward scan: exact dynamic data dependences and last occurrences.
    let mut last_def: HashMap<Name, usize> = HashMap::new();
    let mut last_occurrence: HashMap<StmtId, usize> = HashMap::new();
    let mut data_deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut control_dep: Vec<Option<usize>> = vec![None; n];
    for (i, e) in traj.events.iter().enumerate() {
        for u in prog.uses(e.stmt) {
            if let Some(&d) = last_def.get(&u) {
                data_deps[i].push(d);
            }
        }
        // Dynamic control dependence: the most recent occurrence of any
        // statically controlling predicate.
        control_dep[i] = a
            .pdg()
            .control()
            .deps(e.stmt)
            .iter()
            .filter_map(|p| last_occurrence.get(p).copied())
            .filter(|&j| j < i)
            .max();
        if let Some(d) = prog.defs(e.stmt) {
            last_def.insert(d, i);
        }
        last_occurrence.insert(e.stmt, i);
    }

    // Backward closure over the event graph.
    let mut events = BTreeSet::new();
    let mut work = vec![crit_event];
    while let Some(i) = work.pop() {
        if !events.insert(i) {
            continue;
        }
        work.extend(data_deps[i].iter().copied());
        if let Some(c) = control_dep[i] {
            work.push(c);
        }
    }

    let stmts = events.iter().map(|&i| traj.events[i].stmt).collect();
    DynamicSlice {
        stmts,
        events,
        criterion_found: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_core::{conventional_slice, Criterion};
    use jumpslice_lang::{parse, StmtKind};
    use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};

    fn lines(p: &Program, s: &StmtSet) -> Vec<usize> {
        let mut v: Vec<usize> = s.iter().map(|x| p.line_of(x)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn taken_branch_only() {
        let p = parse("read(c); if (c > 0) { x = 1; } else { x = 2; } write(x);").unwrap();
        // Find a seed for each polarity so both branches are covered.
        let mut seen = BTreeSet::new();
        for seed in 0..32 {
            let d = dynamic_slice(
                &p,
                &Input {
                    seed,
                    ..Input::default()
                },
                &DynCriterion::last(p.at_line(5)),
            );
            assert!(d.criterion_found);
            let then_in = d.stmts.contains(p.at_line(3));
            let else_in = d.stmts.contains(p.at_line(4));
            assert!(then_in ^ else_in, "exactly one branch executed: {d:?}");
            seen.insert(then_in);
        }
        assert_eq!(seen.len(), 2, "both polarities exercised across seeds");
    }

    #[test]
    fn loop_iterations_collapse_to_statements() {
        let p = parse("s = 0; i = 0; while (i < 4) { s = s + i; i = i + 1; } write(s);").unwrap();
        let d = dynamic_slice(&p, &Input::default(), &DynCriterion::last(p.at_line(6)));
        assert_eq!(lines(&p, &d.stmts), vec![1, 2, 3, 4, 5, 6]);
        // Many events, few statements.
        assert!(d.events.len() > d.stmts.len());
    }

    #[test]
    fn occurrence_selection() {
        let p = parse("x = 0; while (x < 3) { x = x + 1; write(x); }").unwrap();
        let w = p.at_line(4);
        let first = dynamic_slice(&p, &Input::default(), &DynCriterion::nth(w, 0));
        let last = dynamic_slice(&p, &Input::default(), &DynCriterion::last(w));
        // Both need the increment and the loop; the later occurrence has
        // (weakly) more events behind it.
        assert!(first.events.len() <= last.events.len());
        assert!(first.stmts.contains(p.at_line(3)));
    }

    #[test]
    fn missing_occurrence_reports_not_found() {
        let p = parse("x = 1; write(x);").unwrap();
        let d = dynamic_slice(&p, &Input::default(), &DynCriterion::nth(p.at_line(2), 5));
        assert!(!d.criterion_found);
        assert!(d.stmts.is_empty());
    }

    #[test]
    fn dead_input_not_in_dynamic_slice() {
        // The static slice must keep both reads (either def may reach);
        // dynamically, only the winning one is in.
        let p = parse("read(x); read(c); if (c > 0) { read(x); } write(x);").unwrap();
        let a = Analysis::new(&p);
        let stat = conventional_slice(&a, &Criterion::at_stmt(p.at_line(5)));
        assert!(stat.lines(&p).contains(&1) && stat.lines(&p).contains(&4));
        for seed in 0..16 {
            let d = dynamic_slice(
                &p,
                &Input {
                    seed,
                    ..Input::default()
                },
                &DynCriterion::last(p.at_line(5)),
            );
            let reads = [p.at_line(1), p.at_line(4)];
            let hit = reads.iter().filter(|&&s| d.stmts.contains(s)).count();
            assert_eq!(hit, 1, "exactly one read feeds x dynamically");
        }
    }

    fn containment_case(p: &Program) {
        let a = Analysis::new(p);
        let writes: Vec<StmtId> = p
            .stmt_ids()
            .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && a.is_live(s))
            .take(3)
            .collect();
        for input in Input::family(3) {
            let traj = run(p, &input);
            for &w in &writes {
                let d = dynamic_slice_of_trace(&a, &traj, &DynCriterion::last(w));
                if !d.criterion_found {
                    continue;
                }
                let stat = conventional_slice(&a, &Criterion::at_stmt(w));
                assert!(
                    d.stmts.is_subset(&stat.stmts),
                    "dynamic ⊄ static: dyn {:?} vs stat {:?}",
                    lines(p, &d.stmts),
                    stat.lines(p)
                );
            }
        }
    }

    /// The classic theorem: dynamic slices are contained in the static
    /// slice of the same criterion statement.
    #[test]
    fn dynamic_within_static_structured() {
        jumpslice_testkit::check(24, |rng| {
            let seed = rng.gen_range(0u64..200);
            let size = rng.gen_range(15usize..50);
            containment_case(&gen_structured(&GenConfig::sized(seed, size)));
        });
    }

    #[test]
    fn dynamic_within_static_unstructured() {
        jumpslice_testkit::check(24, |rng| {
            let seed = rng.gen_range(0u64..200);
            let size = rng.gen_range(10usize..35);
            containment_case(&gen_unstructured(&GenConfig {
                jump_density: 0.3,
                ..GenConfig::sized(seed, size)
            }));
        });
    }
}
