//! The condensed-vs-direct closure differential mode (`difftest --mode
//! closure`).
//!
//! `jumpslice_core::Analysis` answers dependence closures two ways: a
//! direct worklist walk over the PDG, and — once
//! `Analysis::closure_index` has been forced — a lookup into the
//! SCC-condensed reachability index. The two must be observably
//! identical: same closure sets, same slices from every registered
//! slicer (statements, traversal counts, moved labels), same chops, and
//! identical traced provenance (the recorder bypasses the condensation
//! by contract, walking raw PDG edges; this mode proves the bypass holds
//! and that every witness chain still ends at a root).
//!
//! Two sweeps per seed. The *cold* sweep compares a plain analysis
//! against a second analysis of the same program with the condensation
//! forced up front. The *edit* sweep drives a
//! [`jumpslice_incr::EditSession`] through a random edit script and,
//! after every accepted edit, forces the condensation on the session's
//! (selectively patched) analysis and holds it against a cold direct
//! analysis — a stale index surviving a re-solve would surface here.
//! Mismatches are minimized like the incremental mode's: greedy edit
//! drops, then the shared statement shrinker.

use crate::harness::{pick_criteria, DiffConfig, Family};
use crate::shrink::{is_valid_candidate, shrink};
use crate::ALGOS;
use jumpslice_core::{
    agrawal_slice_traced, chop, chop_executable, Analysis, BatchSlicer, Criterion, Why,
};
use jumpslice_incr::{random_edit, Edit, EditSession};
use jumpslice_lang::{print_program, Program};
use jumpslice_testkit::Rng;

/// Knobs for one condensed-vs-direct differential session.
#[derive(Clone, Debug)]
pub struct ClosureConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds; each seed drives one program per family.
    pub seeds: u64,
    /// Families to sweep; `None` means all three.
    pub family: Option<Family>,
    /// Approximate statements per generated program.
    pub target_stmts: usize,
    /// Goto density for the unstructured family.
    pub jump_density: f64,
    /// Maximum criteria compared per program state.
    pub max_criteria: usize,
    /// Edits attempted per seed's edit sweep (rejected edits count).
    pub edits_per_script: usize,
    /// Whether to minimize failing programs/scripts before reporting.
    pub shrink: bool,
    /// Stop after this many findings.
    pub max_findings: usize,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            start_seed: 0,
            // 100 seeds × 3 families = 300 programs per default run.
            seeds: 100,
            family: None,
            target_stmts: 30,
            jump_density: 0.3,
            max_criteria: 4,
            edits_per_script: 4,
            shrink: true,
            max_findings: 4,
        }
    }
}

impl ClosureConfig {
    /// The fixed-seed smoke configuration CI runs.
    pub fn smoke() -> ClosureConfig {
        ClosureConfig {
            seeds: 12,
            target_stmts: 25,
            ..ClosureConfig::default()
        }
    }

    fn families(&self) -> Vec<Family> {
        match self.family {
            Some(f) => vec![f],
            None => Family::ALL.to_vec(),
        }
    }

    /// Generation knobs repackaged for [`Family::generate`].
    fn gen_cfg(&self) -> DiffConfig {
        DiffConfig {
            target_stmts: self.target_stmts,
            jump_density: self.jump_density,
            ..DiffConfig::default()
        }
    }
}

/// One condensed-vs-direct violation, minimized when enabled.
#[derive(Clone, Debug)]
pub struct ClosureFinding {
    /// Seed of the generating draw.
    pub seed: u64,
    /// Family of the generating draw.
    pub family: Family,
    /// Human-readable failure description from the (shrunk) replay.
    pub detail: String,
    /// The (shrunk) program text.
    pub program: String,
    /// The (shrunk) edit script leading to the mismatching state (empty
    /// for a cold-sweep mismatch).
    pub script: Vec<Edit>,
}

/// Aggregate statistics of one condensed-vs-direct session.
#[derive(Clone, Debug, Default)]
pub struct ClosureReport {
    /// Programs swept (one per seed × family).
    pub programs: usize,
    /// Program states compared: the cold state plus one per accepted edit.
    pub states: usize,
    /// Edits accepted across all edit sweeps.
    pub edits_applied: usize,
    /// Individual equality checks executed (closure sets, slices, chops,
    /// per-statement provenance).
    pub comparisons: usize,
    /// Confirmed condensed-vs-direct mismatches.
    pub findings: Vec<ClosureFinding>,
}

/// Compares `direct` (condensation never forced) against `cond`
/// (condensation forced by the caller) on `p`: raw closures, chops, all
/// eight slicers, and traced provenance. Returns the comparison count or
/// the first mismatch.
fn compare_analyses(
    p: &Program,
    direct: &Analysis<'_>,
    cond: &Analysis<'_>,
    max_criteria: usize,
) -> Result<usize, String> {
    let stmts = pick_criteria(p, direct, max_criteria);
    if stmts.is_empty() {
        return Ok(0);
    }
    let criteria: Vec<Criterion> = stmts.iter().copied().map(Criterion::at_stmt).collect();
    let mut comparisons = 0;

    // Raw backward/forward closures, statement by statement. The direct
    // side walks the PDG explicitly so it can never fall through to a
    // condensation the batch engine might have built behind our back.
    for &c in &stmts {
        let line = p.line_of(c);
        comparisons += 2;
        if direct.pdg().backward_closure([c]) != cond.backward_closure([c]) {
            return Err(format!(
                "backward closure at line {line}: condensed ≠ direct"
            ));
        }
        if direct.pdg().forward_closure([c]) != cond.forward_closure([c]) {
            return Err(format!(
                "forward closure at line {line}: condensed ≠ direct"
            ));
        }
    }

    // Chops (plain and executable) between consecutive criteria.
    for w in stmts.windows(2) {
        let (src, sink) = (w[0], w[1]);
        let at = format!("lines {}→{}", p.line_of(src), p.line_of(sink));
        comparisons += 2;
        if chop(direct, src, sink).stmts != chop(cond, src, sink).stmts {
            return Err(format!("chop {at}: condensed ≠ direct"));
        }
        let (d, c) = (
            chop_executable(direct, src, sink),
            chop_executable(cond, src, sink),
        );
        if d.stmts != c.stmts || d.moved_labels != c.moved_labels {
            return Err(format!("executable chop {at}: condensed ≠ direct"));
        }
    }

    // Every registered slicer, through the sequential batch engine so a
    // deterministic slicer panic is a verdict, not a crash.
    let db = BatchSlicer::new(direct).with_threads(1);
    let cb = BatchSlicer::new(cond).with_threads(1);
    for algo in ALGOS {
        match (
            db.try_slice_all(algo.f, &criteria),
            cb.try_slice_all(algo.f, &criteria),
        ) {
            (Ok(d), Ok(c)) => {
                for (i, (ds, cs)) in d.iter().zip(&c).enumerate() {
                    comparisons += 1;
                    if ds.stmts != cs.stmts
                        || ds.traversals != cs.traversals
                        || ds.moved_labels != cs.moved_labels
                    {
                        return Err(format!(
                            "{} at line {}: condensed {} stmts vs direct {} stmts \
                             (traversals {} vs {})",
                            algo.name,
                            p.line_of(stmts[i]),
                            cs.len(),
                            ds.len(),
                            cs.traversals,
                            ds.traversals
                        ));
                    }
                }
            }
            // A deterministic panic in both worlds is the projection
            // fuzzer's finding, not a condensation bug.
            (Err(_), Err(_)) => {}
            (Ok(_), Err(_)) => {
                return Err(format!("{}: panics only with the condensation", algo.name));
            }
            (Err(_), Ok(_)) => {
                return Err(format!(
                    "{}: panics only without the condensation",
                    algo.name
                ));
            }
        }
    }

    // Traced provenance with the condensation enabled: the recorder must
    // bypass the index (it walks PDG edges itself), so the slice, every
    // per-statement reason, and every chain root must match the direct
    // world exactly.
    for &c in &stmts {
        let line = p.line_of(c);
        let crit = Criterion::at_stmt(c);
        let (ds, dp) = agrawal_slice_traced(direct, &crit);
        let (cs, cp) = agrawal_slice_traced(cond, &crit);
        comparisons += 1;
        if ds != cs {
            return Err(format!(
                "criterion line {line}: traced slice differs under condensation"
            ));
        }
        for s in p.stmt_ids() {
            comparisons += 1;
            if dp.why(s) != cp.why(s) {
                return Err(format!(
                    "criterion line {line}: provenance for line {} differs \
                     (condensed {:?} vs direct {:?})",
                    p.line_of(s),
                    cp.why(s),
                    dp.why(s)
                ));
            }
        }
        for s in cs.stmts.iter() {
            comparisons += 1;
            let chain = cp.chain(s).ok_or_else(|| {
                format!(
                    "criterion line {line}: sliced line {} has no witness chain \
                     under condensation",
                    p.line_of(s)
                )
            })?;
            let (_, root) = chain.last().expect("chains are non-empty");
            if !matches!(root, Why::Criterion | Why::SeedDef | Why::Jump { .. }) {
                return Err(format!(
                    "criterion line {line}: chain for line {} ends at non-root {root:?}",
                    p.line_of(s)
                ));
            }
        }
    }

    Ok(comparisons)
}

/// The cold sweep: two fresh analyses of `p`, condensation forced on one.
fn cold_sweep(p: &Program, max_criteria: usize) -> Result<usize, String> {
    let direct = Analysis::new(p);
    let cond = Analysis::new(p);
    // Force the condensation before any closure is asked for: every
    // routed closure on `cond` now answers from the index.
    cond.closure_index();
    compare_analyses(p, &direct, &cond, max_criteria)
}

/// One edit-state comparison: force the condensation on the session's
/// selectively-patched analysis, hold it against a cold direct analysis.
fn edit_sweep(session: &mut EditSession, max_criteria: usize) -> Result<usize, String> {
    let p = session.prog().clone();
    let cold = Analysis::new(&p);
    session.with_analysis(|a| {
        a.closure_index();
        compare_analyses(&p, &cold, a, max_criteria)
    })
}

/// Replays `script` on a fresh session over `p` (cold sweep first, edit
/// sweep after each accepted edit). Returns the first mismatch detail.
fn replay(p: &Program, script: &[Edit], max_criteria: usize) -> Option<String> {
    if !is_valid_candidate(p) {
        return None;
    }
    if let Err(detail) = cold_sweep(p, max_criteria) {
        return Some(detail);
    }
    let mut session = EditSession::new(p.clone());
    for edit in script {
        if session.apply(edit).is_err() {
            continue;
        }
        if let Err(detail) = edit_sweep(&mut session, max_criteria) {
            return Some(detail);
        }
    }
    None
}

/// Minimizes a failing (program, script) pair: greedy single-edit drops,
/// then the shared statement shrinker with the surviving script replayed
/// as the failure predicate.
fn shrink_pair(p: &Program, script: &[Edit], max_criteria: usize) -> (Program, Vec<Edit>) {
    let mut cur = script.to_vec();
    let fails = |q: &Program, s: &[Edit]| replay(q, s, max_criteria).is_some();

    'drop: loop {
        for i in 0..cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(p, &cand) {
                cur = cand;
                continue 'drop;
            }
        }
        break;
    }

    let small = shrink(p, &|q| fails(q, &cur));
    (small, cur)
}

/// Runs the condensed-vs-direct differential session described by `cfg`.
pub fn run_closuretest(cfg: &ClosureConfig) -> ClosureReport {
    run_closuretest_with(cfg, |_| {})
}

/// Like [`run_closuretest`], invoking `progress` after each program (the
/// binary uses this for live output).
pub fn run_closuretest_with(
    cfg: &ClosureConfig,
    mut progress: impl FnMut(&ClosureReport),
) -> ClosureReport {
    let mut report = ClosureReport::default();
    let gen_cfg = cfg.gen_cfg();

    'seeds: for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        for (fi, family) in cfg.families().into_iter().enumerate() {
            if report.findings.len() >= cfg.max_findings {
                break 'seeds;
            }
            let p = family.generate(seed, &gen_cfg);
            report.programs += 1;
            let mut script: Vec<Edit> = Vec::new();

            let mut mismatch = match cold_sweep(&p, cfg.max_criteria) {
                Ok(n) => {
                    report.states += 1;
                    report.comparisons += n;
                    None
                }
                Err(detail) => Some(detail),
            };
            if mismatch.is_none() {
                // Same rng derivation as the incremental mode, so a seed's
                // edit script is reproducible across modes.
                let mut rng = Rng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(fi as u64));
                let mut session = EditSession::new(p.clone());
                for _ in 0..cfg.edits_per_script {
                    let edit = random_edit(&mut rng, session.prog());
                    if session.apply(&edit).is_err() {
                        continue;
                    }
                    script.push(edit);
                    report.edits_applied += 1;
                    match edit_sweep(&mut session, cfg.max_criteria) {
                        Ok(n) => {
                            report.states += 1;
                            report.comparisons += n;
                        }
                        Err(detail) => {
                            mismatch = Some(detail);
                            break;
                        }
                    }
                }
            }

            if let Some(detail) = mismatch {
                let (small, small_script) = if cfg.shrink {
                    shrink_pair(&p, &script, cfg.max_criteria)
                } else {
                    (p.clone(), script.clone())
                };
                let detail = replay(&small, &small_script, cfg.max_criteria).unwrap_or(detail);
                report.findings.push(ClosureFinding {
                    seed,
                    family,
                    detail,
                    program: print_program(&small),
                    script: small_script,
                });
            }
            progress(&report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_mismatch_free() {
        let cfg = ClosureConfig {
            seeds: 4,
            target_stmts: 25,
            ..ClosureConfig::default()
        };
        let report = run_closuretest(&cfg);
        assert_eq!(report.programs, 12);
        assert!(
            report.states > report.programs,
            "edit states were swept: {report:?}"
        );
        assert!(report.edits_applied > 0, "{report:?}");
        assert!(report.comparisons > 0, "{report:?}");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn single_family_knob_restricts_the_sweep() {
        let cfg = ClosureConfig {
            seeds: 3,
            target_stmts: 20,
            family: Some(Family::Unstructured),
            ..ClosureConfig::default()
        };
        let report = run_closuretest(&cfg);
        assert_eq!(report.programs, 3);
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }
}
