//! The sparse-vs-dense differential mode (`difftest --mode sparse`).
//!
//! `jumpslice_core::agrawal_slice` dispatches to the sparse change-driven
//! Figure-7 kernel; `agrawal_slice_reference` keeps the dense round-based
//! loop. The two must be bit-identical: same statements, same
//! `traversals`, same `moved_labels`, and — through the traced pair —
//! identical provenance (the same `Why`, including the admission round and
//! the npd/nls pair, for every statement). This module sweeps seeded
//! programs from the three projection-fuzzer families and asserts exactly
//! that; a mismatch is shrunk with the shared statement shrinker before
//! reporting.

use crate::harness::{pick_criteria, DiffConfig, Family};
use crate::shrink::{is_valid_candidate, shrink};
use jumpslice_core::{
    agrawal_slice, agrawal_slice_reference, agrawal_slice_traced, agrawal_slice_traced_reference,
    Analysis, Criterion,
};
use jumpslice_lang::{print_program, Program};

/// Knobs for one sparse-vs-dense differential session.
#[derive(Clone, Debug)]
pub struct SparseConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds; each seed drives one program per family.
    pub seeds: u64,
    /// Families to sweep; `None` means all three.
    pub family: Option<Family>,
    /// Approximate statements per generated program.
    pub target_stmts: usize,
    /// Goto density for the unstructured family.
    pub jump_density: f64,
    /// Maximum criteria compared per program.
    pub max_criteria: usize,
    /// Whether to minimize failing programs before reporting.
    pub shrink: bool,
    /// Stop after this many findings.
    pub max_findings: usize,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            start_seed: 0,
            // 100 seeds × 3 families = 300 programs per default run.
            seeds: 100,
            family: None,
            target_stmts: 30,
            jump_density: 0.3,
            max_criteria: 4,
            shrink: true,
            max_findings: 4,
        }
    }
}

impl SparseConfig {
    /// The fixed-seed smoke configuration CI runs.
    pub fn smoke() -> SparseConfig {
        SparseConfig {
            seeds: 12,
            target_stmts: 25,
            ..SparseConfig::default()
        }
    }

    fn families(&self) -> Vec<Family> {
        match self.family {
            Some(f) => vec![f],
            None => Family::ALL.to_vec(),
        }
    }

    /// Generation knobs repackaged for [`Family::generate`].
    fn gen_cfg(&self) -> DiffConfig {
        DiffConfig {
            target_stmts: self.target_stmts,
            jump_density: self.jump_density,
            ..DiffConfig::default()
        }
    }
}

/// One sparse-vs-dense violation, minimized when enabled.
#[derive(Clone, Debug)]
pub struct SparseFinding {
    /// Seed of the generating draw.
    pub seed: u64,
    /// Family of the generating draw.
    pub family: Family,
    /// Human-readable failure description from the (shrunk) replay.
    pub detail: String,
    /// The (shrunk) program text.
    pub program: String,
}

/// Aggregate statistics of one sparse-vs-dense session.
#[derive(Clone, Debug, Default)]
pub struct SparseReport {
    /// Programs swept (one per seed × family).
    pub programs: usize,
    /// Criteria compared across all programs.
    pub criteria: usize,
    /// Individual equality checks executed (slice sets, traversal counts,
    /// moved labels, per-statement provenance).
    pub comparisons: usize,
    /// Confirmed sparse-vs-dense mismatches.
    pub findings: Vec<SparseFinding>,
}

/// Sweeps one program: every picked criterion, plain and traced, sparse
/// against dense. Returns `(criteria, comparisons)` or the first mismatch.
fn sweep(p: &Program, max_criteria: usize) -> Result<(usize, usize), String> {
    let a = Analysis::new(p);
    let stmts = pick_criteria(p, &a, max_criteria);
    let mut comparisons = 0;
    for &c in &stmts {
        let line = p.line_of(c);
        let crit = Criterion::at_stmt(c);

        let sparse = agrawal_slice(&a, &crit);
        let dense = agrawal_slice_reference(&a, &crit);
        comparisons += 3;
        if sparse.stmts != dense.stmts {
            return Err(format!(
                "criterion line {line}: sparse slice has {} stmts, dense {}",
                sparse.len(),
                dense.len()
            ));
        }
        if sparse.traversals != dense.traversals {
            return Err(format!(
                "criterion line {line}: sparse took {} traversals, dense {}",
                sparse.traversals, dense.traversals
            ));
        }
        if sparse.moved_labels != dense.moved_labels {
            return Err(format!(
                "criterion line {line}: moved-label sets differ \
                 (sparse {:?} vs dense {:?})",
                sparse.moved_labels, dense.moved_labels
            ));
        }

        let (ts, tp) = agrawal_slice_traced(&a, &crit);
        let (rs, rp) = agrawal_slice_traced_reference(&a, &crit);
        comparisons += 1;
        if ts != rs {
            return Err(format!(
                "criterion line {line}: traced sparse and traced dense slices differ"
            ));
        }
        for s in p.stmt_ids() {
            comparisons += 1;
            if tp.why(s) != rp.why(s) {
                return Err(format!(
                    "criterion line {line}: provenance for line {} differs \
                     (sparse {:?} vs dense {:?})",
                    p.line_of(s),
                    tp.why(s),
                    rp.why(s)
                ));
            }
        }
    }
    Ok((stmts.len(), comparisons))
}

/// The sweep as a shrink predicate: does `p` still expose a mismatch?
fn mismatch(p: &Program, max_criteria: usize) -> Option<String> {
    if !is_valid_candidate(p) {
        return None;
    }
    sweep(p, max_criteria).err()
}

/// Runs the sparse-vs-dense differential session described by `cfg`.
pub fn run_sparsetest(cfg: &SparseConfig) -> SparseReport {
    run_sparsetest_with(cfg, |_| {})
}

/// Like [`run_sparsetest`], invoking `progress` after each program (the
/// binary uses this for live output).
pub fn run_sparsetest_with(
    cfg: &SparseConfig,
    mut progress: impl FnMut(&SparseReport),
) -> SparseReport {
    let mut report = SparseReport::default();
    let gen_cfg = cfg.gen_cfg();

    'seeds: for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        for family in cfg.families() {
            if report.findings.len() >= cfg.max_findings {
                break 'seeds;
            }
            let p = family.generate(seed, &gen_cfg);
            report.programs += 1;
            match sweep(&p, cfg.max_criteria) {
                Ok((criteria, comparisons)) => {
                    report.criteria += criteria;
                    report.comparisons += comparisons;
                }
                Err(detail) => {
                    let small = if cfg.shrink {
                        shrink(&p, &|q| mismatch(q, cfg.max_criteria).is_some())
                    } else {
                        p.clone()
                    };
                    let detail = mismatch(&small, cfg.max_criteria).unwrap_or(detail);
                    report.findings.push(SparseFinding {
                        seed,
                        family,
                        detail,
                        program: print_program(&small),
                    });
                }
            }
            progress(&report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_mismatch_free() {
        let cfg = SparseConfig {
            seeds: 6,
            target_stmts: 25,
            ..SparseConfig::default()
        };
        let report = run_sparsetest(&cfg);
        assert_eq!(report.programs, 18);
        assert!(report.criteria > 0, "{report:?}");
        assert!(report.comparisons > report.criteria, "{report:?}");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn single_family_knob_restricts_the_sweep() {
        let cfg = SparseConfig {
            seeds: 3,
            target_stmts: 20,
            family: Some(Family::Unstructured),
            ..SparseConfig::default()
        };
        let report = run_sparsetest(&cfg);
        assert_eq!(report.programs, 3);
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }
}
