//! Greedy counterexample minimization.
//!
//! Given a program that exhibits a failure (per an arbitrary predicate),
//! the shrinker alternates two reduction phases until neither makes
//! progress:
//!
//! 1. **Subtree deletion** — drop one statement together with its nested
//!    block, render the survivor through the pretty-printer's filter, and
//!    reparse. Printing-and-reparsing sidesteps interner surgery: labels on
//!    deleted carriers vanish, and a kept `goto` to a vanished label simply
//!    fails validation, rejecting the candidate.
//! 2. **Expression simplification** — replace one statement's expression
//!    with a strictly smaller one (`0`, `1`, or an operand) via a full
//!    program rebuild (`rewrite.rs`).
//!
//! Every candidate must stay *valid fuzzing material*: it parses, every
//! statement reaches the exit (postdominators exist — `Analysis` requires
//! this), every statement is reachable, and at least one live `write`
//! remains to serve as a slicing criterion. Only then is the failure
//! predicate consulted.

use crate::rewrite::{expr_size, replace_expr, simpler_candidates, stmt_expr};
use jumpslice_cfg::Cfg;
use jumpslice_lang::{parse, print_with_options, PrintOptions, Program, StmtKind, Structure};

/// Upper bound on candidate evaluations per shrink run, so a pathological
/// predicate cannot stall the whole fuzzing session.
const MAX_CANDIDATES: usize = 4_000;

/// Checks that a candidate is still usable by the harness: every statement
/// reaches the exit (`Analysis` requires it — postdominators must exist)
/// and at least one *reachable* `write` remains to slice at. Dead code is
/// allowed: the generators emit it (a `break` after a `break`) and several
/// pinned bugs live exactly there.
pub fn is_valid_candidate(p: &Program) -> bool {
    if p.is_empty() {
        return false;
    }
    let c = Cfg::build(p);
    if !c.all_reach_exit() {
        return false;
    }
    let live = c.reachable();
    p.stmt_ids()
        .any(|s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && live[c.node(s).index()])
}

/// The candidate program with statement `victim` (and its nested block)
/// deleted, or `None` if the result does not survive reparse + validation.
fn drop_subtree(
    p: &Program,
    structure: &Structure,
    victim: jumpslice_lang::StmtId,
) -> Option<Program> {
    let keep = |s: jumpslice_lang::StmtId| s != victim && !structure.contains(victim, s);
    let text = print_with_options(
        p,
        &PrintOptions {
            filter: Some(&keep),
            moved_labels: &[],
            line_numbers: false,
        },
    );
    let q = parse(&text).ok()?;
    is_valid_candidate(&q).then_some(q)
}

/// Greedily minimizes `p` while `fails` keeps holding. Returns the smallest
/// program reached (possibly `p` itself, cloned, when nothing could be
/// removed).
pub fn shrink(p: &Program, fails: &dyn Fn(&Program) -> bool) -> Program {
    let mut cur = p.clone();
    let mut budget = MAX_CANDIDATES;
    loop {
        let mut progressed = false;

        // Phase 1: subtree deletion, largest subtrees first so one accepted
        // candidate can erase many statements at once.
        'deletion: loop {
            let structure = Structure::of(&cur);
            let mut victims: Vec<_> = cur.stmt_ids().collect();
            victims.sort_by_key(|&v| {
                std::cmp::Reverse(cur.stmt_ids().filter(|&s| structure.contains(v, s)).count())
            });
            for v in victims {
                if budget == 0 {
                    return cur;
                }
                budget -= 1;
                if let Some(q) = drop_subtree(&cur, &structure, v) {
                    if q.len() < cur.len() && fails(&q) {
                        cur = q;
                        progressed = true;
                        continue 'deletion;
                    }
                }
            }
            break;
        }

        // Phase 2: expression simplification.
        'simplify: loop {
            let stmts: Vec<_> = cur.stmt_ids().collect();
            for s in stmts {
                let Some(e) = stmt_expr(&cur, s) else {
                    continue;
                };
                let orig_size = expr_size(e);
                for cand in simpler_candidates(e) {
                    if budget == 0 {
                        return cur;
                    }
                    budget -= 1;
                    if let Some(q) = replace_expr(&cur, s, &cand) {
                        let shrunk = stmt_expr(&q, s)
                            .map(expr_size)
                            .is_some_and(|n| n < orig_size);
                        if shrunk && is_valid_candidate(&q) && fails(&q) {
                            cur = q;
                            progressed = true;
                            continue 'simplify;
                        }
                    }
                }
            }
            break;
        }

        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_core() {
        // Predicate: program still writes the variable `bad`.
        let p = parse(
            "read(a);
             read(b);
             c = a + b;
             if (a > 0) { c = c * 2; }
             while (!eof()) { b = b + 1; }
             bad = 7;
             write(bad);
             write(c);",
        )
        .unwrap();
        let fails = |q: &Program| {
            q.name("bad")
                .map(|n| q.stmt_ids().any(|s| q.defs(s) == Some(n)))
                .unwrap_or(false)
        };
        assert!(fails(&p));
        let small = shrink(&p, &fails);
        assert!(fails(&small));
        // Everything except the `bad` assignment and one write is noise.
        assert!(
            small.len() <= 3,
            "{}",
            jumpslice_lang::print_program(&small)
        );
    }

    #[test]
    fn expression_simplification_kicks_in() {
        let p = parse("read(a); x = a * 3 + f1(a); write(x);").unwrap();
        // Predicate: some assignment to x exists.
        let fails = |q: &Program| {
            q.name("x")
                .map(|n| q.stmt_ids().any(|s| q.defs(s) == Some(n)))
                .unwrap_or(false)
        };
        let small = shrink(&p, &fails);
        let text = jumpslice_lang::print_program(&small);
        assert!(
            !text.contains("f1"),
            "call should be simplified away: {text}"
        );
    }

    #[test]
    fn invalid_candidates_are_rejected() {
        // Dropping the label's carrier would orphan the goto; the shrinker
        // must keep the program consistent at every step.
        let p = parse("read(x); if (x > 0) goto L; x = 0; L: write(x);").unwrap();
        let fails = |q: &Program| q.stmt_ids().count() >= 2;
        let small = shrink(&p, &fails);
        assert!(is_valid_candidate(&small));
    }
}
