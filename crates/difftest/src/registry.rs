//! The slicer registry: every algorithm the workspace implements, tagged
//! with where the paper (and this repo's property-test suite) claims it is
//! sound, plus the inter-slice lattice relations the differential harness
//! cross-checks.
//!
//! The soundness scopes are deliberately exactly the claims the existing
//! test suite pins (`tests/soundness.rs`, `tests/equivalence.rs`): the
//! fuzzer's job is to hunt for violations of *established* expectations,
//! not to invent new ones that would drown real bugs in noise.

use jumpslice_core::baselines::{ball_horwitz_slice, gallagher_slice, jzr_slice, lyle_slice};
use jumpslice_core::{
    agrawal_slice, conservative_slice, conventional_slice, structured_slice, SliceFn,
};

/// Program classes a claim can be scoped to, ordered by inclusion:
/// every paper-fragment program is structured, every structured program is
/// a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Structured programs (no gotos) restricted to the paper's own
    /// constructs — no `do-while`, no `switch`. On these, the suite pins
    /// precision *equalities* (Fig 7 == Ball–Horwitz, Fig 12 == Fig 7).
    PaperFragment,
    /// Structured in the paper's §4 sense: jumps are only
    /// `break`/`continue`/`return` ([`jumpslice_core::is_structured`]).
    Structured,
    /// Any valid program, gotos included.
    All,
}

impl Scope {
    /// Whether a claim scoped to `self` applies to a program of class
    /// `program_scope` (the program's *most specific* class).
    pub fn covers(self, program_scope: Scope) -> bool {
        // A PaperFragment claim applies only to paper-fragment programs; an
        // All claim applies everywhere.
        program_scope <= self
    }
}

/// A registered slicing algorithm.
#[derive(Clone, Copy)]
pub struct Algo {
    /// Stable display name, matching the suite's `tests/equivalence.rs`
    /// table.
    pub name: &'static str,
    /// The slicer.
    pub f: SliceFn,
    /// Where the slicer *must* pass the projection oracle. `None` means the
    /// algorithm is expected-unsound (the paper's §5/§6 counterexample
    /// material): the oracle still runs, and failures are tallied as
    /// expected rather than reported as findings.
    pub sound_on: Option<Scope>,
}

impl std::fmt::Debug for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Algo")
            .field("name", &self.name)
            .field("sound_on", &self.sound_on)
            .finish()
    }
}

/// Every slicer in the workspace: the four paper algorithms and the four
/// baselines.
pub const ALGOS: &[Algo] = &[
    Algo {
        name: "conventional",
        f: conventional_slice,
        // §2: ignores jump statements entirely — the paper's motivating
        // counterexample (Figure 3-b). Generated programs always contain
        // jumps, so no soundness claim anywhere.
        sound_on: None,
    },
    Algo {
        name: "fig7-agrawal",
        f: agrawal_slice,
        sound_on: Some(Scope::All),
    },
    Algo {
        name: "fig12-structured",
        f: structured_slice,
        // §4's simplification is only claimed for structured programs.
        sound_on: Some(Scope::Structured),
    },
    Algo {
        name: "fig13-conservative",
        f: conservative_slice,
        // The suite pins soundness on structured programs
        // (tests/soundness.rs::fig12_and_fig13_are_sound_on_structured);
        // on goto programs it still runs but carries no pinned claim.
        sound_on: Some(Scope::Structured),
    },
    Algo {
        name: "ball-horwitz",
        f: ball_horwitz_slice,
        sound_on: Some(Scope::All),
    },
    Algo {
        name: "lyle",
        f: lyle_slice,
        // The paper hedges on Lyle's in-between-jump rule ("except in some
        // special cases", §5) and the baseline inherits the hedge — see
        // crates/core/src/baselines/lyle.rs; no universal claim to enforce.
        sound_on: None,
    },
    Algo {
        name: "gallagher",
        f: gallagher_slice,
        // Known-unsound: a break whose target block misses the slice
        // (tests/soundness.rs::gallagher_unsound_on_structured_break).
        sound_on: None,
    },
    Algo {
        name: "jzr",
        f: jzr_slice,
        // Known-unsound on the paper's Figure 8.
        sound_on: None,
    },
];

/// How two slices must relate on programs in a relation's scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelKind {
    /// `sub.stmts ⊆ sup.stmts`.
    Subset,
    /// `sub.stmts == sup.stmts`.
    Equal,
}

/// A pinned lattice relation between two registered slicers.
#[derive(Clone, Copy, Debug)]
pub struct Relation {
    /// The (expected-) smaller slice's algorithm name.
    pub sub: &'static str,
    /// The (expected-) larger slice's algorithm name.
    pub sup: &'static str,
    /// Subset or equality.
    pub kind: RelKind,
    /// Program class the relation is claimed on.
    pub scope: Scope,
}

/// The lattice relations the property-test suite establishes
/// (`tests/equivalence.rs`); the fuzzer re-checks each on every generated
/// program in scope.
pub const RELATIONS: &[Relation] = &[
    // Figure 7 conservatively includes everything Ball–Horwitz keeps.
    Relation {
        sub: "ball-horwitz",
        sup: "fig7-agrawal",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    // §4: the structured simplification never exceeds the conservative one.
    Relation {
        sub: "fig12-structured",
        sup: "fig13-conservative",
        kind: RelKind::Subset,
        scope: Scope::Structured,
    },
    // The conventional closure seeds every jump-aware algorithm.
    Relation {
        sub: "conventional",
        sup: "fig7-agrawal",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    Relation {
        sub: "conventional",
        sup: "ball-horwitz",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    Relation {
        sub: "conventional",
        sup: "lyle",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    Relation {
        sub: "conventional",
        sup: "gallagher",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    Relation {
        sub: "conventional",
        sup: "jzr",
        kind: RelKind::Subset,
        scope: Scope::All,
    },
    // On the paper's own language fragment the precision equalities hold.
    Relation {
        sub: "fig7-agrawal",
        sup: "ball-horwitz",
        kind: RelKind::Equal,
        scope: Scope::PaperFragment,
    },
    Relation {
        sub: "fig12-structured",
        sup: "fig7-agrawal",
        kind: RelKind::Equal,
        scope: Scope::PaperFragment,
    },
];

/// Looks an algorithm up by its registry name.
pub fn algo(name: &str) -> Option<&'static Algo> {
    ALGOS.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_reference_registered_algos() {
        for r in RELATIONS {
            assert!(algo(r.sub).is_some(), "unknown sub {}", r.sub);
            assert!(algo(r.sup).is_some(), "unknown sup {}", r.sup);
        }
    }

    #[test]
    fn scope_inclusion() {
        assert!(Scope::All.covers(Scope::PaperFragment));
        assert!(Scope::All.covers(Scope::Structured));
        assert!(Scope::All.covers(Scope::All));
        assert!(Scope::Structured.covers(Scope::PaperFragment));
        assert!(Scope::Structured.covers(Scope::Structured));
        assert!(!Scope::Structured.covers(Scope::All));
        assert!(!Scope::PaperFragment.covers(Scope::Structured));
    }

    #[test]
    fn all_eight_slicers_registered() {
        assert_eq!(ALGOS.len(), 8);
        let mut names: Vec<_> = ALGOS.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "duplicate registry names");
    }
}
