//! Rendering a finding as a self-contained `#[test]`.
//!
//! The emitted test depends only on the public facade (`jumpslice::prelude`
//! plus the baseline slicers) and embeds the shrunk program as a string
//! literal, so it can be pasted into `tests/` verbatim. For violations of
//! pinned claims the test asserts the *correct* behavior (it fails until
//! the slicer is fixed, then pins the fix); for the paper's known-unsound
//! algorithms it asserts that the oracle *catches* the failure, pinning the
//! counterexample itself.

use crate::harness::{Family, FindingKind};

/// The fully qualified call for a registry algorithm name.
fn algo_path(name: &str) -> Option<&'static str> {
    Some(match name {
        "conventional" => "conventional_slice",
        "fig7-agrawal" => "agrawal_slice",
        "fig12-structured" => "structured_slice",
        "fig13-conservative" => "conservative_slice",
        "ball-horwitz" => "ball_horwitz_slice",
        "lyle" => "lyle_slice",
        "gallagher" => "gallagher_slice",
        "jzr" => "jzr_slice",
        _ => return None,
    })
}

fn test_name(algo: &str, kind: FindingKind, seed: u64, family: Family) -> String {
    let slug: String = algo
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!(
        "difftest_{}_{}_{}_seed{}",
        slug,
        kind.name(),
        family.name().replace('-', "_"),
        seed
    )
}

/// Renders a regression test for a finding. `line` is the 1-based
/// criterion line in `program`; when absent (the failure did not
/// re-localize), the last line is used.
pub fn regression_test(
    program: &str,
    algo: &str,
    kind: FindingKind,
    line: Option<usize>,
    expected: bool,
    seed: u64,
    family: Family,
) -> String {
    let name = test_name(algo, kind, seed, family);
    let crit_line = line.unwrap_or_else(|| program.lines().count().max(1));
    let header = format!(
        "/// Shrunk by the difftest fuzzer (seed {seed}, {} family).\n#[test]\nfn {name}() {{\n    let p = parse(\n        \"{}\",\n    )\n    .unwrap();\n    let a = Analysis::new(&p);\n    let crit = Criterion::at_stmt(p.at_line({crit_line}));\n",
        family.name(),
        escape(program),
    );
    let body = match (kind, algo_path(algo)) {
        (FindingKind::Dynamic, _) => {
            "    let stat = conventional_slice(&a, &crit);\n    for input in Input::family(8) {\n        let d = jumpslice_dynslice::dynamic_slice(\n            &p,\n            &input,\n            &jumpslice_dynslice::DynCriterion::last(crit.stmt),\n        );\n        if d.criterion_found {\n            assert!(d.stmts.is_subset(&stat.stmts));\n        }\n    }\n".to_owned()
        }
        (FindingKind::Lattice, _) => {
            // algo is "sub⊆sup"; split it back apart.
            let mut parts = algo.split('⊆');
            let sub = algo_path(parts.next().unwrap_or_default()).unwrap_or("agrawal_slice");
            let sup = algo_path(parts.next().unwrap_or_default()).unwrap_or("agrawal_slice");
            format!(
                "    let lo = {sub}(&a, &crit);\n    let hi = {sup}(&a, &crit);\n    assert!(lo.stmts.is_subset(&hi.stmts));\n"
            )
        }
        (FindingKind::Panic, Some(path)) => {
            format!("    let _ = {path}(&a, &crit); // must not panic\n")
        }
        (_, Some(path)) if expected => format!(
            "    let s = {path}(&a, &crit);\n    // Known-unsound algorithm: the projection oracle must catch it.\n    assert!(check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).is_err());\n"
        ),
        (_, Some(path)) => format!(
            "    let s = {path}(&a, &crit);\n    check_projection(&p, &s.stmts, &s.moved_labels, &Input::family(8)).unwrap();\n"
        ),
        (_, None) => "    // unknown algorithm name; fill in manually\n".to_owned(),
    };
    format!("{header}{body}}}\n")
}

fn escape(program: &str) -> String {
    let mut out = String::new();
    for (i, l) in program.lines().enumerate() {
        if i > 0 {
            out.push_str("\\n\\\n         ");
        }
        out.push_str(&l.replace('\\', "\\\\").replace('"', "\\\""));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_compilable_shape() {
        let t = regression_test(
            "read(x);\nwrite(x);",
            "gallagher",
            FindingKind::Projection,
            Some(2),
            true,
            7,
            Family::Structured,
        );
        assert!(t.contains("#[test]"), "{t}");
        assert!(t.contains("fn difftest_gallagher_projection_structured_seed7()"));
        assert!(t.contains("at_line(2)"));
        assert!(t.contains("is_err"), "expected finding pins the catch: {t}");
    }

    #[test]
    fn unexpected_findings_pin_the_fix() {
        let t = regression_test(
            "write(1);",
            "fig7-agrawal",
            FindingKind::Projection,
            Some(1),
            false,
            0,
            Family::PaperFragment,
        );
        assert!(t.contains(".unwrap()"), "{t}");
    }
}
