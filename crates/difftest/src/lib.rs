//! Differential correctness fuzzing for the workspace's eight slicers.
//!
//! The paper's central claim is behavioral: a slice, executed as a residual
//! program, reproduces the original trajectory projected onto the slice.
//! This crate industrializes that check. Seeded generators
//! ([`jumpslice_progen`]) produce jump-heavy programs; every registered
//! slicer ([`registry::ALGOS`]) sweeps a family of criteria through the
//! warm batch engine; and four properties are verified per (program,
//! criterion, algorithm): projection-oracle correctness, the pinned
//! subset/equality lattice between algorithms, containment of dynamic
//! slices in the conventional static slice, and freedom from panics.
//! Failures are greedily minimized ([`shrink`]) and rendered as
//! ready-to-commit regression tests ([`emit`]). A second mode
//! ([`run_incrtest`]) fuzzes the incremental edit-and-reslice engine:
//! random edit scripts over the same program families, with every slicer's
//! session result checked for identity against a from-scratch analysis
//! after every step, and failing scripts minimized ([`shrink_script`]).
//! A third mode ([`run_sparsetest`]) pits the sparse change-driven
//! Figure-7 kernel against the retained dense reference loop, demanding
//! identical slices, traversal counts, moved labels, and traced
//! provenance on every generated program. A fourth mode
//! ([`run_closuretest`]) holds the SCC-condensed closure engine against
//! the direct PDG walk — identical closures, slices, chops, and traced
//! provenance on every generated program *and* across incremental edit
//! states, so a condensation staleness bug surviving an `EditSession`
//! re-solve would be caught.
//!
//! In the tradition of differential testing of program analyzers (Chalupa's
//! cross-checked control-dependence algorithms; SymPas's
//! execution-based slicer evaluation), disagreement between algorithms is
//! treated as signal: the paper proves how the eight slicers must relate,
//! and any generated program where they don't is a bug in somebody.
//!
//! # Examples
//!
//! ```
//! use jumpslice_difftest::{run_difftest, DiffConfig};
//! let report = run_difftest(&DiffConfig {
//!     seeds: 2,
//!     num_inputs: 3,
//!     ..DiffConfig::default()
//! });
//! assert_eq!(report.hard_findings().count(), 0);
//! assert!(report.verified > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closure;
pub mod emit;
mod harness;
mod incr;
pub mod registry;
mod rewrite;
mod shrink;
mod sparse;

pub use closure::{
    run_closuretest, run_closuretest_with, ClosureConfig, ClosureFinding, ClosureReport,
};
pub use harness::{
    run_difftest, run_difftest_with, scope_of, DiffConfig, DiffReport, Family, Finding, FindingKind,
};
pub use incr::{
    run_incrtest, run_incrtest_with, shrink_script, IncrConfig, IncrFinding, IncrReport,
};
pub use registry::{Algo, RelKind, Relation, Scope, ALGOS, RELATIONS};
pub use rewrite::{expr_size, replace_expr};
pub use shrink::{is_valid_candidate, shrink};
pub use sparse::{run_sparsetest, run_sparsetest_with, SparseConfig, SparseFinding, SparseReport};
