//! The differential fuzzing loop.
//!
//! For each seed, a program is generated per enabled [`Family`], every
//! registered slicer sweeps a family of criteria through the warm
//! [`BatchSlicer`], and three properties are checked per (program,
//! criterion, algorithm):
//!
//! 1. **projection** — the residual program reproduces the projected
//!    trajectory ([`jumpslice_interp::check_projection`]), with fuel
//!    exhaustion counted as *inconclusive*, never as a pass;
//! 2. **lattice** — the subset/equality relations of
//!    [`crate::registry::RELATIONS`] hold between slice pairs;
//! 3. **no panics** — a slicer that panics is caught per criterion
//!    ([`jumpslice_core::BatchSlicer::try_slice_all`]) and attributed.
//!
//! Violations of *pinned* claims become [`Finding`]s, are greedily shrunk
//! (`shrink.rs`), and carry a ready-to-commit regression test. Failures of
//! algorithms the paper itself calls unsound (conventional on jump
//! programs, Gallagher, JZR, Lyle's hedge) are tallied as
//! `expected_failures` — or, with [`DiffConfig::record_expected`], reported
//! as non-fatal findings so their shrunk counterexamples can be harvested
//! for the regression corpus.

use crate::registry::{Algo, RelKind, Relation, Scope, ALGOS, RELATIONS};
use crate::shrink::{is_valid_candidate, shrink};
use crate::{emit, registry};
use jumpslice_core::{is_structured, Analysis, BatchSlicer, Criterion, Slice};
use jumpslice_dynslice::{dynamic_slice_of_trace, DynCriterion};
use jumpslice_interp::{check_projection, run, Input, ProjectionError};
use jumpslice_lang::{print_program, Program, StmtId, StmtKind};
use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Program families the fuzzer draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Structured programs restricted to the paper's fragment (no
    /// `do-while`, no `switch`).
    PaperFragment,
    /// Structured programs with the workspace's extensions enabled.
    Structured,
    /// Figure-3/8/10-style goto soup.
    Unstructured,
}

impl Family {
    /// All three families, generation order.
    pub const ALL: [Family; 3] = [
        Family::PaperFragment,
        Family::Structured,
        Family::Unstructured,
    ];

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Family::PaperFragment => "paper-fragment",
            Family::Structured => "structured",
            Family::Unstructured => "unstructured",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Generates this family's program for a seed.
    pub fn generate(self, seed: u64, cfg: &DiffConfig) -> Program {
        match self {
            Family::PaperFragment => {
                gen_structured(&GenConfig::paper_fragment(seed, cfg.target_stmts))
            }
            Family::Structured => gen_structured(&GenConfig::sized(seed, cfg.target_stmts)),
            Family::Unstructured => gen_unstructured(
                &GenConfig::sized(seed, cfg.target_stmts).with_jump_density(cfg.jump_density),
            ),
        }
    }
}

/// Fuzzing-session knobs.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds; each seed generates one program per family.
    pub seeds: u64,
    /// Families to fuzz; `None` means all three.
    pub family: Option<Family>,
    /// Approximate statements per generated program.
    pub target_stmts: usize,
    /// Goto density for the unstructured family.
    pub jump_density: f64,
    /// Maximum criteria (live `write`s) swept per program.
    pub max_criteria: usize,
    /// Inputs per projection check.
    pub num_inputs: usize,
    /// Interpreter fuel per run. Exhaustion yields an *inconclusive*
    /// verdict, so this trades wall-clock against conclusiveness.
    pub fuel: u64,
    /// Worker threads for the batch slicer.
    pub threads: usize,
    /// Whether to minimize failing programs before reporting.
    pub shrink: bool,
    /// Report expected-unsound failures as (non-fatal, shrunk) findings
    /// instead of only counting them.
    pub record_expected: bool,
    /// Stop after this many findings.
    pub max_findings: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            start_seed: 0,
            seeds: 25,
            family: None,
            target_stmts: 30,
            jump_density: 0.3,
            max_criteria: 4,
            num_inputs: 5,
            fuel: 20_000,
            threads: 1,
            shrink: true,
            record_expected: false,
            max_findings: 8,
        }
    }
}

impl DiffConfig {
    /// The fixed-seed smoke configuration CI runs: small but covering all
    /// three families and every registered slicer.
    pub fn smoke() -> DiffConfig {
        DiffConfig {
            seeds: 8,
            target_stmts: 25,
            ..DiffConfig::default()
        }
    }

    fn families(&self) -> Vec<Family> {
        match self.family {
            Some(f) => vec![f],
            None => Family::ALL.to_vec(),
        }
    }

    fn inputs(&self) -> Vec<Input> {
        Input::family(self.num_inputs)
            .into_iter()
            .map(|i| Input {
                fuel: self.fuel,
                ..i
            })
            .collect()
    }
}

/// What kind of property a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// The residual program's projected trajectory differs from the
    /// original's.
    Projection,
    /// The residual program could not run (stranded jump).
    Stuck,
    /// The slicer panicked.
    Panic,
    /// A pinned subset/equality relation between two slicers failed.
    Lattice,
    /// A dynamic slice escaped the conventional static slice of the same
    /// criterion (the classic containment theorem).
    Dynamic,
}

impl FindingKind {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Projection => "projection",
            FindingKind::Stuck => "stuck",
            FindingKind::Panic => "panic",
            FindingKind::Lattice => "lattice",
            FindingKind::Dynamic => "dynamic",
        }
    }
}

/// One confirmed (and, when enabled, shrunk) counterexample.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Seed of the generating draw.
    pub seed: u64,
    /// Family of the generating draw.
    pub family: Family,
    /// Offending algorithm (for lattice findings, the `sub ⊆ sup` pair
    /// rendered as `"sub⊆sup"`).
    pub algo: String,
    /// Violated property.
    pub kind: FindingKind,
    /// Whether the violation matches a *known* unsoundness (the paper's own
    /// counterexample material). Expected findings are informational;
    /// unexpected ones are bugs.
    pub expected: bool,
    /// Human-readable failure description on the (shrunk) program.
    pub detail: String,
    /// The (shrunk) program text.
    pub program: String,
    /// 1-based criterion line in the (shrunk) program, when applicable.
    pub criterion_line: Option<usize>,
    /// A self-contained `#[test]` reproducing the finding.
    pub regression_test: String,
    /// Instrumentation trace (obs event JSON) of the probe re-check on the
    /// shrunk program: every phase, cache access, fixpoint round, and jump
    /// admission leading to the failure. Uploaded as a nightly CI artifact.
    pub trace_json: String,
}

/// Aggregate statistics of one fuzzing session.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Programs generated and swept.
    pub programs: usize,
    /// (program, criterion) pairs swept (each checked under every
    /// registered slicer).
    pub criterion_cases: usize,
    /// (program, criterion, algorithm) oracle checks executed.
    pub oracle_checks: usize,
    /// Oracle checks fully verified (terminating, matching).
    pub verified: usize,
    /// Oracle checks that were inconclusive on every input (fuel).
    pub inconclusive: usize,
    /// Oracle failures of algorithms with no soundness claim in scope.
    pub expected_failures: usize,
    /// Lattice relation instances checked.
    pub lattice_checks: usize,
    /// (criterion, input) dynamic-containment checks (dynamic slice ⊆
    /// conventional static slice) executed.
    pub dynamic_checks: usize,
    /// Confirmed findings (expected ones included when recording them).
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// Findings that violate pinned claims — the ones that fail CI.
    pub fn hard_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.expected)
    }
}

/// The program class of `p` — most specific first.
pub fn scope_of(p: &Program, a: &Analysis<'_>) -> Scope {
    if !is_structured(a) {
        return Scope::All;
    }
    let extended = p.stmt_ids().any(|s| {
        matches!(
            p.stmt(s).kind,
            StmtKind::DoWhile { .. } | StmtKind::Switch { .. }
        )
    });
    if extended {
        Scope::Structured
    } else {
        Scope::PaperFragment
    }
}

/// Live `write` statements usable as criteria, at most `max`, evenly
/// spread over the program.
pub(crate) fn pick_criteria(p: &Program, a: &Analysis<'_>, max: usize) -> Vec<StmtId> {
    let writes: Vec<StmtId> = p
        .stmt_ids()
        .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && a.is_live(s))
        .collect();
    if writes.len() <= max {
        return writes;
    }
    let step = writes.len() as f64 / max as f64;
    (0..max)
        .map(|i| writes[(i as f64 * step) as usize])
        .collect()
}

/// A reproducible failure fingerprint: given any candidate program, decide
/// whether it still exhibits the failure, and if so where.
enum Probe {
    /// `algo`'s slice fails the projection oracle with the given kind.
    Oracle {
        algo: &'static Algo,
        kind: FindingKind,
        /// Only count failures where the soundness claim (if any) applies.
        enforce_scope: bool,
    },
    /// The relation fails between the two named slicers.
    Lattice { rel: Relation },
    /// `algo` panics while slicing.
    Panic { algo: &'static Algo },
    /// A dynamic slice escapes the conventional static slice.
    Dynamic,
}

/// A probe hit: criterion line plus failure description.
struct Hit {
    line: Option<usize>,
    detail: String,
}

impl Probe {
    /// Evaluates the probe on `p`. `None` means the candidate no longer
    /// fails this way.
    fn check(&self, p: &Program, cfg: &DiffConfig) -> Option<Hit> {
        if !is_valid_candidate(p) {
            return None;
        }
        let a = Analysis::new(p);
        let scope = scope_of(p, &a);
        let criteria = pick_criteria(p, &a, cfg.max_criteria);
        let inputs = cfg.inputs();
        match self {
            Probe::Oracle {
                algo,
                kind,
                enforce_scope,
            } => {
                if *enforce_scope && !algo.sound_on.is_some_and(|s| s.covers(scope)) {
                    return None;
                }
                for &c in &criteria {
                    let crit = Criterion::at_stmt(c);
                    let Ok(s) = catch_unwind(AssertUnwindSafe(|| (algo.f)(&a, &crit))) else {
                        continue;
                    };
                    match check_projection(p, &s.stmts, &s.moved_labels, &inputs) {
                        Ok(_) => {}
                        Err(e) => {
                            let got = match &e {
                                ProjectionError::Mismatch(_) => FindingKind::Projection,
                                ProjectionError::Stuck { .. } => FindingKind::Stuck,
                            };
                            if got == *kind {
                                return Some(Hit {
                                    line: Some(p.line_of(c)),
                                    detail: format!("{} at line {}: {e}", algo.name, p.line_of(c)),
                                });
                            }
                        }
                    }
                }
                None
            }
            Probe::Lattice { rel } => {
                if !rel.scope.covers(scope) {
                    return None;
                }
                let sub = registry::algo(rel.sub).expect("registered");
                let sup = registry::algo(rel.sup).expect("registered");
                for &c in &criteria {
                    let crit = Criterion::at_stmt(c);
                    let pair = catch_unwind(AssertUnwindSafe(|| {
                        ((sub.f)(&a, &crit), (sup.f)(&a, &crit))
                    }));
                    let Ok((lo, hi)) = pair else { continue };
                    let holds = match rel.kind {
                        RelKind::Subset => lo.stmts.is_subset(&hi.stmts),
                        RelKind::Equal => lo.stmts == hi.stmts,
                    };
                    if !holds {
                        let op = match rel.kind {
                            RelKind::Subset => "⊆",
                            RelKind::Equal => "==",
                        };
                        return Some(Hit {
                            line: Some(p.line_of(c)),
                            detail: format!(
                                "{} {op} {} violated at line {} ({} vs {} stmts)",
                                rel.sub,
                                rel.sup,
                                p.line_of(c),
                                lo.len(),
                                hi.len()
                            ),
                        });
                    }
                }
                None
            }
            Probe::Panic { algo } => {
                for &c in &criteria {
                    let crit = Criterion::at_stmt(c);
                    if catch_unwind(AssertUnwindSafe(|| (algo.f)(&a, &crit))).is_err() {
                        return Some(Hit {
                            line: Some(p.line_of(c)),
                            detail: format!("{} panicked at line {}", algo.name, p.line_of(c)),
                        });
                    }
                }
                None
            }
            Probe::Dynamic => {
                let conv = registry::algo("conventional").expect("registered");
                for input in &inputs {
                    let traj = run(p, input);
                    for &c in &criteria {
                        let d = dynamic_slice_of_trace(&a, &traj, &DynCriterion::last(c));
                        if !d.criterion_found {
                            continue;
                        }
                        let s = (conv.f)(&a, &Criterion::at_stmt(c));
                        if !d.stmts.is_subset(&s.stmts) {
                            return Some(Hit {
                                line: Some(p.line_of(c)),
                                detail: format!(
                                    "dynamic slice ⊄ conventional at line {} ({} vs {} stmts)",
                                    p.line_of(c),
                                    d.stmts.len(),
                                    s.len()
                                ),
                            });
                        }
                    }
                }
                None
            }
        }
    }
}

/// Shrinks `p` against `probe` (when enabled) and packages the finding.
#[allow(clippy::too_many_arguments)]
fn build_finding(
    p: &Program,
    probe: &Probe,
    cfg: &DiffConfig,
    seed: u64,
    family: Family,
    algo_name: String,
    kind: FindingKind,
    expected: bool,
) -> Finding {
    let minimized = if cfg.shrink {
        shrink(p, &|q| probe.check(q, cfg).is_some())
    } else {
        p.clone()
    };
    // Re-check the minimized program under a trace sink: the captured
    // events (phases, cache accesses, fixpoint rounds, jump admissions)
    // ship with the finding for post-mortem analysis.
    let (hit, events) = jumpslice_obs::capture(|| probe.check(&minimized, cfg));
    let hit = hit.unwrap_or_else(|| Hit {
        line: None,
        detail: "failure not reproduced on minimized program".to_owned(),
    });
    let trace_json = jumpslice_obs::trace_to_json(&events).write_pretty();
    let program = print_program(&minimized);
    let regression_test =
        emit::regression_test(&program, &algo_name, kind, hit.line, expected, seed, family);
    Finding {
        seed,
        family,
        algo: algo_name,
        kind,
        expected,
        detail: hit.detail,
        program,
        criterion_line: hit.line,
        regression_test,
        trace_json,
    }
}

/// Runs the differential fuzzing session described by `cfg`.
pub fn run_difftest(cfg: &DiffConfig) -> DiffReport {
    run_difftest_with(cfg, |_| {})
}

/// Like [`run_difftest`], invoking `progress` after each program sweep
/// (the binary uses this for live output).
pub fn run_difftest_with(cfg: &DiffConfig, mut progress: impl FnMut(&DiffReport)) -> DiffReport {
    let mut report = DiffReport::default();
    let inputs = cfg.inputs();

    'seeds: for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        for family in cfg.families() {
            if report.findings.len() >= cfg.max_findings {
                break 'seeds;
            }
            let p = family.generate(seed, cfg);
            let a = Analysis::new(&p);
            let scope = scope_of(&p, &a);
            let criteria_stmts = pick_criteria(&p, &a, cfg.max_criteria);
            let criteria: Vec<Criterion> = criteria_stmts
                .iter()
                .copied()
                .map(Criterion::at_stmt)
                .collect();
            report.programs += 1;
            report.criterion_cases += criteria.len();

            let batch = BatchSlicer::new(&a).with_threads(cfg.threads);
            let mut slices: Vec<Option<Vec<Slice>>> = Vec::with_capacity(ALGOS.len());
            for algo in ALGOS {
                match batch.try_slice_all(algo.f, &criteria) {
                    Ok(s) => slices.push(Some(s)),
                    Err(panic) => {
                        slices.push(None);
                        let probe = Probe::Panic { algo };
                        report.findings.push(build_finding(
                            &p,
                            &probe,
                            cfg,
                            seed,
                            family,
                            algo.name.to_owned(),
                            FindingKind::Panic,
                            false,
                        ));
                        let _ = panic;
                    }
                }
            }

            // Property 1: projection oracle, every algorithm.
            for (algo, algo_slices) in ALGOS.iter().zip(&slices) {
                let Some(algo_slices) = algo_slices else {
                    continue;
                };
                let must_pass = algo.sound_on.is_some_and(|s| s.covers(scope));
                for (i, s) in algo_slices.iter().enumerate() {
                    report.oracle_checks += 1;
                    match check_projection(&p, &s.stmts, &s.moved_labels, &inputs) {
                        Ok(r) => {
                            if r.is_conclusive() {
                                report.verified += 1;
                            } else {
                                report.inconclusive += 1;
                            }
                        }
                        Err(e) => {
                            let kind = match &e {
                                ProjectionError::Mismatch(_) => FindingKind::Projection,
                                ProjectionError::Stuck { .. } => FindingKind::Stuck,
                            };
                            if !must_pass && !cfg.record_expected {
                                report.expected_failures += 1;
                                continue;
                            }
                            if !must_pass {
                                report.expected_failures += 1;
                            }
                            let probe = Probe::Oracle {
                                algo,
                                kind,
                                enforce_scope: must_pass,
                            };
                            report.findings.push(build_finding(
                                &p,
                                &probe,
                                cfg,
                                seed,
                                family,
                                algo.name.to_owned(),
                                kind,
                                !must_pass,
                            ));
                            let _ = (i, e);
                            // One finding per (algorithm, program) is
                            // enough; more criteria on the same draw are
                            // almost always the same root cause.
                            break;
                        }
                    }
                }
            }

            // Property 2: lattice relations between slicer pairs.
            for rel in RELATIONS {
                if !rel.scope.covers(scope) {
                    continue;
                }
                let sub_i = ALGOS
                    .iter()
                    .position(|a| a.name == rel.sub)
                    .expect("registered");
                let sup_i = ALGOS
                    .iter()
                    .position(|a| a.name == rel.sup)
                    .expect("registered");
                let (Some(lo), Some(hi)) = (&slices[sub_i], &slices[sup_i]) else {
                    continue;
                };
                for (l, h) in lo.iter().zip(hi) {
                    report.lattice_checks += 1;
                    let holds = match rel.kind {
                        RelKind::Subset => l.stmts.is_subset(&h.stmts),
                        RelKind::Equal => l.stmts == h.stmts,
                    };
                    if !holds {
                        let probe = Probe::Lattice { rel: *rel };
                        report.findings.push(build_finding(
                            &p,
                            &probe,
                            cfg,
                            seed,
                            family,
                            format!("{}⊆{}", rel.sub, rel.sup),
                            FindingKind::Lattice,
                            false,
                        ));
                        break;
                    }
                }
            }

            // Property 3: dynamic containment. Every dynamic slice sits
            // inside the conventional static slice of its criterion — and
            // hence, by the lattice relations above, inside every
            // jump-repaired slice.
            let conv_i = ALGOS
                .iter()
                .position(|a| a.name == "conventional")
                .expect("registered");
            if let Some(conv) = &slices[conv_i] {
                'dynamic: for input in &inputs {
                    let traj = run(&p, input);
                    for (i, &c) in criteria_stmts.iter().enumerate() {
                        let d = dynamic_slice_of_trace(&a, &traj, &DynCriterion::last(c));
                        if !d.criterion_found {
                            continue;
                        }
                        report.dynamic_checks += 1;
                        if !d.stmts.is_subset(&conv[i].stmts) {
                            report.findings.push(build_finding(
                                &p,
                                &Probe::Dynamic,
                                cfg,
                                seed,
                                family,
                                "dynamic⊆conventional".to_owned(),
                                FindingKind::Dynamic,
                                false,
                            ));
                            break 'dynamic;
                        }
                    }
                }
            }

            progress(&report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_no_hard_findings() {
        let cfg = DiffConfig {
            seeds: 3,
            target_stmts: 20,
            num_inputs: 3,
            ..DiffConfig::default()
        };
        let report = run_difftest(&cfg);
        assert!(report.programs >= 9);
        assert!(report.verified > 0, "{report:?}");
        let hard: Vec<_> = report.hard_findings().collect();
        assert!(hard.is_empty(), "{hard:#?}");
    }

    #[test]
    fn expected_unsoundness_is_tallied_not_fatal() {
        let cfg = DiffConfig {
            seeds: 6,
            family: Some(Family::Unstructured),
            num_inputs: 4,
            ..DiffConfig::default()
        };
        let report = run_difftest(&cfg);
        // Conventional slicing on goto programs is the paper's motivating
        // counterexample; a handful of seeds is enough to hit it.
        assert!(report.expected_failures > 0);
        assert_eq!(report.hard_findings().count(), 0);
    }

    #[test]
    fn recording_expected_failures_yields_shrunk_counterexamples() {
        let cfg = DiffConfig {
            seeds: 4,
            family: Some(Family::Unstructured),
            record_expected: true,
            num_inputs: 3,
            max_findings: 2,
            ..DiffConfig::default()
        };
        let report = run_difftest(&cfg);
        assert!(!report.findings.is_empty());
        for f in &report.findings {
            assert!(f.expected);
            assert!(f.regression_test.contains("#[test]"));
            // Shrinking keeps the program parseable and failing.
            assert!(jumpslice_lang::parse(&f.program).is_ok());
            // The trace capture is valid obs event JSON.
            let parsed = jumpslice_obs::Json::parse(&f.trace_json).expect("trace parses");
            assert!(
                jumpslice_obs::events_from_json(&parsed).is_ok(),
                "{}",
                f.trace_json
            );
        }
    }

    #[test]
    fn scope_classification() {
        let pf = Family::PaperFragment.generate(1, &DiffConfig::default());
        let a = Analysis::new(&pf);
        assert_eq!(scope_of(&pf, &a), Scope::PaperFragment);

        let un = Family::Unstructured.generate(1, &DiffConfig::default());
        let a = Analysis::new(&un);
        // Goto soup is (virtually always) unstructured; allow either, but
        // the classification must agree with is_structured.
        assert_eq!(scope_of(&un, &a) == Scope::All, !is_structured(&a));
    }
}
