//! The incremental-vs-scratch differential mode (`difftest --mode incr`).
//!
//! [`jumpslice_incr::EditSession`] promises one thing: slicing through a
//! session after any sequence of edits is *identical* to slicing a freshly
//! analyzed copy of the edited program — every registered slicer, every
//! criterion, no matter which fast path (expression patch, seeded re-solve,
//! full rebuild) each edit took. This module fuzzes exactly that contract:
//! seeded programs from the same three families as the projection fuzzer,
//! random edit scripts from [`jumpslice_incr::random_edit`], and after
//! **every accepted edit** a full equality sweep of all eight slicers
//! against a cold [`Analysis`].
//!
//! A mismatch is minimized on two axes before reporting
//! ([`shrink_script`]): the edit script (greedy single-edit drops, then
//! payload simplification) and the base program (the existing statement
//! shrinker, replaying the surviving script as the failure predicate).

use crate::harness::{pick_criteria, DiffConfig, Family};
use crate::shrink::{is_valid_candidate, shrink};
use crate::ALGOS;
use jumpslice_core::{Analysis, BatchSlicer, Criterion};
use jumpslice_incr::{random_edit, Edit, EditExpr, EditSession, NewStmt};
use jumpslice_lang::{print_program, Program};
use jumpslice_testkit::Rng;

/// Knobs for one incremental fuzzing session.
#[derive(Clone, Debug)]
pub struct IncrConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds; each seed drives one edit script per family.
    pub seeds: u64,
    /// Families to fuzz; `None` means all three.
    pub family: Option<Family>,
    /// Approximate statements per generated base program.
    pub target_stmts: usize,
    /// Goto density for the unstructured family.
    pub jump_density: f64,
    /// Edits attempted per script (rejected edits count toward this).
    pub edits_per_script: usize,
    /// Maximum criteria compared per equality sweep.
    pub max_criteria: usize,
    /// Whether to minimize failing scripts and programs before reporting.
    pub shrink: bool,
    /// Stop after this many findings.
    pub max_findings: usize,
}

impl Default for IncrConfig {
    fn default() -> Self {
        IncrConfig {
            start_seed: 0,
            seeds: 40,
            family: None,
            target_stmts: 30,
            jump_density: 0.3,
            edits_per_script: 6,
            max_criteria: 4,
            shrink: true,
            max_findings: 4,
        }
    }
}

impl IncrConfig {
    /// The fixed-seed smoke configuration CI runs.
    pub fn smoke() -> IncrConfig {
        IncrConfig {
            seeds: 12,
            target_stmts: 25,
            ..IncrConfig::default()
        }
    }

    fn families(&self) -> Vec<Family> {
        match self.family {
            Some(f) => vec![f],
            None => Family::ALL.to_vec(),
        }
    }

    /// Generation knobs repackaged for [`Family::generate`].
    fn gen_cfg(&self) -> DiffConfig {
        DiffConfig {
            target_stmts: self.target_stmts,
            jump_density: self.jump_density,
            ..DiffConfig::default()
        }
    }
}

/// One incremental-equivalence violation, minimized when enabled.
#[derive(Clone, Debug)]
pub struct IncrFinding {
    /// Seed of the generating draw.
    pub seed: u64,
    /// Family of the generating draw.
    pub family: Family,
    /// Human-readable failure description from the (shrunk) replay.
    pub detail: String,
    /// The (shrunk) base program text.
    pub program: String,
    /// The (shrunk) edit script that still reproduces the mismatch.
    pub script: Vec<Edit>,
}

/// Aggregate statistics of one incremental fuzzing session.
#[derive(Clone, Debug, Default)]
pub struct IncrReport {
    /// Edit scripts driven (one per seed × family).
    pub scripts: usize,
    /// Edits accepted by the session.
    pub edits_applied: usize,
    /// Edits rejected (invalid path, stranded jump, …) — the session must
    /// survive these untouched, so they stay in the stream.
    pub edits_rejected: usize,
    /// Accepted edits that took the expression-patch fast path.
    pub expr_patches: usize,
    /// Accepted edits that took the seeded re-solve path.
    pub seeded_resolves: usize,
    /// Accepted edits that fell back to a full rebuild.
    pub full_rebuilds: usize,
    /// (slicer, criterion) identity comparisons executed.
    pub comparisons: usize,
    /// Confirmed incremental-vs-scratch mismatches.
    pub findings: Vec<IncrFinding>,
}

/// Compares every registered slicer through `session` against a cold
/// analysis of the same program. Returns the comparison count, or the
/// first mismatch.
fn sweep(session: &mut EditSession, max_criteria: usize) -> Result<usize, String> {
    let p = session.prog().clone();
    let cold = Analysis::new(&p);
    let stmts = pick_criteria(&p, &cold, max_criteria);
    let criteria: Vec<Criterion> = stmts.iter().copied().map(Criterion::at_stmt).collect();
    if criteria.is_empty() {
        return Ok(0);
    }
    let cold_batch = BatchSlicer::new(&cold);
    let mut done = 0;
    for algo in ALGOS {
        let scratch = cold_batch.try_slice_all(algo.f, &criteria);
        let warm = session.with_analysis(|a| BatchSlicer::new(a).try_slice_all(algo.f, &criteria));
        match (scratch, warm) {
            (Ok(s), Ok(w)) => {
                for (i, (ss, ws)) in s.iter().zip(&w).enumerate() {
                    done += 1;
                    if ss.stmts != ws.stmts || ss.moved_labels != ws.moved_labels {
                        return Err(format!(
                            "{} at line {}: incremental {} stmts vs scratch {} stmts",
                            algo.name,
                            p.line_of(stmts[i]),
                            ws.len(),
                            ss.len()
                        ));
                    }
                }
            }
            // A deterministic panic in both worlds is the projection
            // fuzzer's finding, not an incrementality bug.
            (Err(_), Err(_)) => {}
            (Ok(_), Err(_)) => {
                return Err(format!("{}: panics only through the session", algo.name));
            }
            (Err(_), Ok(_)) => {
                return Err(format!("{}: panics only from scratch", algo.name));
            }
        }
    }
    Ok(done)
}

/// Replays `script` on a fresh session over `p`. Returns the mismatch
/// detail if the equality sweep fails at any step (edits the session
/// rejects are skipped, as in the original run).
fn replay(p: &Program, script: &[Edit], max_criteria: usize) -> Option<String> {
    if !is_valid_candidate(p) {
        return None;
    }
    let mut session = EditSession::new(p.clone());
    if let Err(detail) = sweep(&mut session, max_criteria) {
        return Some(detail);
    }
    for edit in script {
        if session.apply(edit).is_err() {
            continue;
        }
        if let Err(detail) = sweep(&mut session, max_criteria) {
            return Some(detail);
        }
    }
    None
}

/// Strictly simpler payload variants of one edit, for script shrinking.
fn simpler_edits(edit: &Edit) -> Vec<Edit> {
    match edit {
        Edit::ReplaceExpr { at, with } if *with != EditExpr::Num(0) => vec![Edit::ReplaceExpr {
            at: at.clone(),
            with: EditExpr::Num(0),
        }],
        Edit::InsertStmt { at, stmt } if *stmt != NewStmt::Skip => vec![Edit::InsertStmt {
            at: at.clone(),
            stmt: NewStmt::Skip,
        }],
        _ => Vec::new(),
    }
}

/// Minimizes a failing (program, edit script) pair: greedy single-edit
/// drops, payload simplification, then base-program shrinking with the
/// surviving script replayed as the failure predicate.
pub fn shrink_script(p: &Program, script: &[Edit], max_criteria: usize) -> (Program, Vec<Edit>) {
    let mut cur = script.to_vec();
    let fails = |q: &Program, s: &[Edit]| replay(q, s, max_criteria).is_some();

    // Phase 1: drop whole edits, first-to-last, restarting on progress.
    'drop: loop {
        for i in 0..cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(p, &cand) {
                cur = cand;
                continue 'drop;
            }
        }
        break;
    }

    // Phase 2: simplify surviving edit payloads.
    'simplify: loop {
        for i in 0..cur.len() {
            for simpler in simpler_edits(&cur[i]) {
                let mut cand = cur.clone();
                cand[i] = simpler;
                if fails(p, &cand) {
                    cur = cand;
                    continue 'simplify;
                }
            }
        }
        break;
    }

    // Phase 3: shrink the base program under the fixed script. Edits whose
    // paths stop resolving are rejected during replay, which is fine — the
    // mismatch must survive on what remains.
    let small = shrink(p, &|q| fails(q, &cur));

    // Phase 4: the smaller program may need fewer edits still.
    'after: loop {
        for i in 0..cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if fails(&small, &cand) {
                cur = cand;
                continue 'after;
            }
        }
        break;
    }

    (small, cur)
}

/// Runs the incremental differential session described by `cfg`.
pub fn run_incrtest(cfg: &IncrConfig) -> IncrReport {
    run_incrtest_with(cfg, |_| {})
}

/// Like [`run_incrtest`], invoking `progress` after each script (the
/// binary uses this for live output).
pub fn run_incrtest_with(cfg: &IncrConfig, mut progress: impl FnMut(&IncrReport)) -> IncrReport {
    let mut report = IncrReport::default();
    let gen_cfg = cfg.gen_cfg();

    'seeds: for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        for (fi, family) in cfg.families().into_iter().enumerate() {
            if report.findings.len() >= cfg.max_findings {
                break 'seeds;
            }
            let p = family.generate(seed, &gen_cfg);
            let mut rng = Rng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(fi as u64));
            let mut session = EditSession::new(p.clone());
            let mut script: Vec<Edit> = Vec::new();
            report.scripts += 1;

            let mut mismatch = match sweep(&mut session, cfg.max_criteria) {
                Ok(n) => {
                    report.comparisons += n;
                    None
                }
                Err(detail) => Some(detail),
            };
            if mismatch.is_none() {
                for _ in 0..cfg.edits_per_script {
                    let edit = random_edit(&mut rng, session.prog());
                    if session.apply(&edit).is_err() {
                        report.edits_rejected += 1;
                        continue;
                    }
                    script.push(edit);
                    report.edits_applied += 1;
                    match sweep(&mut session, cfg.max_criteria) {
                        Ok(n) => report.comparisons += n,
                        Err(detail) => {
                            mismatch = Some(detail);
                            break;
                        }
                    }
                }
            }

            let stats = session.stats();
            report.expr_patches += stats.expr_patches;
            report.seeded_resolves += stats.seeded_resolves;
            report.full_rebuilds += stats.full_rebuilds;

            if let Some(detail) = mismatch {
                let (small, small_script) = if cfg.shrink {
                    shrink_script(&p, &script, cfg.max_criteria)
                } else {
                    (p.clone(), script.clone())
                };
                let detail = replay(&small, &small_script, cfg.max_criteria).unwrap_or(detail);
                report.findings.push(IncrFinding {
                    seed,
                    family,
                    detail,
                    program: print_program(&small),
                    script: small_script,
                });
            }
            progress(&report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn smoke_run_is_mismatch_free() {
        let cfg = IncrConfig {
            seeds: 4,
            target_stmts: 20,
            ..IncrConfig::default()
        };
        let report = run_incrtest(&cfg);
        assert_eq!(report.scripts, 12);
        assert!(report.edits_applied > 0, "{report:?}");
        assert!(report.comparisons > 0, "{report:?}");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn fast_paths_actually_engage() {
        let cfg = IncrConfig {
            seeds: 10,
            target_stmts: 25,
            ..IncrConfig::default()
        };
        let report = run_incrtest(&cfg);
        // Across 30 scripts the generator's 40% expression-replacement
        // weight must hit the patch path, and inserts/deletes the seeded
        // path — otherwise the fuzzer is exercising nothing but rebuilds.
        assert!(report.expr_patches > 0, "{report:?}");
        assert!(report.seeded_resolves > 0, "{report:?}");
        assert!(report.full_rebuilds > 0, "{report:?}");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn shrinker_minimizes_scripts_and_programs() {
        // Manufacture a "failure": the replay predicate inside
        // shrink_script is the real one, so instead check the phases on a
        // synthetic predicate by shrinking a passing pair — the result must
        // replay clean and be no larger than the input.
        let p = parse("read(a); b = a + 1; write(b); write(a);").unwrap();
        let script = vec![Edit::ReplaceExpr {
            at: jumpslice_lang::StmtPath::root(1),
            with: EditExpr::Num(3),
        }];
        assert!(replay(&p, &script, 4).is_none());
        // A passing pair has nothing to preserve: every drop "fails to
        // fail", so the script survives intact and the program shrinks
        // only if the (vacuously false) predicate held — it doesn't.
        let (q, s) = shrink_script(&p, &script, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(q.len(), p.len());
    }
}
