//! Rebuilding a program with one expression replaced — the shrinker's
//! second phase (predicate simplification).
//!
//! Statement *deletion* goes through the pretty-printer's filter and a
//! reparse (`shrink.rs`), but replacing an expression has no printed form
//! to filter, so this module reconstructs the whole program through
//! [`ProgramBuilder`]. Names and labels are interner indices private to
//! their owning [`Program`], so every identifier crosses the boundary as a
//! string and every expression is re-interned node by node.

use jumpslice_lang::{CaseGuard, Expr, Program, ProgramBuilder, StmtId, StmtKind};

/// Re-interns `e` (which belongs to `p`) into the program under
/// construction in `b`.
pub fn import_expr(p: &Program, b: &mut ProgramBuilder, e: &Expr) -> Expr {
    match e {
        Expr::Num(n) => Expr::Num(*n),
        Expr::Var(v) => b.var(p.name_str(*v)),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(import_expr(p, b, inner))),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(import_expr(p, b, l)),
            Box::new(import_expr(p, b, r)),
        ),
        Expr::Call(f, args) => {
            let imported: Vec<Expr> = args.iter().map(|a| import_expr(p, b, a)).collect();
            b.call(p.name_str(*f), imported)
        }
    }
}

/// Number of nodes in an expression — the shrinker's notion of "simpler".
pub fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Num(_) | Expr::Var(_) => 1,
        Expr::Unary(_, inner) => 1 + expr_size(inner),
        Expr::Binary(_, l, r) => 1 + expr_size(l) + expr_size(r),
        Expr::Call(_, args) => 1 + args.iter().map(expr_size).sum::<usize>(),
    }
}

/// The primary expression of a statement, if it has one: the branch
/// condition, assignment right-hand side, written argument, switch
/// scrutinee, or returned value.
pub fn stmt_expr(p: &Program, s: StmtId) -> Option<&Expr> {
    match &p.stmt(s).kind {
        StmtKind::Assign { rhs, .. } => Some(rhs),
        StmtKind::Write { arg } => Some(arg),
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. }
        | StmtKind::CondGoto { cond, .. } => Some(cond),
        StmtKind::Switch { scrutinee, .. } => Some(scrutinee),
        StmtKind::Return { value } => value.as_ref(),
        _ => None,
    }
}

/// Rebuilds `p` with the primary expression of `target` replaced by
/// `replacement` (expressed in `p`'s interner; it is re-interned during the
/// rebuild). Returns `None` if the rebuilt program fails validation, which
/// can only happen through label plumbing and is treated as "candidate
/// rejected" by the shrinker.
pub fn replace_expr(p: &Program, target: StmtId, replacement: &Expr) -> Option<Program> {
    let mut b = ProgramBuilder::new();
    emit_block(p, &mut b, p.body(), target, replacement);
    b.build().ok()
}

fn emit_block(
    p: &Program,
    b: &mut ProgramBuilder,
    block: &[StmtId],
    target: StmtId,
    replacement: &Expr,
) {
    for &s in block {
        emit_stmt(p, b, s, target, replacement);
    }
}

fn emit_stmt(p: &Program, b: &mut ProgramBuilder, s: StmtId, target: StmtId, replacement: &Expr) {
    for &l in &p.stmt(s).labels {
        b.label(p.label_str(l));
    }
    // The expression this statement should carry in the rebuilt program.
    let pick = |b: &mut ProgramBuilder, e: &Expr| {
        if s == target {
            import_expr(p, b, replacement)
        } else {
            import_expr(p, b, e)
        }
    };
    match &p.stmt(s).kind {
        StmtKind::Assign { lhs, rhs } => {
            let e = pick(b, rhs);
            b.assign(p.name_str(*lhs), e);
        }
        StmtKind::Read { var } => {
            b.read(p.name_str(*var));
        }
        StmtKind::Write { arg } => {
            let e = pick(b, arg);
            b.write(e);
        }
        StmtKind::Skip => {
            b.skip();
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = pick(b, cond);
            b.if_else_with(
                c,
                &mut (),
                |_, b2| emit_block(p, b2, then_branch, target, replacement),
                |_, b2| emit_block(p, b2, else_branch, target, replacement),
            );
        }
        StmtKind::While { cond, body } => {
            let c = pick(b, cond);
            // while_/do_while take plain closures; the recursive emit only
            // borrows immutably from `p`, so a move closure suffices.
            b.while_(c, |b2| emit_block(p, b2, body, target, replacement));
        }
        StmtKind::DoWhile { body, cond } => {
            let c = pick(b, cond);
            b.do_while(|b2| emit_block(p, b2, body, target, replacement), c);
        }
        StmtKind::Switch { scrutinee, arms } => {
            let e = pick(b, scrutinee);
            b.switch(e, |sw| {
                for arm in arms {
                    let guards: Vec<CaseGuard> = arm.guards.clone();
                    sw.arm(&guards, |b2| {
                        emit_block(p, b2, &arm.body, target, replacement)
                    });
                }
            });
        }
        StmtKind::Goto { target: l } => {
            b.goto(p.label_str(*l));
        }
        StmtKind::CondGoto { cond, target: l } => {
            let label = p.label_str(*l).to_owned();
            let c = pick(b, cond);
            b.cond_goto(c, &label);
        }
        StmtKind::Break => {
            b.break_();
        }
        StmtKind::Continue => {
            b.continue_();
        }
        StmtKind::Return { value } => {
            let v = value.as_ref().map(|e| pick(b, e));
            b.ret(v);
        }
    }
}

/// Candidate replacement expressions strictly simpler than `e`: the
/// constants `0` and `1`, plus every immediate operand.
pub fn simpler_candidates(e: &Expr) -> Vec<Expr> {
    let mut out = vec![Expr::Num(0), Expr::Num(1)];
    match e {
        Expr::Unary(_, inner) => out.push((**inner).clone()),
        Expr::Binary(_, l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
        }
        Expr::Call(_, args) => out.extend(args.iter().cloned()),
        _ => {}
    }
    let bound = expr_size(e);
    out.retain(|c| expr_size(c) < bound);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::{parse, print_program};

    #[test]
    fn identity_rebuild_roundtrips() {
        let src = "read(x);
             L0: if (x > 0) { y = f1(x); } else { y = 0; }
             while (!eof()) { x = x - 1; if (x == 2) break; }
             do { y = y + 1; } while (y < 3);
             switch (x) { case 0: y = 9; break; default: y = 8; }
             if (y > 0) goto L0;
             write(y);";
        let p = parse(src).unwrap();
        // Replacing a statement's expression with itself must round-trip.
        let s = p.at_line(1); // read — has no expr, so nothing is replaced
        let q = replace_expr(&p, s, &Expr::Num(0)).unwrap();
        assert_eq!(print_program(&p), print_program(&q));
    }

    #[test]
    fn replaces_a_predicate() {
        let p = parse("read(x); if (x > 0) { y = 1; } write(y);").unwrap();
        let cond_stmt = p.at_line(2);
        let q = replace_expr(&p, cond_stmt, &Expr::Num(0)).unwrap();
        let text = print_program(&q);
        assert!(text.contains("if (0)"), "{text}");
        assert!(!text.contains("x > 0"), "{text}");
    }

    #[test]
    fn candidates_shrink_strictly() {
        let p = parse("x = y + (z * 2);").unwrap();
        let e = stmt_expr(&p, p.at_line(1)).unwrap();
        for c in simpler_candidates(e) {
            assert!(expr_size(&c) < expr_size(e));
        }
    }
}
