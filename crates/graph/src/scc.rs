//! Tarjan strongly-connected components and graph condensation.
//!
//! Used by the program generator to reject accidentally-irreducible loop
//! soups and by the CFG crate's diagnostics.

use crate::{DiGraph, NodeId};

/// Computes strongly-connected components with Tarjan's algorithm.
///
/// Returns the components in reverse topological order (callees/loop bodies
/// first), each component listing its member nodes. Singleton components
/// without a self-loop are trivial.
///
/// # Examples
///
/// ```
/// use jumpslice_graph::{DiGraph, tarjan_scc};
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 0.into());
/// g.add_edge(1.into(), 2.into());
/// let sccs = tarjan_scc(&g);
/// assert_eq!(sccs.len(), 2);
/// assert!(sccs.iter().any(|c| c.len() == 2));
/// ```
pub fn tarjan_scc(g: &DiGraph) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0u32;

    // Iterative Tarjan: frames carry (node, next-successor-index).
    for start in g.nodes() {
        if index[start.index()] != UNVISITED {
            continue;
        }
        let mut call: Vec<(NodeId, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut i)) = call.last_mut() {
            if *i == 0 {
                index[v.index()] = counter;
                lowlink[v.index()] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            if let Some(&w) = g.succs(v).get(*i) {
                *i += 1;
                if index[w.index()] == UNVISITED {
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    sccs.push(comp);
                }
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    lowlink[p.index()] = lowlink[p.index()].min(lowlink[v.index()]);
                }
            }
        }
    }
    sccs
}

/// Builds the condensation (SCC quotient DAG) of `g`.
///
/// Returns the quotient graph together with the component index of every
/// original node.
pub fn condensation(g: &DiGraph) -> (DiGraph, Vec<usize>) {
    let sccs = tarjan_scc(g);
    let mut comp_of = vec![0usize; g.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    let mut q = DiGraph::with_nodes(sccs.len());
    for (a, b) in g.edges() {
        let (ca, cb) = (comp_of[a.index()], comp_of[b.index()]);
        if ca != cb {
            q.add_edge(ca.into(), cb.into());
        }
    }
    (q, comp_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_gives_singletons() {
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (1, 2), (0, 3), (3, 2)] {
            g.add_edge(a.into(), b.into());
        }
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = DiGraph::with_nodes(3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            g.add_edge(a.into(), b.into());
        }
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 3);
    }

    #[test]
    fn reverse_topological_order() {
        // 0 -> 1 <-> 2, 1 -> 3: components {0}, {1,2}, {3}; {3} must come
        // before {1,2}, which must come before {0}.
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (1, 2), (2, 1), (1, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let sccs = tarjan_scc(&g);
        let pos = |v: usize| {
            sccs.iter()
                .position(|c| c.contains(&NodeId::new(v)))
                .unwrap()
        };
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(0));
        assert_eq!(pos(1), pos(2));
    }

    #[test]
    fn condensation_is_acyclic() {
        let mut g = DiGraph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 1), (2, 3), (3, 4), (4, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let (q, comp_of) = condensation(&g);
        assert_eq!(q.len(), 3);
        assert_eq!(comp_of[1], comp_of[2]);
        assert_eq!(comp_of[3], comp_of[4]);
        // The quotient of SCCs never has nontrivial SCCs.
        let qs = tarjan_scc(&q);
        assert!(qs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn disconnected_graph_covered() {
        let g = DiGraph::with_nodes(3);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 3);
    }
}
