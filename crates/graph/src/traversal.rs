//! Depth-first traversal orders and reachability.

use crate::{DiGraph, NodeId};

/// Returns a boolean mask of nodes reachable from `root` (inclusive).
///
/// # Examples
///
/// ```
/// use jumpslice_graph::{DiGraph, reachable_from};
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// let r = reachable_from(&g, 0.into());
/// assert_eq!(r, vec![true, true, false]);
/// ```
pub fn reachable_from(g: &DiGraph, root: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(n) = stack.pop() {
        for &m in g.succs(n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    seen
}

/// Depth-first preorder of the nodes reachable from `root`.
///
/// Children are visited in successor-list order, matching the deterministic
/// construction order of the CFG crate.
pub fn dfs_preorder(g: &DiGraph, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.len()];
    // An explicit stack with reversed successor pushes yields the same order
    // as the recursive formulation without risking stack overflow on the
    // large generated programs used in the benches.
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(n) = stack.pop() {
        order.push(n);
        for &m in g.succs(n).iter().rev() {
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    order
}

/// Depth-first postorder of the nodes reachable from `root`.
pub fn dfs_postorder(g: &DiGraph, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.len()];
    // Stack frames carry the index of the next successor to visit.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    seen[root.index()] = true;
    while let Some(&mut (n, ref mut i)) = stack.last_mut() {
        if let Some(&m) = g.succs(n).get(*i) {
            *i += 1;
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push((m, 0));
            }
        } else {
            order.push(n);
            stack.pop();
        }
    }
    order
}

/// Reverse postorder from `root` — the canonical iteration order for forward
/// dataflow problems and for the Cooper–Harvey–Kennedy dominator algorithm.
pub fn reverse_postorder(g: &DiGraph, root: NodeId) -> Vec<NodeId> {
    let mut order = dfs_postorder(g, root);
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i.into(), (i + 1).into());
        }
        g
    }

    #[test]
    fn reachability_respects_direction() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(2.into(), 1.into());
        g.add_edge(1.into(), 3.into());
        let r = reachable_from(&g, 0.into());
        assert_eq!(r, vec![true, true, false, true]);
    }

    #[test]
    fn preorder_on_chain_is_identity() {
        let g = chain(5);
        let order: Vec<usize> = dfs_preorder(&g, 0.into())
            .iter()
            .map(|n| n.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn postorder_on_chain_is_reversed() {
        let g = chain(4);
        let order: Vec<usize> = dfs_postorder(&g, 0.into())
            .iter()
            .map(|n| n.index())
            .collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn rpo_starts_at_root() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let rpo = reverse_postorder(&g, 0.into());
        assert_eq!(rpo[0], NodeId::new(0));
        assert_eq!(*rpo.last().unwrap(), NodeId::new(3));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn traversals_skip_unreachable() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        assert_eq!(dfs_preorder(&g, 0.into()).len(), 2);
        assert_eq!(dfs_postorder(&g, 0.into()).len(), 2);
    }

    #[test]
    fn preorder_visits_parents_before_children() {
        let mut g = DiGraph::with_nodes(6);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 4), (4, 5), (5, 2)] {
            g.add_edge(a.into(), b.into());
        }
        let pre = dfs_preorder(&g, 0.into());
        let pos = |n: usize| pre.iter().position(|m| m.index() == n).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(2) < pos(4));
        assert!(pos(4) < pos(5));
    }

    #[test]
    fn cycle_terminates() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(2.into(), 0.into());
        assert_eq!(dfs_preorder(&g, 0.into()).len(), 3);
        assert_eq!(reverse_postorder(&g, 0.into()).len(), 3);
    }
}
