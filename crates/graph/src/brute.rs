//! Brute-force dominators, straight from the definition.
//!
//! Quadratic-to-cubic; exists purely as a reference oracle for the property
//! tests and the ablation bench. `d` dominates `n` iff `n` is unreachable
//! from the root once `d` is removed from the graph.

use crate::{reachable_from, DiGraph, NodeId};

/// Computes immediate dominators by the textbook definition.
///
/// Returns `idom[n]`: `None` for the root and for nodes unreachable from
/// `root`, otherwise the unique closest strict dominator.
///
/// # Examples
///
/// ```
/// use jumpslice_graph::{DiGraph, dominators_brute_force};
/// let mut g = DiGraph::with_nodes(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// let idoms = dominators_brute_force(&g, 0.into());
/// assert_eq!(idoms[2], Some(1.into()));
/// ```
pub fn dominators_brute_force(g: &DiGraph, root: NodeId) -> Vec<Option<NodeId>> {
    let n = g.len();
    let reach = reachable_from(g, root);

    // dom_sets[v] = set of nodes dominating v (as bool masks).
    let mut dom_sets: Vec<Vec<bool>> = Vec::with_capacity(n);
    for v in 0..n {
        if !reach[v] {
            dom_sets.push(vec![false; n]);
            continue;
        }
        // Nodes reachable from root with v deleted.
        let reach_without_v = reachable_avoiding(g, root, NodeId::new(v));
        let mut doms = vec![false; n];
        for (d, item) in doms.iter_mut().enumerate() {
            // d dominates v iff v can't be reached when d is removed.
            // (v dominates itself trivially.)
            *item = d == v || (reach[d] && !reachable_avoiding(g, root, NodeId::new(d))[v]);
        }
        let _ = reach_without_v;
        dom_sets.push(doms);
    }

    let mut idom = vec![None; n];
    for v in 0..n {
        if !reach[v] || v == root.index() {
            continue;
        }
        // The immediate dominator is the strict dominator dominated by every
        // other strict dominator.
        let strict: Vec<usize> = (0..n).filter(|&d| d != v && dom_sets[v][d]).collect();
        let best = strict
            .iter()
            .copied()
            .find(|&d| strict.iter().all(|&e| dom_sets[d][e] || e == d));
        idom[v] = best.map(NodeId::new);
    }
    idom
}

/// Reachability from `root` in the graph with node `avoid` deleted.
fn reachable_avoiding(g: &DiGraph, root: NodeId, avoid: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    if root == avoid {
        return seen;
    }
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(x) = stack.pop() {
        for &m in g.succs(x) {
            if m != avoid && !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomTree;
    use jumpslice_testkit::Rng;

    #[test]
    fn diamond() {
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let idoms = dominators_brute_force(&g, 0.into());
        assert_eq!(
            idoms,
            vec![None, Some(0.into()), Some(0.into()), Some(0.into())]
        );
    }

    #[test]
    fn unreachable_has_no_idom() {
        let g = DiGraph::with_nodes(2);
        let idoms = dominators_brute_force(&g, 0.into());
        assert_eq!(idoms, vec![None, None]);
    }

    /// Random graph with `2..max_n` nodes: node 0 is the root, a spine
    /// `0 -> 1 -> ...` keeps most nodes reachable (so the tests are not
    /// vacuous), and every node gets 0..=3 extra random successors.
    fn arb_graph(rng: &mut Rng, max_n: usize) -> DiGraph {
        let n = rng.gen_range(2..max_n);
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i.into(), (i + 1).into());
        }
        for i in 0..n {
            for _ in 0..rng.gen_range(0..4usize) {
                g.add_edge(i.into(), rng.gen_range(0..n).into());
            }
        }
        g
    }

    #[test]
    fn iterative_matches_brute_force() {
        jumpslice_testkit::check(64, |rng| {
            let g = arb_graph(rng, 16);
            let fast = DomTree::iterative(&g, 0.into());
            let brute = dominators_brute_force(&g, 0.into());
            for v in g.nodes() {
                assert_eq!(fast.idom(v), brute[v.index()]);
            }
        });
    }

    #[test]
    fn lengauer_tarjan_matches_brute_force() {
        jumpslice_testkit::check(64, |rng| {
            let g = arb_graph(rng, 16);
            let fast = DomTree::lengauer_tarjan(&g, 0.into());
            let brute = dominators_brute_force(&g, 0.into());
            for v in g.nodes() {
                assert_eq!(fast.idom(v), brute[v.index()]);
            }
        });
    }

    #[test]
    fn postdominators_match_brute_force_on_reversal() {
        jumpslice_testkit::check(64, |rng| {
            let g = arb_graph(rng, 12);
            // Postdominators = dominators of the reversal rooted at the last
            // node (the spine guarantees it's reachable from everything...
            // in the reversal: everything reaches it in the forward graph).
            let r = g.reversed();
            let root = NodeId::new(g.len() - 1);
            let fast = DomTree::iterative(&r, root);
            let brute = dominators_brute_force(&r, root);
            for v in g.nodes() {
                assert_eq!(fast.idom(v), brute[v.index()]);
            }
        });
    }
}
