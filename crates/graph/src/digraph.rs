//! The adjacency-list directed graph used throughout the workspace.

use std::fmt;

/// A node handle in a [`DiGraph`].
///
/// `NodeId` is a plain index newtype: it is only meaningful relative to the
/// graph that produced it. All graphs in this workspace are append-only, so
/// ids are never invalidated.
///
/// # Examples
///
/// ```
/// use jumpslice_graph::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(NodeId::from(3usize), n);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed graph stored as forward and backward adjacency lists.
///
/// Nodes are dense indices (`0..len`); edges are unlabeled and duplicate
/// edges are coalesced by [`DiGraph::add_edge`]. Both successor and
/// predecessor lists are maintained so reverse traversals (needed for
/// postdominators) are O(degree).
///
/// # Examples
///
/// ```
/// use jumpslice_graph::DiGraph;
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b);
/// assert_eq!(g.succs(a), &[b]);
/// assert_eq!(g.preds(b), &[a]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    ///
    /// ```
    /// # use jumpslice_graph::DiGraph;
    /// let g = DiGraph::with_nodes(5);
    /// assert_eq!(g.len(), 5);
    /// ```
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph directly from complete successor lists, deriving the
    /// predecessor lists in one counting pass. Equivalent to `with_nodes`
    /// followed by `add_edge` for every entry, but without the per-edge
    /// duplicate scan and incremental pushes — codecs restoring a persisted
    /// graph already hold the full adjacency and want the bulk path.
    ///
    /// Returns `None` if any target is out of bounds or a successor list
    /// contains duplicates (the edge-coalescing invariant `add_edge`
    /// maintains).
    ///
    /// ```
    /// use jumpslice_graph::{DiGraph, NodeId};
    /// let g = DiGraph::from_succs(vec![vec![NodeId::new(1)], vec![]]).unwrap();
    /// assert_eq!(g.preds(NodeId::new(1)), &[NodeId::new(0)]);
    /// assert_eq!(g.num_edges(), 1);
    /// ```
    pub fn from_succs(succs: Vec<Vec<NodeId>>) -> Option<Self> {
        let n = succs.len();
        let mut counts = vec![0usize; n];
        let mut num_edges = 0;
        for list in &succs {
            for (i, &t) in list.iter().enumerate() {
                if t.index() >= n || list[..i].contains(&t) {
                    return None;
                }
                counts[t.index()] += 1;
            }
            num_edges += list.len();
        }
        let mut preds: Vec<Vec<NodeId>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (u, list) in succs.iter().enumerate() {
            for &t in list {
                preds[t.index()].push(NodeId::new(u));
            }
        }
        Some(DiGraph {
            succs,
            preds,
            num_edges,
        })
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.succs.len());
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds the edge `from -> to`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.len(), "edge source out of bounds");
        assert!(to.index() < self.len(), "edge target out of bounds");
        if self.succs[from.index()].contains(&to) {
            return;
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.num_edges += 1;
    }

    /// Returns `true` if the edge `from -> to` is present.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from.index()].contains(&to)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Number of (distinct) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Successors of `n`, in insertion order.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of `n`, in insertion order.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::new)
    }

    /// Iterator over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |n| self.succs(n).iter().map(move |&m| (n, m)))
    }

    /// Returns the graph with every edge reversed.
    ///
    /// The postdominator tree of a flowgraph is the dominator tree of its
    /// reversal rooted at the exit node.
    ///
    /// ```
    /// # use jumpslice_graph::DiGraph;
    /// let mut g = DiGraph::with_nodes(2);
    /// g.add_edge(0.into(), 1.into());
    /// let r = g.reversed();
    /// assert!(r.has_edge(1.into(), 0.into()));
    /// assert!(!r.has_edge(0.into(), 1.into()));
    /// ```
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
            num_edges: self.num_edges,
        }
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph({} nodes, {} edges)", self.len(), self.num_edges)?;
        for n in self.nodes() {
            if !self.succs(n).is_empty() {
                writeln!(f, "  {:?} -> {:?}", n, self.succs(n))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.preds(c), &[a, b]);
    }

    #[test]
    fn duplicate_edges_coalesce() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 1.into());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.succs(0.into()).len(), 1);
        assert_eq!(g.preds(1.into()).len(), 1);
    }

    #[test]
    fn self_loop_allowed() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(0.into(), 0.into());
        assert!(g.has_edge(0.into(), 0.into()));
        assert_eq!(g.preds(0.into()), &[NodeId::new(0)]);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let r = g.reversed();
        assert_eq!(r.succs(2.into()), &[NodeId::new(1)]);
        assert_eq!(r.succs(1.into()), &[NodeId::new(0)]);
        assert_eq!(r.num_edges(), 2);
        // Reversing twice is the identity.
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn edges_iterator_enumerates_all() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(0.into(), 2.into());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(NodeId::new(0), NodeId::new(2))));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_bounds_checked() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(0.into(), 5.into());
    }
}
