//! Dominance frontiers (Cytron et al.).
//!
//! `DF(d)` is the set of nodes `n` such that `d` dominates a predecessor of
//! `n` but does not strictly dominate `n` itself. Computed over the reverse
//! graph with the postdominator tree, frontiers give control dependence:
//! `b` is control dependent on `a` exactly when `a ∈ PDF(b)` — the
//! cross-check used by `jumpslice-pdg`'s tests.

use crate::{DiGraph, DomTree, NodeId};

/// Computes the dominance frontier of every node, given the graph and its
/// dominator tree (the two must match).
///
/// Uses the standard two-predecessor walk: for each join node `n` (≥ 2
/// predecessors), every dominator-tree ancestor of a predecessor up to (but
/// excluding) `idom(n)` has `n` in its frontier.
///
/// # Examples
///
/// ```
/// use jumpslice_graph::{dominance_frontiers, DiGraph, DomTree};
/// // Diamond: 0 -> {1,2} -> 3.
/// let mut g = DiGraph::with_nodes(4);
/// for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
///     g.add_edge(a.into(), b.into());
/// }
/// let dom = DomTree::iterative(&g, 0.into());
/// let df = dominance_frontiers(&g, &dom);
/// assert_eq!(df[1], vec![3.into()]); // 1 dominates a pred of 3, not 3
/// assert_eq!(df[3], vec![]);
/// ```
pub fn dominance_frontiers(g: &DiGraph, dom: &DomTree) -> Vec<Vec<NodeId>> {
    let mut df: Vec<Vec<NodeId>> = vec![Vec::new(); g.len()];
    for n in g.nodes() {
        if !dom.is_reachable(n) || g.preds(n).is_empty() {
            continue;
        }
        // For a non-root single-pred node idom(n) is that pred and the walk
        // stops immediately; the general loop also covers back edges into
        // the root (idom = None), which the classic ≥2-preds shortcut
        // misses.
        let idom_n = dom.idom(n);
        for &p in g.preds(n) {
            if !dom.is_reachable(p) {
                continue;
            }
            let mut runner = Some(p);
            while let Some(r) = runner {
                if Some(r) == idom_n {
                    break;
                }
                if !df[r.index()].contains(&n) {
                    df[r.index()].push(n);
                }
                runner = dom.idom(r);
            }
        }
    }
    for v in &mut df {
        v.sort();
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_testkit::Rng;

    /// Frontier membership straight from the definition, as an oracle.
    fn df_brute(g: &DiGraph, dom: &DomTree, d: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for n in g.nodes() {
            if !dom.is_reachable(n) {
                continue;
            }
            let dominates_a_pred = g
                .preds(n)
                .iter()
                .any(|&p| dom.is_reachable(p) && dom.dominates(d, p));
            if dominates_a_pred && !dom.strictly_dominates(d, n) {
                out.push(n);
            }
        }
        out
    }

    #[test]
    fn loop_frontier_contains_header() {
        // 0 -> 1 -> 2 -> 1, 1 -> 3: the body's frontier holds the header.
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (1, 2), (2, 1), (1, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let dom = DomTree::iterative(&g, 0.into());
        let df = dominance_frontiers(&g, &dom);
        assert_eq!(df[2], vec![NodeId::new(1)]);
        assert_eq!(df[1], vec![NodeId::new(1)], "header is in its own frontier");
    }

    #[test]
    fn unreachable_nodes_have_empty_frontiers() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(2.into(), 1.into());
        let dom = DomTree::iterative(&g, 0.into());
        let df = dominance_frontiers(&g, &dom);
        assert!(df[2].is_empty());
    }

    #[test]
    fn matches_definition() {
        jumpslice_testkit::check(64, |rng: &mut Rng| {
            let mut g = DiGraph::with_nodes(12);
            for i in 0..11 {
                g.add_edge(i.into(), (i + 1).into());
            }
            for i in 0..12 {
                for _ in 0..rng.gen_range(0..4usize) {
                    g.add_edge(i.into(), rng.gen_range(0..12usize).into());
                }
            }
            let dom = DomTree::iterative(&g, 0.into());
            let df = dominance_frontiers(&g, &dom);
            for d in g.nodes() {
                if dom.is_reachable(d) {
                    assert_eq!(&df[d.index()], &df_brute(&g, &dom, d), "node {:?}", d);
                }
            }
        });
    }
}
