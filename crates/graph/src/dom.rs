//! Dominator trees.
//!
//! A node `d` *dominates* `n` (w.r.t. a root `r`) if every path from `r` to
//! `n` passes through `d`. Running the same computation on the reversed graph
//! rooted at the exit node yields the *postdominator* tree used by the
//! slicing algorithms: `d` postdominates `n` iff `d` is an ancestor of `n` in
//! that tree (paper, §3).

use crate::{reverse_postorder, DiGraph, NodeId};

const UNREACHED: u32 = u32::MAX;

/// An immediate-dominator tree over a [`DiGraph`].
///
/// Supports O(1) `dominates` queries via preorder/postorder interval
/// numbering, parent/child navigation, and ancestor iteration — the exact
/// operations Agrawal's Figure 7 needs ("nearest postdominator in Slice",
/// preorder traversal of the postdominator tree).
///
/// Nodes unreachable from the root have no immediate dominator and are
/// excluded from traversals.
///
/// # Examples
///
/// ```
/// use jumpslice_graph::{DiGraph, DomTree};
/// let mut g = DiGraph::with_nodes(4);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(0.into(), 2.into());
/// g.add_edge(1.into(), 3.into());
/// g.add_edge(2.into(), 3.into());
/// let dom = DomTree::iterative(&g, 0.into());
/// assert_eq!(dom.idom(3.into()), Some(0.into()));
/// let pre: Vec<_> = dom.preorder().collect();
/// assert_eq!(pre[0], 0.into());
/// ```
#[derive(Clone, Debug)]
pub struct DomTree {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    pre: Vec<u32>,
    post: Vec<u32>,
    depth: Vec<u32>,
    preorder: Vec<NodeId>,
}

impl DomTree {
    /// Builds the dominator tree with the iterative Cooper–Harvey–Kennedy
    /// algorithm ("A Simple, Fast Dominance Algorithm").
    ///
    /// This is the default construction used by the rest of the workspace;
    /// [`DomTree::lengauer_tarjan`] is the independent implementation used to
    /// cross-check it (and benched in `ablation.rs`).
    pub fn iterative(g: &DiGraph, root: NodeId) -> DomTree {
        let rpo = reverse_postorder(g, root);
        let mut rpo_num = vec![UNREACHED; g.len()];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_num[n.index()] = i as u32;
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; g.len()];
        idom[root.index()] = Some(root); // temporary self-loop, cleared below

        let intersect = |idom: &[Option<NodeId>], rpo_num: &[u32], a: NodeId, b: NodeId| {
            let (mut a, mut b) = (a, b);
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = idom[a.index()].expect("processed node has idom");
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = idom[b.index()].expect("processed node has idom");
                }
            }
            a
        };

        let mut changed = true;
        let mut passes = 0u64;
        while changed {
            changed = false;
            passes += 1;
            for &n in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in g.preds(n) {
                    if rpo_num[p.index()] == UNREACHED || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if new_idom.is_some() && idom[n.index()] != new_idom {
                    idom[n.index()] = new_idom;
                    changed = true;
                }
            }
        }

        idom[root.index()] = None;
        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "domtree.fixpoint_passes",
            value: passes,
        });
        Self::from_idoms(g.len(), root, idom)
    }

    /// Builds the dominator tree with the Lengauer–Tarjan algorithm
    /// (simple path-compression variant, O(m·α(m,n))).
    pub fn lengauer_tarjan(g: &DiGraph, root: NodeId) -> DomTree {
        let idom = crate::lt::lengauer_tarjan_idoms(g, root);
        Self::from_idoms(g.len(), root, idom)
    }

    /// Assembles the derived structures (children lists, preorder, interval
    /// numbering, depths) from an immediate-dominator array.
    pub(crate) fn from_idoms(n: usize, root: NodeId, idom: Vec<Option<NodeId>>) -> DomTree {
        let mut children = vec![Vec::new(); n];
        for (i, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                children[d.index()].push(NodeId::new(i));
            }
        }
        // Deterministic child order: by node index.
        for c in &mut children {
            c.sort();
        }

        let mut pre = vec![UNREACHED; n];
        let mut post = vec![UNREACHED; n];
        let mut depth = vec![0u32; n];
        let mut preorder = Vec::new();
        let mut clock = 0u32;
        // Iterative DFS over the tree for interval numbering.
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        pre[root.index()] = clock;
        clock += 1;
        preorder.push(root);
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if let Some(&c) = children[v.index()].get(*i) {
                *i += 1;
                pre[c.index()] = clock;
                clock += 1;
                depth[c.index()] = depth[v.index()] + 1;
                preorder.push(c);
                stack.push((c, 0));
            } else {
                post[v.index()] = clock;
                clock += 1;
                stack.pop();
            }
        }

        DomTree {
            root,
            idom,
            children,
            pre,
            post,
            depth,
            preorder,
        }
    }

    /// Rebuilds a tree from a raw immediate-dominator array — the
    /// snapshot-restore constructor, inverse of reading [`DomTree::idom`]
    /// for every node. Derived structures (children, preorder, interval
    /// numbering, depths) are recomputed deterministically, exactly as the
    /// algorithmic constructors build them.
    ///
    /// Returns `None` when the array is not a well-formed tree over `n`
    /// nodes rooted at `root`: wrong length, out-of-range root or parent, a
    /// parent on the root, or a parent cycle (nodes whose idom chain never
    /// reaches the root) — hostile bytes decode to a clean rejection, never
    /// a panic or a hang.
    pub fn from_idom_array(n: usize, root: NodeId, idom: Vec<Option<NodeId>>) -> Option<DomTree> {
        if idom.len() != n || root.index() >= n || idom[root.index()].is_some() {
            return None;
        }
        if idom.iter().flatten().any(|d| d.index() >= n) {
            return None;
        }
        let tree = Self::from_idoms(n, root, idom);
        // Every node claiming a parent must actually hang off the root: a
        // parent cycle's members never appear in the root's DFS preorder.
        let claimed = tree.idom.iter().filter(|d| d.is_some()).count();
        (tree.preorder.len() == claimed + 1).then_some(tree)
    }

    /// The root of the tree (entry node for dominators, exit for
    /// postdominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of nodes of the underlying graph (reachable or not) —
    /// the `n` the tree was built over.
    pub fn num_nodes(&self) -> usize {
        self.idom.len()
    }

    /// The immediate dominator of `n`, or `None` for the root and for nodes
    /// unreachable from the root.
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n.index()]
    }

    /// Whether `n` is reachable from the root (and hence in the tree).
    pub fn is_reachable(&self, n: NodeId) -> bool {
        n == self.root || self.idom[n.index()].is_some()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Whether `a` dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Children of `n` in the dominator tree, sorted by node index.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.index()]
    }

    /// Depth of `n` below the root (root has depth 0).
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// Preorder traversal of the tree (parents before children) — the visit
    /// order required by the paper's Figure 7 algorithm.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.preorder.iter().copied()
    }

    /// Iterator over the proper ancestors of `n`, nearest first
    /// (`idom(n)`, `idom(idom(n))`, …, root).
    ///
    /// Walking this chain until a node satisfies a predicate implements the
    /// paper's "nearest postdominator of `n` in `Slice`".
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.idom(n),
        }
    }

    /// The nearest proper ancestor of `n` satisfying `pred`, if any.
    pub fn nearest_ancestor_where(
        &self,
        n: NodeId,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        self.ancestors(n).find(|&a| pred(a))
    }
}

/// Iterator over proper ancestors in a [`DomTree`], produced by
/// [`DomTree::ancestors`].
#[derive(Clone, Debug)]
pub struct Ancestors<'a> {
    tree: &'a DomTree,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.cur?;
        self.cur = self.tree.idom(n);
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running CFG from the Cooper–Harvey–Kennedy paper.
    fn chk_graph() -> DiGraph {
        // Nodes: 0=entry(6 in paper),1..5
        let mut g = DiGraph::with_nodes(6);
        for (a, b) in [
            (0, 4),
            (0, 3),
            (4, 1),
            (3, 2),
            (1, 2),
            (2, 1),
            (2, 5),
            (1, 5),
        ] {
            g.add_edge(a.into(), b.into());
        }
        g
    }

    #[test]
    fn chk_paper_example() {
        let g = chk_graph();
        let dom = DomTree::iterative(&g, 0.into());
        for n in [1usize, 2, 3, 4, 5] {
            assert_eq!(dom.idom(n.into()), Some(0.into()), "idom of {n}");
        }
        assert_eq!(dom.idom(0.into()), None);
    }

    #[test]
    fn diamond_interval_queries() {
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let dom = DomTree::iterative(&g, 0.into());
        assert!(dom.dominates(0.into(), 3.into()));
        assert!(dom.dominates(3.into(), 3.into()));
        assert!(!dom.strictly_dominates(3.into(), 3.into()));
        assert!(!dom.dominates(1.into(), 3.into()));
        assert!(!dom.dominates(2.into(), 1.into()));
    }

    #[test]
    fn chain_depths_and_ancestors() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(i.into(), (i + 1).into());
        }
        let dom = DomTree::iterative(&g, 0.into());
        assert_eq!(dom.depth(3.into()), 3);
        let anc: Vec<usize> = dom.ancestors(3.into()).map(|n| n.index()).collect();
        assert_eq!(anc, vec![2, 1, 0]);
        assert_eq!(
            dom.nearest_ancestor_where(3.into(), |a| a.index() < 2),
            Some(1.into())
        );
    }

    #[test]
    fn unreachable_nodes_are_excluded() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        let dom = DomTree::iterative(&g, 0.into());
        assert!(!dom.is_reachable(2.into()));
        assert_eq!(dom.idom(2.into()), None);
        assert!(!dom.dominates(0.into(), 2.into()));
        assert_eq!(dom.preorder().count(), 2);
    }

    #[test]
    fn loop_postdominators_via_reversal() {
        // 0 -> 1 -> 2 -> 1, 1 -> 3 (exit): postdominators computed on the
        // reverse graph rooted at 3.
        let mut g = DiGraph::with_nodes(4);
        for (a, b) in [(0, 1), (1, 2), (2, 1), (1, 3)] {
            g.add_edge(a.into(), b.into());
        }
        let pdom = DomTree::iterative(&g.reversed(), 3.into());
        assert_eq!(pdom.idom(0.into()), Some(1.into()));
        assert_eq!(pdom.idom(2.into()), Some(1.into()));
        assert_eq!(pdom.idom(1.into()), Some(3.into()));
        assert!(pdom.dominates(3.into(), 0.into()));
    }

    #[test]
    fn preorder_parents_first() {
        let g = chk_graph();
        let dom = DomTree::iterative(&g, 0.into());
        let order: Vec<_> = dom.preorder().collect();
        assert_eq!(order[0], NodeId::new(0));
        for &n in &order {
            if let Some(d) = dom.idom(n) {
                let pi = order.iter().position(|&x| x == d).unwrap();
                let ni = order.iter().position(|&x| x == n).unwrap();
                assert!(pi < ni, "parent {d:?} must precede child {n:?}");
            }
        }
    }

    #[test]
    fn from_idom_array_round_trips_and_rejects_malformed_input() {
        let g = chk_graph();
        let dom = DomTree::iterative(&g, 0.into());
        let raw: Vec<Option<NodeId>> = g.nodes().map(|n| dom.idom(n)).collect();
        let back = DomTree::from_idom_array(g.len(), 0.into(), raw.clone()).expect("well-formed");
        for n in g.nodes() {
            assert_eq!(dom.idom(n), back.idom(n));
            assert_eq!(dom.depth(n), back.depth(n));
            for m in g.nodes() {
                assert_eq!(dom.dominates(n, m), back.dominates(n, m), "{n:?} vs {m:?}");
            }
        }
        assert_eq!(
            dom.preorder().collect::<Vec<_>>(),
            back.preorder().collect::<Vec<_>>(),
            "derived preorder is deterministic"
        );

        // Wrong length.
        assert!(DomTree::from_idom_array(4, 0.into(), raw.clone()).is_none());
        // Root out of range / root with a parent.
        assert!(DomTree::from_idom_array(6, 99.into(), raw.clone()).is_none());
        let mut bad = raw.clone();
        bad[0] = Some(1.into());
        assert!(DomTree::from_idom_array(6, 0.into(), bad).is_none());
        // Out-of-range parent.
        let mut bad = raw.clone();
        bad[3] = Some(99.into());
        assert!(DomTree::from_idom_array(6, 0.into(), bad).is_none());
        // A parent cycle detached from the root must not hang or pass.
        let mut bad = raw;
        bad[3] = Some(4.into());
        bad[4] = Some(3.into());
        assert!(DomTree::from_idom_array(6, 0.into(), bad).is_none());
    }

    #[test]
    fn iterative_matches_lengauer_tarjan_on_fixtures() {
        for g in [chk_graph(), {
            let mut g = DiGraph::with_nodes(8);
            for (a, b) in [
                (0, 1),
                (1, 2),
                (1, 3),
                (2, 7),
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 7),
                (6, 4),
                (7, 1),
            ] {
                g.add_edge(a.into(), b.into());
            }
            g
        }] {
            let a = DomTree::iterative(&g, 0.into());
            let b = DomTree::lengauer_tarjan(&g, 0.into());
            for n in g.nodes() {
                assert_eq!(a.idom(n), b.idom(n), "idom mismatch at {n:?}");
            }
        }
    }
}
