//! The Lengauer–Tarjan dominator algorithm (simple variant).
//!
//! Kept as an independent construction so the property tests can cross-check
//! it against both [`crate::DomTree::iterative`] and the brute-force
//! definition, and so the ablation bench can compare their costs.

use crate::{DiGraph, NodeId};

const NONE: usize = usize::MAX;

/// All per-vertex arrays are indexed by DFS number; `dfsnum` maps graph nodes
/// to DFS numbers (or [`NONE`] if unreachable).
struct LtState<'g> {
    g: &'g DiGraph,
    dfsnum: Vec<usize>,
    /// vertex[i] is the node with DFS number i.
    vertex: Vec<NodeId>,
    /// DFS tree parent.
    parent: Vec<usize>,
    semi: Vec<usize>,
    /// Union-find forest with path compression for EVAL/LINK.
    ancestor: Vec<usize>,
    label: Vec<usize>,
    /// Buckets of vertices whose semidominator is the indexed vertex.
    bucket: Vec<Vec<usize>>,
    idom: Vec<usize>,
}

impl<'g> LtState<'g> {
    fn dfs(&mut self, root: NodeId) {
        let mut stack = vec![(root, NONE)];
        while let Some((v, p)) = stack.pop() {
            if self.dfsnum[v.index()] != NONE {
                continue;
            }
            let num = self.vertex.len();
            self.dfsnum[v.index()] = num;
            self.vertex.push(v);
            self.parent.push(p);
            self.semi.push(num);
            self.ancestor.push(NONE);
            self.label.push(num);
            self.bucket.push(Vec::new());
            self.idom.push(NONE);
            for &w in self.g.succs(v).iter().rev() {
                if self.dfsnum[w.index()] == NONE {
                    stack.push((w, num));
                }
            }
        }
    }

    /// EVAL with iterative path compression: returns the vertex with minimal
    /// semidominator on the forest path from `v`'s root (exclusive) to `v`.
    fn eval(&mut self, v: usize) -> usize {
        if self.ancestor[v] == NONE {
            return self.label[v];
        }
        // Collect the path up to (but excluding) the forest root.
        let mut path = Vec::new();
        let mut u = v;
        while self.ancestor[self.ancestor[u]] != NONE {
            path.push(u);
            u = self.ancestor[u];
        }
        let top = u; // ancestor[top] is the forest root
                     // Compress top-down so each node sees its (already compressed)
                     // parent's best label.
        for &w in path.iter().rev() {
            let a = self.ancestor[w];
            if self.semi[self.label[a]] < self.semi[self.label[w]] {
                self.label[w] = self.label[a];
            }
            self.ancestor[w] = self.ancestor[top];
        }
        self.label[v]
    }

    fn link(&mut self, parent: usize, child: usize) {
        self.ancestor[child] = parent;
    }
}

/// Computes immediate dominators with Lengauer–Tarjan; returns `None` for the
/// root and unreachable nodes.
pub(crate) fn lengauer_tarjan_idoms(g: &DiGraph, root: NodeId) -> Vec<Option<NodeId>> {
    let mut st = LtState {
        g,
        dfsnum: vec![NONE; g.len()],
        vertex: Vec::new(),
        parent: Vec::new(),
        semi: Vec::new(),
        ancestor: Vec::new(),
        label: Vec::new(),
        bucket: Vec::new(),
        idom: Vec::new(),
    };
    st.dfs(root);
    let n = st.vertex.len();

    // Process vertices in reverse DFS order (skipping the root).
    for w in (1..n).rev() {
        // Step 2: compute semidominators.
        let wnode = st.vertex[w];
        for &vnode in g.preds(wnode) {
            let v = st.dfsnum[vnode.index()];
            if v == NONE {
                continue; // predecessor unreachable from root
            }
            let u = st.eval(v);
            if st.semi[u] < st.semi[w] {
                st.semi[w] = st.semi[u];
            }
        }
        st.bucket[st.semi[w]].push(w);
        let p = st.parent[w];
        st.link(p, w);
        // Step 3: implicitly define idoms for the parent's bucket.
        let bucket = std::mem::take(&mut st.bucket[p]);
        for v in bucket {
            let u = st.eval(v);
            st.idom[v] = if st.semi[u] < st.semi[v] { u } else { p };
        }
    }

    // Step 4: explicit idoms in DFS order.
    for w in 1..n {
        if st.idom[w] != st.semi[w] {
            st.idom[w] = st.idom[st.idom[w]];
        }
    }

    let mut out = vec![None; g.len()];
    for w in 1..n {
        out[st.vertex[w].index()] = Some(st.vertex[st.idom[w]]);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{dominators_brute_force, DiGraph, DomTree};

    #[test]
    fn matches_brute_force_on_tricky_graph() {
        // The example from the Lengauer–Tarjan paper (13 nodes).
        let names = "RABCDEFGHIJKL";
        let idx = |c: char| names.find(c).unwrap();
        let mut g = DiGraph::with_nodes(13);
        for (a, b) in [
            ('R', 'A'),
            ('R', 'B'),
            ('R', 'C'),
            ('A', 'D'),
            ('B', 'A'),
            ('B', 'D'),
            ('B', 'E'),
            ('C', 'F'),
            ('C', 'G'),
            ('D', 'L'),
            ('E', 'H'),
            ('F', 'I'),
            ('G', 'I'),
            ('G', 'J'),
            ('H', 'E'),
            ('H', 'K'),
            ('I', 'K'),
            ('J', 'I'),
            ('K', 'I'),
            ('K', 'R'),
            ('L', 'H'),
        ] {
            g.add_edge(idx(a).into(), idx(b).into());
        }
        let lt = DomTree::lengauer_tarjan(&g, 0.into());
        let brute = dominators_brute_force(&g, 0.into());
        for n in g.nodes() {
            assert_eq!(lt.idom(n), brute[n.index()], "idom mismatch at {n:?}");
        }
        // Spot-check published answers: idom(K) = R, idom(I) = R, idom(H) = R.
        assert_eq!(lt.idom(idx('K').into()), Some(0.into()));
        assert_eq!(lt.idom(idx('I').into()), Some(0.into()));
        assert_eq!(lt.idom(idx('H').into()), Some(0.into()));
    }

    #[test]
    fn regression_cross_edge_semidominators() {
        // Minimal counterexample found by proptest against an earlier
        // implementation that conflated DFS numbers with semidominators.
        let mut g = DiGraph::with_nodes(5);
        for (a, b) in [(0, 1), (0, 3), (1, 2), (2, 3), (2, 4), (3, 4), (4, 2)] {
            g.add_edge(a.into(), b.into());
        }
        let lt = DomTree::lengauer_tarjan(&g, 0.into());
        let brute = dominators_brute_force(&g, 0.into());
        for n in g.nodes() {
            assert_eq!(lt.idom(n), brute[n.index()], "idom mismatch at {n:?}");
        }
    }

    #[test]
    fn handles_unreachable_predecessors() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(3.into(), 1.into()); // 3 unreachable from 0
        g.add_edge(1.into(), 2.into());
        let lt = DomTree::lengauer_tarjan(&g, 0.into());
        assert_eq!(lt.idom(1.into()), Some(0.into()));
        assert_eq!(lt.idom(2.into()), Some(1.into()));
        assert_eq!(lt.idom(3.into()), None);
    }
}
