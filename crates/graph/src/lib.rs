//! Generic directed-graph toolkit for the `jumpslice` project.
//!
//! This crate provides the graph substrate that every analysis in the
//! workspace is built on: a compact adjacency-list [`DiGraph`], depth-first
//! traversal orders, reachability, Tarjan strongly-connected components, and
//! two independent dominator-tree constructions (the iterative
//! Cooper–Harvey–Kennedy algorithm and the classic Lengauer–Tarjan
//! algorithm). Postdominator trees — the structure at the heart of Agrawal's
//! PLDI'94 slicing algorithm — are obtained by running either construction on
//! the [reverse graph](DiGraph::reversed).
//!
//! # Examples
//!
//! ```
//! use jumpslice_graph::{DiGraph, DomTree};
//!
//! // A diamond: 0 -> {1, 2} -> 3
//! let mut g = DiGraph::with_nodes(4);
//! g.add_edge(0.into(), 1.into());
//! g.add_edge(0.into(), 2.into());
//! g.add_edge(1.into(), 3.into());
//! g.add_edge(2.into(), 3.into());
//!
//! let dom = DomTree::iterative(&g, 0.into());
//! assert_eq!(dom.idom(3.into()), Some(0.into()));
//! assert!(dom.dominates(0.into(), 3.into()));
//! assert!(!dom.dominates(1.into(), 3.into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod digraph;
mod dom;
mod frontier;
mod lt;
mod scc;
mod traversal;

pub use brute::dominators_brute_force;
pub use digraph::{DiGraph, NodeId};
pub use dom::DomTree;
pub use frontier::dominance_frontiers;
pub use scc::{condensation, tarjan_scc};
pub use traversal::{dfs_postorder, dfs_preorder, reachable_from, reverse_postorder};
