//! Microbenchmarks for every substrate the slicer stands on: parsing, CFG
//! construction, reaching definitions, control dependence, the lexical
//! successor tree, and the interpreter. These bound where end-to-end time
//! goes and catch regressions in any one layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bench, Throughput};
use jumpslice_bench::sized_structured;
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{DataDeps, LiveVars, ReachingDefs};
use jumpslice_interp::{run, Input};
use jumpslice_lang::{parse, print_program, Structure};
use jumpslice_pdg::ControlDeps;
use std::hint::black_box;

const SIZES: &[usize] = &[100, 400, 1600];

fn substrates(c: &mut Bench) {
    let mut group = c.benchmark_group("substrates");
    for &size in SIZES {
        let p = sized_structured(size);
        let src = print_program(&p);
        let cfg = Cfg::build(&p);
        let structure = Structure::of(&p);
        group.throughput(Throughput::Elements(p.len() as u64));

        group.bench_with_input(BenchmarkId::new("parse", p.len()), &src, |b, s| {
            b.iter(|| black_box(parse(black_box(s)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cfg-build", p.len()), &p, |b, p| {
            b.iter(|| black_box(Cfg::build(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("reaching-defs", p.len()), &p, |b, p| {
            b.iter(|| black_box(ReachingDefs::compute(black_box(p), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("data-deps", p.len()), &p, |b, p| {
            b.iter(|| black_box(DataDeps::compute(black_box(p), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("live-vars", p.len()), &p, |b, p| {
            b.iter(|| black_box(LiveVars::compute(black_box(p), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("control-deps", p.len()), &p, |b, p| {
            b.iter(|| black_box(ControlDeps::compute(black_box(p), &cfg)))
        });
        group.bench_with_input(
            BenchmarkId::new("lexsucc-tree", p.len()),
            &p,
            |b, p| {
                b.iter(|| black_box(jumpslice_core::LexSuccTree::build(black_box(p), &structure)))
            },
        );
        group.bench_with_input(BenchmarkId::new("interp-run", p.len()), &p, |b, p| {
            let input = Input {
                fuel: 20_000,
                ..Input::default()
            };
            b.iter(|| black_box(run(black_box(p), &input)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = substrates
}

/// Short measurement windows: ~145 benchmarks must fit a CI budget; the
/// effects measured here are orders-of-magnitude, not single percents.
fn short() -> Bench {
    Bench::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_main!(benches);
