//! Microbenchmarks for every substrate the slicer stands on: parsing, CFG
//! construction, reaching definitions, control dependence, the lexical
//! successor tree, and the interpreter. These bound where end-to-end time
//! goes and catch regressions in any one layer.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::sized_structured;
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{DataDeps, LiveVars, ReachingDefs};
use jumpslice_interp::{run, Input};
use jumpslice_lang::{parse, print_program, Structure};
use jumpslice_pdg::ControlDeps;
use std::hint::black_box;

const SIZES: &[usize] = &[100, 400, 1600];

fn main() {
    let mut r = Runner::from_args();
    for &size in SIZES {
        let p = sized_structured(size);
        let src = print_program(&p);
        let cfg = Cfg::build(&p);
        let structure = Structure::of(&p);
        let n = p.len();

        r.bench(&format!("substrates/parse/{n}"), || {
            black_box(parse(black_box(&src)).unwrap())
        });
        r.bench(&format!("substrates/cfg-build/{n}"), || {
            black_box(Cfg::build(black_box(&p)))
        });
        r.bench(&format!("substrates/reaching-defs/{n}"), || {
            black_box(ReachingDefs::compute(black_box(&p), &cfg))
        });
        r.bench(&format!("substrates/data-deps/{n}"), || {
            black_box(DataDeps::compute(black_box(&p), &cfg))
        });
        r.bench(&format!("substrates/live-vars/{n}"), || {
            black_box(LiveVars::compute(black_box(&p), &cfg))
        });
        r.bench(&format!("substrates/control-deps/{n}"), || {
            black_box(ControlDeps::compute(black_box(&p), &cfg))
        });
        r.bench(&format!("substrates/lexsucc-tree/{n}"), || {
            black_box(jumpslice_core::LexSuccTree::build(
                black_box(&p),
                &structure,
            ))
        });
        let input = Input {
            fuel: 20_000,
            ..Input::default()
        };
        r.bench(&format!("substrates/interp-run/{n}"), || {
            black_box(run(black_box(&p), &input))
        });
    }
    r.finish();
}
