//! The batch-slicing bench: one program, a pool of 100+ criteria, three
//! ways to sweep them.
//!
//! * `per-criterion-analysis` — what a naive sweep used to pay: a fresh
//!   `Analysis::new` (and therefore reaching defs, PDG, pdom tree, LST)
//!   for every criterion;
//! * `shared-analysis-sequential` — `BatchSlicer` pinned to one thread:
//!   one warm analysis, a plain loop of closures;
//! * `shared-analysis-threads` — `BatchSlicer` at the machine's available
//!   parallelism.
//!
//! On a single-core container the headline speedup is the cached-analysis
//! amortization (cold vs warm); the thread fan-out is a bonus that only
//! shows up on multicore hardware.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{criterion_pool, sized_structured, sized_unstructured};
use jumpslice_core::{agrawal_slice, Analysis, BatchSlicer};
use std::hint::black_box;

const SIZES: &[usize] = &[100, 1000, 5000];
const BATCH: usize = 120;

fn main() {
    let mut r = Runner::from_args();
    let mut rows: Vec<(String, usize, f64, f64, f64)> = Vec::new();

    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for &size in SIZES {
            let p = make(size);
            let a = Analysis::new(&p);
            a.warm();
            let criteria = criterion_pool(&p, &a, BATCH);
            let n = p.len();

            let cold = r.bench(
                &format!("batch/{family}/{n}/per-criterion-analysis"),
                || {
                    let mut total = 0usize;
                    for c in &criteria {
                        let fresh = Analysis::new(black_box(&p));
                        total += agrawal_slice(&fresh, c).len();
                    }
                    black_box(total)
                },
            );
            let warm1 = r.bench(
                &format!("batch/{family}/{n}/shared-analysis-sequential"),
                || {
                    black_box(
                        BatchSlicer::new(&a)
                            .with_threads(1)
                            .slice_all(agrawal_slice, &criteria),
                    )
                },
            );
            let warm_t = r.bench(
                &format!("batch/{family}/{n}/shared-analysis-threads"),
                || black_box(BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria)),
            );
            if cold > 0.0 && warm_t > 0.0 {
                rows.push((family.to_string(), n, cold, warm1, warm_t));
            }
        }
    }

    if !rows.is_empty() {
        println!("\nbatch speedups ({BATCH} criteria, fig7-agrawal):");
        println!(
            "  {:<14} {:>6} {:>26} {:>26}",
            "family", "stmts", "warm-seq vs cold", "warm-threads vs cold"
        );
        for (family, n, cold, warm1, warm_t) in &rows {
            println!(
                "  {family:<14} {n:>6} {:>25.2}x {:>25.2}x",
                cold / warm1,
                cold / warm_t
            );
        }
    }
    r.finish();
}
