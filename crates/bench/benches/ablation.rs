//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! * `dominators`: Lengauer–Tarjan vs the iterative Cooper–Harvey–Kennedy
//!   construction (the workspace default) on real flowgraphs;
//! * `traversal_tree`: Figure 7 driven by the postdominator tree's preorder
//!   vs the lexical successor tree's (§3: either is admissible);
//! * `closure`: the conventional slicer's bitset worklist closure vs the
//!   `BTreeSet` recursion it replaced — the representation half of this
//!   workspace's batch-engine speedup;
//! * `control_dependence`: the Ferrante–Ottenstein–Warren edge walk vs the
//!   postdominance-frontier construction (results are identical; the
//!   pdg crate's tests cross-check them).

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{live_writes, sized_structured, sized_unstructured};
use jumpslice_core::{agrawal_slice, agrawal_slice_with_order, Analysis, Criterion};
use jumpslice_graph::DomTree;
use jumpslice_lang::StmtId;
use std::collections::BTreeSet;
use std::hint::black_box;

fn dominators(r: &mut Runner) {
    for size in [200usize, 800, 3200] {
        let p = sized_unstructured(size);
        let cfg = jumpslice_cfg::Cfg::build(&p);
        let rev = cfg.graph().reversed();
        let exit = cfg.exit();
        r.bench(
            &format!("ablation/dominators/iterative/{}", p.len()),
            || black_box(DomTree::iterative(&rev, exit)),
        );
        r.bench(
            &format!("ablation/dominators/lengauer-tarjan/{}", p.len()),
            || black_box(DomTree::lengauer_tarjan(&rev, exit)),
        );
    }
}

fn traversal_tree(r: &mut Runner) {
    for size in [200usize, 800] {
        let p = sized_unstructured(size);
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(*live_writes(&p, &a).last().unwrap());
        let lst_order = a.jumps_in_lst_preorder();
        r.bench(
            &format!("ablation/traversal_tree/pdom-preorder/{}", p.len()),
            || black_box(agrawal_slice(&a, &crit)),
        );
        r.bench(
            &format!("ablation/traversal_tree/lst-preorder/{}", p.len()),
            || black_box(agrawal_slice_with_order(&a, &crit, &lst_order)),
        );
    }
}

/// The pre-bitset closure: recursion over a `BTreeSet`, kept only as this
/// ablation's baseline.
fn recursive_closure(a: &Analysis<'_>, seed: StmtId, out: &mut BTreeSet<StmtId>) {
    if !out.insert(seed) {
        return;
    }
    for &d in a.pdg().data().deps(seed) {
        recursive_closure(a, d, out);
    }
    for &d in a.pdg().control().deps(seed) {
        recursive_closure(a, d, out);
    }
}

fn closure(r: &mut Runner) {
    for size in [200usize, 800, 3200] {
        let p = sized_structured(size);
        let a = Analysis::new(&p);
        let crit = *live_writes(&p, &a).last().unwrap();
        r.bench(
            &format!("ablation/closure/bitset-worklist/{}", p.len()),
            || black_box(a.pdg().backward_closure([crit])),
        );
        r.bench(
            &format!("ablation/closure/btreeset-recursive/{}", p.len()),
            || {
                let mut out = BTreeSet::new();
                recursive_closure(&a, crit, &mut out);
                black_box(out)
            },
        );
    }
}

fn control_dependence(r: &mut Runner) {
    for size in [200usize, 800, 3200] {
        let p = sized_unstructured(size);
        let cfg = jumpslice_cfg::Cfg::build(&p);
        r.bench(
            &format!("ablation/control_dependence/fow-walk/{}", p.len()),
            || black_box(jumpslice_pdg::ControlDeps::compute(black_box(&p), &cfg)),
        );
        r.bench(
            &format!("ablation/control_dependence/pdom-frontiers/{}", p.len()),
            || {
                black_box(jumpslice_pdg::ControlDeps::compute_via_frontiers(
                    black_box(&p),
                    &cfg,
                ))
            },
        );
    }
}

fn main() {
    let mut r = Runner::from_args();
    dominators(&mut r);
    traversal_tree(&mut r);
    closure(&mut r);
    control_dependence(&mut r);
    r.finish();
}
