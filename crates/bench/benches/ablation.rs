//! Ablations for the design choices DESIGN.md §5 calls out:
//!
//! * `dominators`: Lengauer–Tarjan vs the iterative Cooper–Harvey–Kennedy
//!   construction (the workspace default) on real flowgraphs;
//! * `traversal_tree`: Figure 7 driven by the postdominator tree's preorder
//!   vs the lexical successor tree's (§3: either is admissible);
//! * `closure`: the conventional slicer's worklist closure vs a recursive
//!   formulation;
//! * `control_dependence`: the Ferrante–Ottenstein–Warren edge walk vs the
//!   postdominance-frontier construction (results are identical; the
//!   pdg crate's tests cross-check them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bench};
use jumpslice_bench::{live_writes, sized_structured, sized_unstructured};
use jumpslice_core::{agrawal_slice, agrawal_slice_with_order, Analysis, Criterion};
use jumpslice_graph::DomTree;
use jumpslice_lang::StmtId;
use std::collections::BTreeSet;
use std::hint::black_box;

fn dominators(c: &mut Bench) {
    let mut group = c.benchmark_group("ablation/dominators");
    for size in [200usize, 800, 3200] {
        let p = sized_unstructured(size);
        let cfg = jumpslice_cfg::Cfg::build(&p);
        let rev = cfg.graph().reversed();
        let exit = cfg.exit();
        group.bench_with_input(BenchmarkId::new("iterative", p.len()), &rev, |b, g| {
            b.iter(|| black_box(DomTree::iterative(g, exit)))
        });
        group.bench_with_input(BenchmarkId::new("lengauer-tarjan", p.len()), &rev, |b, g| {
            b.iter(|| black_box(DomTree::lengauer_tarjan(g, exit)))
        });
    }
    group.finish();
}

fn traversal_tree(c: &mut Bench) {
    let mut group = c.benchmark_group("ablation/traversal_tree");
    for size in [200usize, 800] {
        let p = sized_unstructured(size);
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(*live_writes(&p, &a).last().unwrap());
        let lst_order = a.jumps_in_lst_preorder();
        group.bench_with_input(BenchmarkId::new("pdom-preorder", p.len()), &a, |b, a| {
            b.iter(|| black_box(agrawal_slice(a, &crit)))
        });
        group.bench_with_input(BenchmarkId::new("lst-preorder", p.len()), &a, |b, a| {
            b.iter(|| black_box(agrawal_slice_with_order(a, &crit, &lst_order)))
        });
    }
    group.finish();
}

/// Recursive closure used only by this ablation.
fn recursive_closure(a: &Analysis<'_>, seed: StmtId, out: &mut BTreeSet<StmtId>) {
    if !out.insert(seed) {
        return;
    }
    for &d in a.pdg().data().deps(seed) {
        recursive_closure(a, d, out);
    }
    for &d in a.pdg().control().deps(seed) {
        recursive_closure(a, d, out);
    }
}

fn closure(c: &mut Bench) {
    let mut group = c.benchmark_group("ablation/closure");
    for size in [200usize, 800, 3200] {
        let p = sized_structured(size);
        let a = Analysis::new(&p);
        let crit = *live_writes(&p, &a).last().unwrap();
        group.bench_with_input(BenchmarkId::new("worklist", p.len()), &a, |b, a| {
            b.iter(|| black_box(a.pdg().backward_closure([crit])))
        });
        group.bench_with_input(BenchmarkId::new("recursive", p.len()), &a, |b, a| {
            b.iter(|| {
                let mut out = BTreeSet::new();
                recursive_closure(a, crit, &mut out);
                black_box(out)
            })
        });
    }
    group.finish();
}

fn control_dependence(c: &mut Bench) {
    let mut group = c.benchmark_group("ablation/control_dependence");
    for size in [200usize, 800, 3200] {
        let p = sized_unstructured(size);
        let cfg = jumpslice_cfg::Cfg::build(&p);
        group.bench_with_input(BenchmarkId::new("fow-walk", p.len()), &p, |b, p| {
            b.iter(|| black_box(jumpslice_pdg::ControlDeps::compute(black_box(p), &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("pdom-frontiers", p.len()), &p, |b, p| {
            b.iter(|| {
                black_box(jumpslice_pdg::ControlDeps::compute_via_frontiers(
                    black_box(p),
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = dominators, traversal_tree, closure, control_dependence
}

/// Short measurement windows: ~145 benchmarks must fit a CI budget; the
/// effects measured here are orders-of-magnitude, not single percents.
fn short() -> Bench {
    Bench::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_main!(benches);
