//! Precision-vs-speed across all eight algorithms on a fixed mixed corpus:
//! criterion times the slicing throughput; the average slice sizes (the
//! precision half of the trade-off, Figure 14's point at corpus scale) are
//! printed once up front so a single run yields the whole table.

use criterion::{criterion_group, criterion_main, Criterion as Bench};
use jumpslice_bench::{live_writes, structured_corpus, unstructured_corpus, ALL_ALGOS};
use jumpslice_core::{is_structured, Analysis, Criterion};
use std::hint::black_box;

fn precision(c: &mut Bench) {
    let corpus: Vec<_> = structured_corpus(10, 60)
        .into_iter()
        .chain(unstructured_corpus(10, 40))
        .collect();
    let prepared: Vec<_> = corpus
        .iter()
        .map(|p| {
            let a = Analysis::new(p);
            let crit = Criterion::at_stmt(*live_writes(p, &a).last().unwrap());
            (p, a, crit)
        })
        .collect();

    // Print the precision table once (criterion reruns the closure; keep
    // the printing out of timing).
    println!("\navg slice size over {} programs:", prepared.len());
    for &(alg, f) in ALL_ALGOS {
        let mut total = 0usize;
        let mut cases = 0usize;
        for (p, a, crit) in &prepared {
            if alg == "fig12-structured" && !is_structured(a) {
                continue;
            }
            let _ = p;
            total += f(a, crit).len();
            cases += 1;
        }
        println!("  {alg:<20} {:>8.2}", total as f64 / cases as f64);
    }

    let mut group = c.benchmark_group("precision/corpus-throughput");
    for &(alg, f) in ALL_ALGOS {
        group.bench_function(alg, |b| {
            b.iter(|| {
                for (_, a, crit) in &prepared {
                    if alg == "fig12-structured" && !is_structured(a) {
                        continue;
                    }
                    black_box(f(a, crit));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = precision
}

/// Short measurement windows: ~145 benchmarks must fit a CI budget; the
/// effects measured here are orders-of-magnitude, not single percents.
fn short() -> Bench {
    Bench::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_main!(benches);
