//! Precision-vs-speed across all eight algorithms on a fixed mixed corpus:
//! the harness times the slicing throughput; the average slice sizes (the
//! precision half of the trade-off, Figure 14's point at corpus scale) are
//! printed once up front so a single run yields the whole table.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{live_writes, structured_corpus, unstructured_corpus, ALL_ALGOS};
use jumpslice_core::{is_structured, Analysis, Criterion};
use std::hint::black_box;

fn main() {
    let corpus: Vec<_> = structured_corpus(10, 60)
        .into_iter()
        .chain(unstructured_corpus(10, 40))
        .collect();
    let prepared: Vec<_> = corpus
        .iter()
        .map(|p| {
            let a = Analysis::new(p);
            let crit = Criterion::at_stmt(*live_writes(p, &a).last().unwrap());
            (p, a, crit)
        })
        .collect();

    // The precision table, printed once (outside any timing).
    println!("\navg slice size over {} programs:", prepared.len());
    for &(alg, f) in ALL_ALGOS {
        let mut total = 0usize;
        let mut cases = 0usize;
        for (p, a, crit) in &prepared {
            if alg == "fig12-structured" && !is_structured(a) {
                continue;
            }
            let _ = p;
            total += f(a, crit).len();
            cases += 1;
        }
        println!("  {alg:<20} {:>8.2}", total as f64 / cases as f64);
    }
    println!();

    let mut r = Runner::from_args();
    for &(alg, f) in ALL_ALGOS {
        r.bench(&format!("precision/corpus-throughput/{alg}"), || {
            for (_, a, crit) in &prepared {
                if alg == "fig12-structured" && !is_structured(a) {
                    continue;
                }
                black_box(f(a, crit));
            }
        });
    }
    r.finish();
}
