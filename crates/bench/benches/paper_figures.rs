//! One bench per paper figure: how long each algorithm takes to slice each
//! figure program on its paper criterion. The absolute numbers are
//! microseconds on tiny programs; the point is the relative cost order the
//! paper argues qualitatively — conventional < Figure 13 < Figure 12 <
//! Figure 7 ≈ Ball–Horwitz (which must rebuild the dependence graph).

use jumpslice_bench::harness::Runner;
use jumpslice_bench::ALL_ALGOS;
use jumpslice_core::{corpus, Analysis, Criterion};
use std::hint::black_box;

fn main() {
    let mut r = Runner::from_args();
    for (name, prog, line) in corpus::all() {
        let analysis = Analysis::new(&prog);
        let crit = Criterion::at_stmt(prog.at_line(line));
        for &(alg, f) in ALL_ALGOS {
            if alg == "fig12-structured" && !jumpslice_core::is_structured(&analysis) {
                continue;
            }
            r.bench(&format!("paper_figures/{name}/{alg}"), || {
                black_box(f(black_box(&analysis), black_box(&crit)))
            });
        }
        // End-to-end: parse + analyze + slice, the full user path.
        r.bench(&format!("paper_figures/{name}/end-to-end-fig7"), || {
            let p = jumpslice_lang::parse(black_box(match name {
                "fig1" => corpus::FIG1_SRC,
                "fig3" => corpus::FIG3_SRC,
                "fig5" => corpus::FIG5_SRC,
                "fig8" => corpus::FIG8_SRC,
                "fig10" => corpus::FIG10_SRC,
                "fig14" => corpus::FIG14_SRC,
                "fig16" => corpus::FIG16_SRC,
                _ => unreachable!(),
            }))
            .unwrap();
            let a = Analysis::new(&p);
            let crit = Criterion::at_stmt(p.at_line(line));
            black_box(jumpslice_core::agrawal_slice(&a, &crit))
        });
    }
    r.finish();
}
