//! Scaling sweep (no perf evaluation exists in the paper — this is the
//! synthetic substitute documented in EXPERIMENTS.md): slicing time vs
//! program size for the core algorithms, on structured and unstructured
//! corpora, plus the cost of the one-time analysis itself.
//!
//! Expected shape: all algorithms are near-linear in program size at these
//! scales; conventional is cheapest, Figure 13 adds a cheap scan,
//! Figure 7 adds the traversal, and Ball–Horwitz pays an extra dependence-
//! graph construction per slice. `Analysis::new` is now lazy, so the
//! `analysis-warm` rows time forcing every cached artifact — the one-time
//! cost a whole batch of criteria amortizes.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{live_writes, sized_structured, sized_unstructured, CORE_ALGOS};
use jumpslice_core::{Analysis, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[100, 400, 1600];

fn main() {
    let mut r = Runner::from_args();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for &size in SIZES {
            let p = make(size);
            let a = Analysis::new(&p);
            let crit =
                Criterion::at_stmt(*live_writes(&p, &a).last().expect("corpus ends with writes"));
            for &(alg, f) in CORE_ALGOS {
                r.bench(&format!("scaling/{family}/{alg}/{}", p.len()), || {
                    black_box(f(black_box(&a), black_box(&crit)))
                });
            }
        }
    }
    for &size in SIZES {
        let p = sized_structured(size);
        r.bench(
            &format!("scaling/analysis/analysis-warm/{}", p.len()),
            || {
                let a = Analysis::new(black_box(&p));
                a.warm();
                black_box(a.stats())
            },
        );
    }
    r.finish();
}
