//! Scaling sweep (no perf evaluation exists in the paper — this is the
//! synthetic substitute documented in EXPERIMENTS.md): slicing time vs
//! program size for the core algorithms, on structured and unstructured
//! corpora, plus the cost of the one-time analysis itself.
//!
//! Expected shape: all algorithms are near-linear in program size at these
//! scales; conventional is cheapest, Figure 13 adds a cheap scan,
//! Figure 7 adds the traversal, and Ball–Horwitz pays an extra dependence-
//! graph construction per slice. `Analysis::new` dominates everything —
//! the paper's "leave the graphs intact" design pays off when many
//! criteria are sliced against one analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Bench, Throughput};
use jumpslice_bench::{live_writes, sized_structured, sized_unstructured, CORE_ALGOS};
use jumpslice_core::{Analysis, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[100, 400, 1600];

fn slicing_scaling(c: &mut Bench) {
    for (family, make) in [
        ("structured", sized_structured as fn(usize) -> jumpslice_lang::Program),
        ("unstructured", sized_unstructured as fn(usize) -> jumpslice_lang::Program),
    ] {
        let mut group = c.benchmark_group(format!("scaling/{family}"));
        for &size in SIZES {
            let p = make(size);
            let a = Analysis::new(&p);
            let crit = Criterion::at_stmt(
                *live_writes(&p, &a).last().expect("corpus ends with writes"),
            );
            group.throughput(Throughput::Elements(p.len() as u64));
            for &(alg, f) in CORE_ALGOS {
                group.bench_with_input(BenchmarkId::new(alg, p.len()), &p, |b, _| {
                    b.iter(|| black_box(f(black_box(&a), black_box(&crit))))
                });
            }
        }
        group.finish();
    }
}

fn analysis_scaling(c: &mut Bench) {
    let mut group = c.benchmark_group("scaling/analysis");
    for &size in SIZES {
        let p = sized_structured(size);
        group.throughput(Throughput::Elements(p.len() as u64));
        group.bench_with_input(BenchmarkId::new("analysis-new", p.len()), &p, |b, p| {
            b.iter(|| black_box(Analysis::new(black_box(p))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = slicing_scaling, analysis_scaling
}

/// Short measurement windows: ~145 benchmarks must fit a CI budget; the
/// effects measured here are orders-of-magnitude, not single percents.
fn short() -> Bench {
    Bench::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_main!(benches);
