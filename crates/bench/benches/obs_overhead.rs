//! Pins the cost of *disabled* instrumentation: with no trace sink
//! installed, every obs hook is a thread-local read and a branch. This
//! harness measures that per-hook cost directly, counts how many hooks a
//! real batch sweep executes, and asserts the projected total is ≤ 2% of
//! the sweep's wall-clock time — the "zero-cost-when-disabled" contract,
//! enforced rather than claimed.
//!
//! The projection (hooks × per-hook-cost vs sweep time) is used instead of
//! a raw A/B timing diff because a sub-2% delta between two multi-ms
//! measurements drowns in scheduler noise on shared CI runners, while both
//! projection inputs are individually stable.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{criterion_pool, sized_unstructured};
use jumpslice_core::{agrawal_slice, Analysis, BatchSlicer};
use jumpslice_obs as obs;
use std::hint::black_box;

fn main() {
    assert!(!obs::enabled(), "bench must run with no sink installed");
    let mut r = Runner::from_args().samples(5);

    // Per-hook disabled cost: the record() fast path (enabled check only;
    // the event closure must not run) and an inert phase guard.
    let record_ns = r.bench("obs/record-disabled", || {
        obs::record(|| {
            unreachable!("event closure must not run while disabled");
        });
    });
    let phase_ns = r.bench("obs/phase-disabled", || {
        let guard = obs::phase(obs::Phase::PdgBuild);
        black_box(&guard);
    });

    // A real sweep: the unstructured family exercises every hook (fixpoint
    // rounds, jump admissions, label re-association, batch counters).
    let p = sized_unstructured(1000);
    let a = Analysis::new(&p);
    a.warm();
    let criteria = criterion_pool(&p, &a, 120);
    let batch = BatchSlicer::new(&a).with_threads(1);

    // Count the hooks one sweep executes by actually capturing them. Phase
    // guards fire one record() each on drop; captured events therefore
    // bound record-calls from below, and phase guards are counted
    // separately for their constructor cost.
    let (_, events) = obs::capture(|| black_box(batch.slice_all(agrawal_slice, &criteria)));
    let record_calls = events.len() as f64;
    let phase_guards = events
        .iter()
        .filter(|e| matches!(e, obs::Event::Phase { .. }))
        .count() as f64;

    let sweep_ns = r.bench("obs/batch-sweep-disabled", || {
        black_box(batch.slice_all(agrawal_slice, &criteria))
    });
    r.finish();

    let projected = record_calls * record_ns + phase_guards * phase_ns;
    let overhead = projected / sweep_ns;
    println!(
        "\n{record_calls:.0} record hooks x {record_ns:.1} ns + {phase_guards:.0} phase guards x \
         {phase_ns:.1} ns = {projected:.0} ns projected over a {:.2} ms sweep: {:.3}% overhead",
        sweep_ns / 1e6,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "disabled instrumentation projects to {:.3}% of a batch sweep (limit 2%)",
        overhead * 100.0
    );
    println!("OK: disabled-path overhead within the 2% budget");
}
