//! Shared fixtures for the benchmark harness: the corpora every bench and
//! the figure-regeneration binary draw from.

#![forbid(unsafe_code)]

pub mod harness;
pub mod perfgate;

use jumpslice_core::{Analysis, Criterion, Slice};
use jumpslice_lang::{Program, StmtId, StmtKind};
use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};

/// A named slicing algorithm, for table-driven benches.
pub type Algo = (&'static str, fn(&Analysis<'_>, &Criterion) -> Slice);

/// Every algorithm in the workspace, paper order then baselines.
pub const ALL_ALGOS: &[Algo] = &[
    ("conventional", jumpslice_core::conventional_slice),
    ("fig7-agrawal", jumpslice_core::agrawal_slice),
    ("fig12-structured", jumpslice_core::structured_slice),
    ("fig13-conservative", jumpslice_core::conservative_slice),
    (
        "ball-horwitz",
        jumpslice_core::baselines::ball_horwitz_slice,
    ),
    ("lyle", jumpslice_core::baselines::lyle_slice),
    ("gallagher", jumpslice_core::baselines::gallagher_slice),
    ("jzr", jumpslice_core::baselines::jzr_slice),
];

/// The algorithms compared in the scaling sweeps (the paper's own three
/// plus the two reference points).
pub const CORE_ALGOS: &[Algo] = &[
    ("conventional", jumpslice_core::conventional_slice),
    ("fig7-agrawal", jumpslice_core::agrawal_slice),
    ("fig13-conservative", jumpslice_core::conservative_slice),
    (
        "ball-horwitz",
        jumpslice_core::baselines::ball_horwitz_slice,
    ),
];

/// Reachable `write` statements — the default criterion pool.
pub fn live_writes(p: &Program, a: &Analysis<'_>) -> Vec<StmtId> {
    p.stmt_ids()
        .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Write { .. }) && a.is_live(s))
        .collect()
}

/// A pool of `n` slicing criteria for batch benches: every live write
/// first, topped up with other live statements when the writes run short.
pub fn criterion_pool(p: &Program, a: &Analysis<'_>, n: usize) -> Vec<Criterion> {
    let mut stmts = live_writes(p, a);
    if stmts.len() < n {
        let extra: Vec<StmtId> = p
            .stmt_ids()
            .filter(|&s| a.is_live(s) && !stmts.contains(&s))
            .take(n - stmts.len())
            .collect();
        stmts.extend(extra);
    }
    stmts.truncate(n);
    stmts.into_iter().map(Criterion::at_stmt).collect()
}

/// A structured corpus of `n` programs around `size` statements.
pub fn structured_corpus(n: u64, size: usize) -> Vec<Program> {
    (0..n)
        .map(|seed| gen_structured(&GenConfig::sized(seed, size)))
        .collect()
}

/// An unstructured goto corpus of `n` programs around `size` statements.
pub fn unstructured_corpus(n: u64, size: usize) -> Vec<Program> {
    (0..n)
        .map(|seed| {
            gen_unstructured(&GenConfig {
                jump_density: 0.3,
                ..GenConfig::sized(seed, size)
            })
        })
        .collect()
}

/// One representative large program per family for scaling sweeps.
pub fn sized_structured(size: usize) -> Program {
    gen_structured(&GenConfig::sized(7, size))
}

/// One unstructured program of roughly `size` statements.
pub fn sized_unstructured(size: usize) -> Program {
    gen_unstructured(&GenConfig {
        jump_density: 0.25,
        ..GenConfig::sized(7, size)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_sliceable() {
        for p in structured_corpus(3, 30)
            .iter()
            .chain(&unstructured_corpus(3, 25))
        {
            let a = Analysis::new(p);
            assert!(!live_writes(p, &a).is_empty());
        }
    }

    #[test]
    fn sized_generators_scale() {
        assert!(sized_structured(200).len() > sized_structured(50).len());
        assert!(sized_unstructured(200).len() > sized_unstructured(50).len());
    }
}
