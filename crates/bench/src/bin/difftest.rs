//! Differential slicing fuzzer CLI.
//!
//! Runs the `jumpslice-difftest` harness over a seed range and reports
//! findings with shrunk counterexamples and ready-to-paste regression
//! tests. Exits non-zero when any *pinned* claim is violated, so CI can
//! gate on it.
//!
//! ```text
//! difftest --smoke                 # fixed-seed CI configuration
//! difftest --seeds 200 --size 40   # a longer hunt
//! difftest --family unstructured --record-expected
//! difftest --mode incr --seeds 170 # incremental-vs-scratch equivalence
//! difftest --mode sparse --seeds 100 # sparse-vs-dense Figure-7 equality
//! difftest --mode closure --seeds 100 # condensed-vs-direct closure equality
//! ```

use jumpslice_difftest::{
    run_closuretest_with, run_difftest_with, run_incrtest_with, run_sparsetest_with, ClosureConfig,
    DiffConfig, Family, Finding, IncrConfig, SparseConfig,
};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: difftest [options]
  --mode NAME          diff (default) | incr (incremental-vs-scratch equality)
                       | sparse (sparse-vs-dense Figure-7 kernel equality)
                       | closure (condensed-vs-direct closure equality)
  --smoke              fixed-seed smoke configuration (CI)
  --seeds N            number of seeds (default 25; one program per family each)
  --start N            first seed (default 0)
  --family NAME        paper-fragment | structured | unstructured (default: all)
  --size N             target statements per program (default 30)
  --density F          goto density for the unstructured family (default 0.3)
  --criteria N         max criteria per program (default 4)
  --inputs N           inputs per projection check (default 5)
  --fuel N             interpreter fuel per run (default 20000)
  --steps N            incr mode: edits per script (default 6)
  --threads N          batch-slicer worker threads (default 1)
  --no-shrink          report findings without minimizing
  --record-expected    also shrink+report known-unsound failures (non-fatal)
  --max-findings N     stop after N findings (default 8)
  --out DIR            write per-finding artifacts (.prog.txt / .test.rs /
                       .trace.json) into DIR (created if missing)"
    );
    std::process::exit(2)
}

/// Write one finding's artifacts into `dir` under a stable, shell-safe stem.
fn write_finding(dir: &Path, idx: usize, f: &Finding) -> std::io::Result<()> {
    let tag = if f.expected { "expected" } else { "finding" };
    let stem = format!(
        "{idx:03}-{tag}-{}-{}-{}-seed{}",
        f.algo,
        f.kind.name(),
        f.family.name(),
        f.seed
    );
    std::fs::write(dir.join(format!("{stem}.prog.txt")), &f.program)?;
    std::fs::write(dir.join(format!("{stem}.test.rs")), &f.regression_test)?;
    std::fs::write(dir.join(format!("{stem}.trace.json")), &f.trace_json)?;
    Ok(())
}

/// Which harness a run drives.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Diff,
    Incr,
    Sparse,
    Closure,
}

/// Flags shared between the modes, plus the incr-only step count.
struct Cli {
    cfg: DiffConfig,
    out_dir: Option<PathBuf>,
    mode: Mode,
    smoke: bool,
    steps: usize,
}

fn parse_args() -> Cli {
    let mut cfg = DiffConfig::default();
    let mut out_dir = None;
    let mut mode = Mode::Diff;
    let mut smoke = false;
    let mut steps = IncrConfig::default().edits_per_script;
    let mut args = std::env::args().skip(1);
    let next_num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("missing/invalid value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => match args.next().as_deref() {
                Some("diff") => mode = Mode::Diff,
                Some("incr") => mode = Mode::Incr,
                Some("sparse") => mode = Mode::Sparse,
                Some("closure") => mode = Mode::Closure,
                other => {
                    eprintln!("unknown mode `{}`", other.unwrap_or_default());
                    usage()
                }
            },
            "--smoke" => {
                cfg = DiffConfig::smoke();
                smoke = true;
            }
            "--steps" => steps = next_num(&mut args, "--steps") as usize,
            "--seeds" => cfg.seeds = next_num(&mut args, "--seeds"),
            "--start" => cfg.start_seed = next_num(&mut args, "--start"),
            "--size" => cfg.target_stmts = next_num(&mut args, "--size") as usize,
            "--criteria" => cfg.max_criteria = next_num(&mut args, "--criteria") as usize,
            "--inputs" => cfg.num_inputs = next_num(&mut args, "--inputs") as usize,
            "--fuel" => cfg.fuel = next_num(&mut args, "--fuel"),
            "--threads" => cfg.threads = next_num(&mut args, "--threads") as usize,
            "--max-findings" => cfg.max_findings = next_num(&mut args, "--max-findings") as usize,
            "--no-shrink" => cfg.shrink = false,
            "--record-expected" => cfg.record_expected = true,
            "--density" => {
                cfg.jump_density = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    usage()
                })));
            }
            "--family" => {
                let name = args.next().unwrap_or_default();
                cfg.family = Some(Family::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown family `{name}`");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option `{other}`");
                usage();
            }
        }
    }
    Cli {
        cfg,
        out_dir,
        mode,
        smoke,
        steps,
    }
}

/// Runs the incremental-vs-scratch mode and exits.
fn run_incr_mode(cli: &Cli) -> ! {
    let mut icfg = if cli.smoke {
        IncrConfig::smoke()
    } else {
        IncrConfig::default()
    };
    // Shared flags carry over; --smoke keeps its own seed count.
    if !cli.smoke {
        icfg.seeds = cli.cfg.seeds;
        icfg.target_stmts = cli.cfg.target_stmts;
    }
    icfg.start_seed = cli.cfg.start_seed;
    icfg.family = cli.cfg.family;
    icfg.jump_density = cli.cfg.jump_density;
    icfg.max_criteria = cli.cfg.max_criteria;
    icfg.shrink = cli.cfg.shrink;
    icfg.max_findings = cli.cfg.max_findings;
    icfg.edits_per_script = cli.steps;

    let mut last = 0usize;
    let report = run_incrtest_with(&icfg, |r| {
        if r.scripts / 50 > last {
            last = r.scripts / 50;
            eprintln!(
                "  …{} scripts, {} edits applied, {} comparisons, {} findings",
                r.scripts,
                r.edits_applied,
                r.comparisons,
                r.findings.len()
            );
        }
    });

    println!(
        "difftest --mode incr: {} edit scripts · {} edits applied ({} rejected) · {} identity comparisons",
        report.scripts, report.edits_applied, report.edits_rejected, report.comparisons
    );
    println!(
        "  apply paths: {} expression patches, {} seeded re-solves, {} full rebuilds",
        report.expr_patches, report.seeded_resolves, report.full_rebuilds
    );
    for f in &report.findings {
        println!(
            "\n[FINDING] incremental ≠ scratch (seed {}, {} family)",
            f.seed,
            f.family.name()
        );
        println!("  {}", f.detail);
        println!("--- shrunk program ---");
        for l in f.program.lines() {
            println!("  {l}");
        }
        println!("--- shrunk edit script ({} edits) ---", f.script.len());
        for e in &f.script {
            println!("  {e:?}");
        }
    }
    if !report.findings.is_empty() {
        eprintln!("\n{} incremental mismatch(es)", report.findings.len());
        std::process::exit(1);
    }
    println!("\nno incremental mismatches");
    std::process::exit(0)
}

/// Runs the sparse-vs-dense Figure-7 equality mode and exits.
fn run_sparse_mode(cli: &Cli) -> ! {
    let mut scfg = if cli.smoke {
        SparseConfig::smoke()
    } else {
        SparseConfig::default()
    };
    // Shared flags carry over; --smoke keeps its own seed count.
    if !cli.smoke {
        scfg.seeds = cli.cfg.seeds;
        scfg.target_stmts = cli.cfg.target_stmts;
    }
    scfg.start_seed = cli.cfg.start_seed;
    scfg.family = cli.cfg.family;
    scfg.jump_density = cli.cfg.jump_density;
    scfg.max_criteria = cli.cfg.max_criteria;
    scfg.shrink = cli.cfg.shrink;
    scfg.max_findings = cli.cfg.max_findings;

    let mut last = 0usize;
    let report = run_sparsetest_with(&scfg, |r| {
        if r.programs / 50 > last {
            last = r.programs / 50;
            eprintln!(
                "  …{} programs, {} criteria, {} comparisons, {} findings",
                r.programs,
                r.criteria,
                r.comparisons,
                r.findings.len()
            );
        }
    });

    println!(
        "difftest --mode sparse: {} programs · {} criteria · {} equality comparisons",
        report.programs, report.criteria, report.comparisons
    );
    for f in &report.findings {
        println!(
            "\n[FINDING] sparse ≠ dense (seed {}, {} family)",
            f.seed,
            f.family.name()
        );
        println!("  {}", f.detail);
        println!("--- shrunk program ---");
        for l in f.program.lines() {
            println!("  {l}");
        }
    }
    if !report.findings.is_empty() {
        eprintln!("\n{} sparse-kernel mismatch(es)", report.findings.len());
        std::process::exit(1);
    }
    println!("\nno sparse-kernel mismatches");
    std::process::exit(0)
}

/// Runs the condensed-vs-direct closure equality mode and exits.
fn run_closure_mode(cli: &Cli) -> ! {
    let mut ccfg = if cli.smoke {
        ClosureConfig::smoke()
    } else {
        ClosureConfig::default()
    };
    // Shared flags carry over; --smoke keeps its own seed count.
    if !cli.smoke {
        ccfg.seeds = cli.cfg.seeds;
        ccfg.target_stmts = cli.cfg.target_stmts;
    }
    ccfg.start_seed = cli.cfg.start_seed;
    ccfg.family = cli.cfg.family;
    ccfg.jump_density = cli.cfg.jump_density;
    ccfg.max_criteria = cli.cfg.max_criteria;
    ccfg.shrink = cli.cfg.shrink;
    ccfg.max_findings = cli.cfg.max_findings;
    ccfg.edits_per_script = cli.steps;

    let mut last = 0usize;
    let report = run_closuretest_with(&ccfg, |r| {
        if r.programs / 50 > last {
            last = r.programs / 50;
            eprintln!(
                "  …{} programs, {} states, {} comparisons, {} findings",
                r.programs,
                r.states,
                r.comparisons,
                r.findings.len()
            );
        }
    });

    println!(
        "difftest --mode closure: {} programs · {} states ({} edits applied) · {} equality comparisons",
        report.programs, report.states, report.edits_applied, report.comparisons
    );
    for f in &report.findings {
        println!(
            "\n[FINDING] condensed ≠ direct (seed {}, {} family)",
            f.seed,
            f.family.name()
        );
        println!("  {}", f.detail);
        println!("--- shrunk program ---");
        for l in f.program.lines() {
            println!("  {l}");
        }
        if !f.script.is_empty() {
            println!("--- shrunk edit script ({} edits) ---", f.script.len());
            for e in &f.script {
                println!("  {e:?}");
            }
        }
    }
    if !report.findings.is_empty() {
        eprintln!("\n{} condensation mismatch(es)", report.findings.len());
        std::process::exit(1);
    }
    println!("\nno condensation mismatches");
    std::process::exit(0)
}

fn main() {
    let cli = parse_args();
    match cli.mode {
        Mode::Incr => run_incr_mode(&cli),
        Mode::Sparse => run_sparse_mode(&cli),
        Mode::Closure => run_closure_mode(&cli),
        Mode::Diff => {}
    }
    let Cli { cfg, out_dir, .. } = cli;
    // Panics are a *verdict* here (caught, attributed, reported); keep the
    // default hook from spraying backtraces over the progress output.
    std::panic::set_hook(Box::new(|_| {}));

    let mut last = 0usize;
    let report = run_difftest_with(&cfg, |r| {
        if r.programs / 25 > last {
            last = r.programs / 25;
            eprintln!(
                "  …{} programs, {} oracle checks, {} verified, {} findings",
                r.programs,
                r.oracle_checks,
                r.verified,
                r.findings.len()
            );
        }
    });
    let _ = std::panic::take_hook();

    println!(
        "difftest: {} programs · {} (program, criterion) cases · {} oracle checks",
        report.programs, report.criterion_cases, report.oracle_checks
    );
    println!(
        "  verified {}, inconclusive {}, expected-unsound failures {}, lattice checks {}",
        report.verified, report.inconclusive, report.expected_failures, report.lattice_checks
    );

    for f in &report.findings {
        let tag = if f.expected { "expected" } else { "FINDING" };
        println!(
            "\n[{tag}] {} / {} (seed {}, {} family)",
            f.algo,
            f.kind.name(),
            f.seed,
            f.family.name()
        );
        println!("  {}", f.detail);
        println!("--- shrunk program ---");
        for l in f.program.lines() {
            println!("  {l}");
        }
        println!("--- regression test ---");
        print!("{}", f.regression_test);
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        });
        for (i, f) in report.findings.iter().enumerate() {
            write_finding(dir, i, f).unwrap_or_else(|e| {
                eprintln!("cannot write finding {i} to {}: {e}", dir.display());
                std::process::exit(2);
            });
        }
        println!(
            "wrote {} finding artifact set(s) to {}",
            report.findings.len(),
            dir.display()
        );
    }

    let hard = report.hard_findings().count();
    if hard > 0 {
        eprintln!("\n{hard} pinned-claim violation(s)");
        std::process::exit(1);
    }
    println!("\nno pinned-claim violations");
}
