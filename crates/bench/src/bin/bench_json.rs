//! Emits `BENCH_slicing.json`: the machine-readable benchmark summary the
//! experiment log (EXPERIMENTS.md) points at. Measures two things with the
//! in-tree harness and writes them as hand-rolled JSON (no serde in the
//! container):
//!
//! * single-slice latency for the paper's algorithms on a warm analysis —
//!   the figure-scale and ~1k-statement numbers;
//! * the batch sweep (120 criteria per program): a naive per-criterion
//!   `Analysis::new` loop vs `BatchSlicer` over one warm shared analysis,
//!   sequentially and at available parallelism;
//! * the sparse sweep: the change-driven Figure-7 kernel behind
//!   `agrawal_slice` vs the retained dense round-based reference loop,
//!   both over the same warm analysis and criterion pool;
//! * the cold-analysis sweep: the full lazy warm (sequential phase chain
//!   plus PDG condensation) vs `Analysis::warm_parallel` on the phase DAG,
//!   with a coordinator-side per-phase breakdown and a forced-2-thread
//!   smoke row so the scheduler is exercised even on single-core CI;
//! * the closure microsweep: raw backward closures through the direct PDG
//!   walk vs the SCC-condensed reachability index, on warm analyses;
//! * the incremental sweep: one edit followed by a re-slice of a criterion
//!   pool, through a warm [`jumpslice_incr::EditSession`] (expression patch
//!   and seeded re-solve paths) vs edit-then-`Analysis::new` from scratch;
//! * the store sweep: first-slice latency through a store-enabled daemon
//!   on a miss (parse + analyze + warm + write-behind persist) vs on a
//!   snapshot hit (store load + decode + seeded analysis) — the daemon's
//!   cold-start-vs-warm-restart story.
//!
//! The headline `speedup_batch_vs_per_criterion_analysis` is the
//! cached-analysis amortization; on single-core containers the threaded
//! and sequential warm numbers coincide, and threads only add on
//! multicore hardware.

use jumpslice_bench::harness::Runner;
use jumpslice_bench::{criterion_pool, sized_structured, sized_unstructured};
use jumpslice_core::{
    agrawal_slice, agrawal_slice_reference, conservative_slice, conventional_slice, Analysis,
    BatchSlicer, Criterion,
};
use jumpslice_incr::{apply_edit, Edit, EditExpr, EditSession, NewStmt};
use jumpslice_lang::{path_of, StmtId, StmtKind, StmtPath};
use std::fmt::Write as _;
use std::hint::black_box;

const BATCH: usize = 120;
/// Criteria re-sliced after each edit in the incremental sweep — sized
/// like an interactive session (a handful of live slices kept current),
/// not like a batch audit, so the measurement isolates edit-to-answer
/// latency instead of drowning it in slice evaluation common to both arms.
const INCR_CRITERIA: usize = 4;
/// Criteria per program in the sparse-vs-dense sweep. Enough to amortize
/// the one-time chain-index build into the sparse arm without making the
/// dense reference arm dominate the whole benchmark run.
const SPARSE_CRITERIA: usize = 32;

struct BatchRow {
    family: &'static str,
    stmts: usize,
    criteria: usize,
    cold_ns: f64,
    warm_seq_ns: f64,
    /// `None` on single-core containers, where the threaded arm would just
    /// re-measure the sequential one; the JSON key is omitted with it.
    warm_threads_ns: Option<f64>,
    /// Worker threads the batch engine actually used (clamped to the batch).
    threads_used: usize,
}

struct SparseRow {
    family: &'static str,
    stmts: usize,
    criteria: usize,
    dense_ns: f64,
    sparse_ns: f64,
}

struct ColdRow {
    family: &'static str,
    stmts: usize,
    warm_seq_ns: f64,
    /// `None` on single-core containers, where the parallel warm falls back
    /// to the lazy sequential chain; the JSON key is omitted with it.
    warm_parallel_ns: Option<f64>,
    /// Threads the parallel arm ran with (1 when the arm was skipped).
    threads_used: usize,
    /// Coordinator-side per-phase breakdown of one parallel warm (worker
    /// threads have no trace sink, so their phases are not represented).
    per_phase: Vec<(&'static str, u64)>,
}

struct ClosureRow {
    family: &'static str,
    stmts: usize,
    criteria: usize,
    direct_ns: f64,
    condensed_ns: f64,
}

struct StoreRow {
    family: &'static str,
    stmts: usize,
    record_bytes: usize,
    cold_ns: f64,
    restore_ns: f64,
}

struct IncrRow {
    family: &'static str,
    stmts: usize,
    criteria: usize,
    edit: &'static str,
    scratch_ns: f64,
    incr_ns: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut r = Runner::from_args().samples(5);

    // Single-slice latency on a warm analysis, per algorithm.
    let mut single: Vec<(String, f64)> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for size in [100usize, 1000] {
            let p = make(size);
            let a = Analysis::new(&p);
            a.warm();
            let crit = Criterion::at_stmt(
                *jumpslice_bench::live_writes(&p, &a)
                    .last()
                    .expect("corpus has a live write"),
            );
            for (alg, f) in [
                (
                    "conventional",
                    conventional_slice as jumpslice_core::SliceFn,
                ),
                ("fig7-agrawal", agrawal_slice),
                ("fig13-conservative", conservative_slice),
            ] {
                let name = format!("single/{family}-{}/{alg}", p.len());
                let ns = r.bench(&name, || black_box(f(black_box(&a), black_box(&crit))));
                single.push((name, ns));
            }
        }
    }

    // The batch sweep: naive per-criterion analysis vs one shared warm one.
    let mut rows: Vec<BatchRow> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for size in [100usize, 1000, 5000] {
            let p = make(size);
            let a = Analysis::new(&p);
            a.warm();
            let criteria = criterion_pool(&p, &a, BATCH);
            let n = p.len();
            let cold_ns = r.bench(
                &format!("json/batch/{family}/{n}/per-criterion-analysis"),
                || {
                    let mut total = 0usize;
                    for c in &criteria {
                        let fresh = Analysis::new(black_box(&p));
                        total += agrawal_slice(&fresh, c).len();
                    }
                    black_box(total)
                },
            );
            let warm_seq_ns = r.bench(
                &format!("json/batch/{family}/{n}/shared-analysis-sequential"),
                || {
                    black_box(
                        BatchSlicer::new(&a)
                            .with_threads(1)
                            .slice_all(agrawal_slice, &criteria),
                    )
                },
            );
            // On a single-core container the threaded arm is the sequential
            // arm with extra scaffolding; skip it and omit its JSON key.
            let (warm_threads_ns, threads_used) = if threads > 1 {
                let (_, stats) = BatchSlicer::new(&a).slice_all_stats(agrawal_slice, &criteria);
                let ns = r.bench(
                    &format!("json/batch/{family}/{n}/shared-analysis-threads"),
                    || black_box(BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria)),
                );
                (Some(ns), stats.threads)
            } else {
                (None, 1)
            };
            rows.push(BatchRow {
                family,
                stmts: n,
                criteria: criteria.len(),
                cold_ns,
                warm_seq_ns,
                warm_threads_ns,
                threads_used,
            });
        }
    }

    // The forced-2-thread smoke sweep: `with_threads(2)` regardless of
    // `available_parallelism`, so the scoped pool's spawn/queue/join
    // machinery is exercised (and timed) even on the single-core containers
    // that skip the threaded arm above. Kept out of `batch_sweeps` so its
    // row never collides with the adaptive rows the perf gate compares.
    let threads2_smoke = {
        let p = sized_structured(1000);
        let a = Analysis::new(&p);
        a.warm();
        let criteria = criterion_pool(&p, &a, BATCH);
        let n = p.len();
        let (_, stats) = BatchSlicer::new(&a)
            .with_threads(2)
            .slice_all_stats(agrawal_slice, &criteria);
        assert_eq!(stats.threads, 2, "with_threads(2) must not be demoted");
        let ns = r.bench(
            &format!("json/batch/structured/{n}/forced-2-threads"),
            || {
                black_box(
                    BatchSlicer::new(&a)
                        .with_threads(2)
                        .slice_all(agrawal_slice, &criteria),
                )
            },
        );
        (n, criteria.len(), ns)
    };

    // The cold-analysis sweep: the full lazy warm (sequential phase chain +
    // condensation) vs the phase-DAG parallel warm, each from a fresh
    // `Analysis` per iteration — this is the daemon's cold-miss path. On a
    // single-core container the parallel arm would just re-measure the
    // sequential one through extra scaffolding; skip it and omit its key.
    let mut cold_rows: Vec<ColdRow> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for size in [1000usize, 5000] {
            let p = make(size);
            let n = p.len();
            let warm_seq_ns = r.bench(&format!("json/cold/{family}/{n}/sequential-warm"), || {
                let a = Analysis::new(black_box(&p));
                a.warm();
                a.closure_index();
                black_box(a.stats().pdg_builds)
            });
            let (warm_parallel_ns, threads_used) = if threads > 1 {
                let ns = r.bench(&format!("json/cold/{family}/{n}/parallel-warm"), || {
                    let a = Analysis::new(black_box(&p));
                    a.warm_parallel(threads);
                    black_box(a.stats().pdg_builds)
                });
                (Some(ns), threads)
            } else {
                (None, 1)
            };
            // Per-phase breakdown of one parallel warm, as the coordinator
            // thread sees it (ReachingDefs, PdgBuild, ClosureIndexBuild and
            // the enclosing ParallelWarm; helper-thread phases are silent).
            let (_, events) = jumpslice_obs::capture(|| {
                let a = Analysis::new(&p);
                a.warm_parallel(threads.max(2));
            });
            let m = jumpslice_obs::Metrics::of(&events);
            cold_rows.push(ColdRow {
                family,
                stmts: n,
                warm_seq_ns,
                warm_parallel_ns,
                threads_used,
                per_phase: m.phase_ns.into_iter().collect(),
            });
        }
    }

    // The forced-2-thread cold warm: `warm_parallel(2)` regardless of
    // `available_parallelism`, so the phase-DAG scheduler's helper spawn,
    // data fan-out, and join paths are exercised (and timed) even on the
    // single-core containers that skip the adaptive arm above. Kept out of
    // `cold_analysis_sweeps` so its row never collides with the adaptive
    // rows the perf gate compares.
    let cold_threads2_smoke = {
        let p = sized_structured(5000);
        let n = p.len();
        let (_, events) = jumpslice_obs::capture(|| {
            let a = Analysis::new(&p);
            a.warm_parallel(2);
        });
        let m = jumpslice_obs::Metrics::of(&events);
        assert_eq!(
            m.counts.get("analysis.parallel.threads").copied(),
            Some(2),
            "warm_parallel(2) must not be demoted"
        );
        let ns = r.bench(
            &format!("json/cold/structured/{n}/forced-2-threads"),
            || {
                let a = Analysis::new(black_box(&p));
                a.warm_parallel(2);
                black_box(a.stats().pdg_builds)
            },
        );
        (n, ns)
    };

    // The serve sweep: in-process daemon engine throughput over a mixed
    // request session (two cached programs, slice + stats traffic). One
    // engine per measurement would re-pay analysis; the cache is the
    // product, so it stays warm across iterations like a real daemon.
    let serve_sweep = {
        use jumpslice_serve::engine::Engine;
        let src_a = jumpslice_lang::print_program(&sized_structured(120));
        let src_b = jumpslice_lang::print_program(&sized_unstructured(120));
        let engine = Engine::new(256 << 20);
        let load = |src: &str| -> String {
            let resp = engine.handle_line(
                &jumpslice_obs::Json::Obj(vec![
                    ("op".to_owned(), jumpslice_obs::Json::Str("load".to_owned())),
                    (
                        "source".to_owned(),
                        jumpslice_obs::Json::Str(src.to_owned()),
                    ),
                ])
                .write_compact(),
            );
            jumpslice_obs::Json::parse(&resp)
                .expect("serve responses are valid JSON")
                .get("program")
                .and_then(jumpslice_obs::Json::as_str)
                .expect("load succeeds on generated programs")
                .to_owned()
        };
        let key_a = load(&src_a);
        let key_b = load(&src_b);
        let stmts_a = jumpslice_lang::parse(&src_a).expect("round-trips").len();
        const REQUESTS: usize = 64;
        let requests: Vec<String> = (0..REQUESTS)
            .map(|i| match i % 8 {
                7 => r#"{"op":"stats"}"#.to_owned(),
                k => {
                    let key = if k % 2 == 0 { &key_a } else { &key_b };
                    let line = 1 + (i * 5) % stmts_a.min(100);
                    format!(
                        r#"{{"op":"slice","program":"{key}","algo":"fig7","criteria":[{{"line":{line}}}]}}"#
                    )
                }
            })
            .collect();
        let total_ns = r.bench("json/serve/mixed/120/warm-cache", || {
            let mut bytes = 0usize;
            for req in &requests {
                bytes += engine.handle_line(black_box(req)).len();
            }
            black_box(bytes)
        });
        (120usize, REQUESTS, total_ns / REQUESTS as f64)
    };

    // The sparse sweep: the change-driven Figure-7 kernel (the `agrawal_slice`
    // dispatch target) against the retained dense round-based reference loop,
    // both over the same warm analysis and criterion pool.
    let mut sparse_rows: Vec<SparseRow> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for size in [100usize, 1000, 5000] {
            let p = make(size);
            let a = Analysis::new(&p);
            a.warm();
            let criteria = criterion_pool(&p, &a, SPARSE_CRITERIA);
            let n = p.len();
            let dense_ns = r.bench(&format!("json/sparse/{family}/{n}/dense-reference"), || {
                let mut total = 0usize;
                for c in &criteria {
                    total += agrawal_slice_reference(black_box(&a), c).len();
                }
                black_box(total)
            });
            let sparse_ns = r.bench(&format!("json/sparse/{family}/{n}/sparse-kernel"), || {
                let mut total = 0usize;
                for c in &criteria {
                    total += agrawal_slice(black_box(&a), c).len();
                }
                black_box(total)
            });
            sparse_rows.push(SparseRow {
                family,
                stmts: n,
                criteria: criteria.len(),
                dense_ns,
                sparse_ns,
            });
        }
    }

    // The closure microsweep: raw backward closures over the batch-sized
    // criterion pool, answered by the direct PDG worklist walk vs the
    // SCC-condensed reachability index. Both arms run on fully warm
    // analyses, so the measurement isolates closure answering; the
    // condensation build itself is timed by the cold-analysis sweep.
    let mut closure_rows: Vec<ClosureRow> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        for size in [1000usize, 5000] {
            let p = make(size);
            let a = Analysis::new(&p);
            a.warm();
            let b = Analysis::new(&p);
            b.warm();
            b.closure_index();
            let seeds: Vec<StmtId> = criterion_pool(&p, &a, BATCH)
                .iter()
                .map(|c| c.stmt)
                .collect();
            let n = p.len();
            let direct_ns = r.bench(&format!("json/closure/{family}/{n}/direct-walk"), || {
                let mut total = 0usize;
                for &s in &seeds {
                    total += a.pdg().backward_closure([black_box(s)]).len();
                }
                black_box(total)
            });
            let condensed_ns = r.bench(&format!("json/closure/{family}/{n}/condensed"), || {
                let mut total = 0usize;
                for &s in &seeds {
                    total += b.backward_closure([black_box(s)]).len();
                }
                black_box(total)
            });
            closure_rows.push(ClosureRow {
                family,
                stmts: n,
                criteria: seeds.len(),
                direct_ns,
                condensed_ns,
            });
        }
    }

    // The store sweep: first slice served by a store-enabled daemon on a
    // cache miss vs on a snapshot hit. Both arms end at the same place —
    // one Figure-7 answer on a fully warm analysis — and replay exactly
    // what the serve loop does in each state. The cold arm is the miss
    // path: parse + reaching-defs + PDG + pdom + LST, then the write-behind
    // persist (encode + `SnapshotStore::save`, a distinct key per
    // iteration so every write really hits disk). The restore arm is the
    // hit path: `SnapshotStore::load` (disk read + whole-record checksum),
    // snapshot decode, and a seeded analysis. The family is the
    // jump-heavy generator — unstructured control flow is the workload
    // this repo exists for, and it is where from-source analysis is
    // superlinear while snapshot decode stays linear in the record.
    let mut store_rows: Vec<StoreRow> = Vec::new();
    {
        use jumpslice_store::{fnv1a, SnapshotStore};
        let dir =
            std::env::temp_dir().join(format!("jumpslice-bench-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = SnapshotStore::open(&dir, u64::MAX).expect("temp store opens");
        let mut write_key = 0u64; // distinct per miss iteration: forces real writes
        for size in [4000usize, 6000] {
            let family = "unstructured";
            let src = jumpslice_lang::print_program(&sized_unstructured(size));
            let prog = jumpslice_lang::parse(&src).expect("printed programs re-parse");
            let a = Analysis::new(&prog);
            a.warm();
            let crit_line = prog.len(); // re-parse numbering is stable, so a line works for both arms
            let n = prog.len();
            let payload = jumpslice_core::encode_snapshot(&src, &prog, &a.into_seed());
            let key = fnv1a(src.as_bytes());
            store.save(key, &payload).expect("snapshot persists");
            let record_bytes = payload.len() + jumpslice_store::HEADER_LEN;

            let cold_ns = r.bench(&format!("json/store/{family}/{n}/cold-start"), || {
                let p = jumpslice_lang::parse(black_box(&src)).expect("parses");
                let a = Analysis::new(&p);
                a.warm();
                let crit = Criterion::at_stmt(p.at_line(crit_line));
                let len = agrawal_slice(&a, &crit).len();
                let payload = jumpslice_core::encode_snapshot(&src, &p, &a.into_seed());
                write_key += 1;
                store.save(write_key, &payload).expect("snapshot persists");
                black_box(len)
            });
            let restore_ns = r.bench(&format!("json/store/{family}/{n}/snapshot-restore"), || {
                let payload = store.load(black_box(key)).expect("record present");
                let snap = jumpslice_core::decode_snapshot(&payload).expect("snapshot decodes");
                let a = Analysis::with_seed(&snap.prog, snap.seed);
                let crit = Criterion::at_stmt(snap.prog.at_line(crit_line));
                black_box(agrawal_slice(&a, &crit).len())
            });
            store_rows.push(StoreRow {
                family,
                stmts: n,
                record_bytes,
                cold_ns,
                restore_ns,
            });
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // The incremental sweep: edit + re-slice through a warm session vs
    // edit + from-scratch analysis. Two edit shapes, matching the two
    // fast paths: an expression replacement (everything reused) and an
    // insert/delete cycle (seeded re-solve, steady-state program size).
    let mut incr_rows: Vec<IncrRow> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        let p = make(1000);
        let a = Analysis::new(&p);
        a.warm();
        let criteria = criterion_pool(&p, &a, INCR_CRITERIA);
        let n = p.len();
        drop(a);

        let sweep = |a: &Analysis<'_>| {
            BatchSlicer::new(a)
                .with_threads(1)
                .slice_all(agrawal_slice, &criteria)
        };

        // Edit 1: replace the right-hand side of the last assignment.
        let target = p
            .stmt_ids()
            .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Assign { .. }))
            .last()
            .expect("corpus has an assignment");
        let replace = Edit::ReplaceExpr {
            at: path_of(&p, target).expect("lexical statement has a path"),
            with: EditExpr::Num(7),
        };
        let scratch_ns = r.bench(
            &format!("json/incr/{family}/{n}/replace-expr/scratch"),
            || {
                let applied = apply_edit(&p, &replace).expect("valid edit");
                let fresh = Analysis::new(&applied.prog);
                black_box(sweep(&fresh))
            },
        );
        let mut session = EditSession::new(p.clone());
        session.with_analysis(|a| a.warm());
        let incr_ns = r.bench(
            &format!("json/incr/{family}/{n}/replace-expr/session"),
            || {
                session.apply(&replace).expect("valid edit");
                session.with_analysis(|a| black_box(sweep(a)))
            },
        );
        assert_eq!(
            session.stats().full_rebuilds,
            0,
            "expression replacement must stay on the patch path"
        );
        incr_rows.push(IncrRow {
            family,
            stmts: n,
            criteria: criteria.len(),
            edit: "replace-expr",
            scratch_ns,
            incr_ns,
        });

        // Edit 2: append an assignment, re-slice, delete it, re-slice —
        // program size is steady across iterations.
        let var = p.name_str(*p.defined_vars().first().expect("corpus defines a variable"));
        let insert = Edit::InsertStmt {
            at: StmtPath::root(p.body().len()),
            stmt: NewStmt::Assign {
                var: var.to_owned(),
                rhs: EditExpr::Num(1),
            },
        };
        let delete = Edit::DeleteStmt {
            at: StmtPath::root(p.body().len()),
        };
        let scratch_ns = r.bench(
            &format!("json/incr/{family}/{n}/insert-delete/scratch"),
            || {
                let q = apply_edit(&p, &insert).expect("valid edit").prog;
                let fa = Analysis::new(&q);
                let s1 = sweep(&fa);
                let q2 = apply_edit(&q, &delete).expect("valid edit").prog;
                let fb = Analysis::new(&q2);
                let s2 = sweep(&fb);
                black_box((s1, s2))
            },
        );
        let mut session = EditSession::new(p.clone());
        session.with_analysis(|a| a.warm());
        let incr_ns = r.bench(
            &format!("json/incr/{family}/{n}/insert-delete/session"),
            || {
                session.apply(&insert).expect("valid edit");
                let s1 = session.with_analysis(|a| sweep(a));
                session.apply(&delete).expect("valid edit");
                let s2 = session.with_analysis(|a| sweep(a));
                black_box((s1, s2))
            },
        );
        assert_eq!(
            session.stats().full_rebuilds,
            0,
            "insert/delete of a simple statement must stay on the seeded path"
        );
        incr_rows.push(IncrRow {
            family,
            stmts: n,
            criteria: criteria.len(),
            edit: "insert-delete",
            scratch_ns,
            incr_ns,
        });
    }
    r.finish();

    // Per-phase cost breakdown via the obs layer: one cold analysis + warm
    // + a single-threaded batch sweep per family, captured on this thread's
    // trace sink (workers would be silent, so the sweep runs sequentially).
    let mut per_phase: Vec<(String, Vec<(&'static str, u64)>)> = Vec::new();
    for (family, make) in [
        (
            "structured",
            sized_structured as fn(usize) -> jumpslice_lang::Program,
        ),
        (
            "unstructured",
            sized_unstructured as fn(usize) -> jumpslice_lang::Program,
        ),
    ] {
        let p = make(1000);
        let (_, events) = jumpslice_obs::capture(|| {
            let a = Analysis::new(&p);
            a.warm();
            let criteria = criterion_pool(&p, &a, BATCH);
            black_box(
                BatchSlicer::new(&a)
                    .with_threads(1)
                    .slice_all(agrawal_slice, &criteria),
            );
        });
        let m = jumpslice_obs::Metrics::of(&events);
        per_phase.push((
            format!("{family}-{}", p.len()),
            m.phase_ns.into_iter().collect(),
        ));
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"slicing\",");
    let _ = writeln!(
        out,
        "  \"harness\": \"in-tree calibrated harness (median of 5 samples)\","
    );
    let _ = writeln!(out, "  \"algorithm\": \"fig7-agrawal\",");
    let _ = writeln!(out, "  \"available_parallelism\": {threads},");
    out.push_str("  \"single_slice_warm_analysis_ns\": {\n");
    for (i, (name, ns)) in single.iter().enumerate() {
        let comma = if i + 1 == single.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {:.1}{comma}", json_escape(name), ns);
    }
    out.push_str("  },\n");
    out.push_str("  \"batch_sweeps\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let best_warm = row.warm_threads_ns.unwrap_or(row.warm_seq_ns);
        let speedup = row.cold_ns / best_warm;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"criteria\": {},", row.criteria);
        let _ = writeln!(out, "      \"batch_threads_used\": {},", row.threads_used);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(
            out,
            "      \"sequential_per_criterion_analysis_ns\": {:.1},",
            row.cold_ns
        );
        let _ = writeln!(
            out,
            "      \"batch_shared_analysis_sequential_ns\": {:.1},",
            row.warm_seq_ns
        );
        if let Some(ns) = row.warm_threads_ns {
            let _ = writeln!(out, "      \"batch_shared_analysis_threads_ns\": {ns:.1},");
        }
        let _ = writeln!(
            out,
            "      \"speedup_batch_vs_per_criterion_analysis\": {speedup:.2}"
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    {
        let (n, criteria, ns) = threads2_smoke;
        out.push_str("  \"batch_threads2_smoke\": [\n");
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"structured\",");
        let _ = writeln!(out, "      \"stmts\": {n},");
        let _ = writeln!(out, "      \"criteria\": {criteria},");
        let _ = writeln!(out, "      \"batch_threads_used\": 2,");
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"batch_shared_analysis_threads_ns\": {ns:.1}");
        out.push_str("    }\n");
        out.push_str("  ],\n");
    }
    out.push_str("  \"cold_analysis_sweeps\": [\n");
    for (i, row) in cold_rows.iter().enumerate() {
        let comma = if i + 1 == cold_rows.len() { "" } else { "," };
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"warm_threads_used\": {},", row.threads_used);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(
            out,
            "      \"cold_warm_sequential_ns\": {:.1},",
            row.warm_seq_ns
        );
        if let Some(ns) = row.warm_parallel_ns {
            let _ = writeln!(out, "      \"cold_warm_parallel_ns\": {ns:.1},");
            let _ = writeln!(
                out,
                "      \"speedup_parallel_vs_sequential\": {:.2},",
                row.warm_seq_ns / ns
            );
        }
        out.push_str("      \"per_phase_ns\": {\n");
        for (j, (phase, ns)) in row.per_phase.iter().enumerate() {
            let c = if j + 1 == row.per_phase.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "        \"{phase}\": {ns}{c}");
        }
        out.push_str("      }\n");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    {
        let (n, ns) = cold_threads2_smoke;
        out.push_str("  \"cold_threads2_smoke\": [\n");
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"structured\",");
        let _ = writeln!(out, "      \"stmts\": {n},");
        let _ = writeln!(out, "      \"warm_threads_used\": 2,");
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"cold_warm_parallel_ns\": {ns:.1}");
        out.push_str("    }\n");
        out.push_str("  ],\n");
    }
    {
        let (stmts, requests, ns_per_req) = serve_sweep;
        out.push_str("  \"serve_sweeps\": [\n");
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"mixed\",");
        let _ = writeln!(out, "      \"stmts\": {stmts},");
        let _ = writeln!(out, "      \"requests\": {requests},");
        let _ = writeln!(out, "      \"serve_workers_used\": 1,");
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"serve_ns_per_request\": {ns_per_req:.1}");
        out.push_str("    }\n");
        out.push_str("  ],\n");
    }
    out.push_str("  \"sparse_sweeps\": [\n");
    for (i, row) in sparse_rows.iter().enumerate() {
        let comma = if i + 1 == sparse_rows.len() { "" } else { "," };
        let speedup = row.dense_ns / row.sparse_ns;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"criteria\": {},", row.criteria);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"dense_reference_ns\": {:.1},", row.dense_ns);
        let _ = writeln!(out, "      \"sparse_kernel_ns\": {:.1},", row.sparse_ns);
        let _ = writeln!(out, "      \"speedup_sparse_vs_dense\": {speedup:.2}");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"closure_sweeps\": [\n");
    for (i, row) in closure_rows.iter().enumerate() {
        let comma = if i + 1 == closure_rows.len() { "" } else { "," };
        let speedup = row.direct_ns / row.condensed_ns;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"criteria\": {},", row.criteria);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"direct_closure_ns\": {:.1},", row.direct_ns);
        let _ = writeln!(
            out,
            "      \"condensed_closure_ns\": {:.1},",
            row.condensed_ns
        );
        let _ = writeln!(out, "      \"speedup_condensed_vs_direct\": {speedup:.2}");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"store_sweeps\": [\n");
    for (i, row) in store_rows.iter().enumerate() {
        let comma = if i + 1 == store_rows.len() { "" } else { "," };
        let speedup = row.cold_ns / row.restore_ns;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(out, "      \"record_bytes\": {},", row.record_bytes);
        let _ = writeln!(out, "      \"cold_start_ns\": {:.1},", row.cold_ns);
        let _ = writeln!(out, "      \"snapshot_restore_ns\": {:.1},", row.restore_ns);
        let _ = writeln!(out, "      \"speedup_restore_vs_cold\": {speedup:.2}");
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"incr_sweeps\": [\n");
    for (i, row) in incr_rows.iter().enumerate() {
        let comma = if i + 1 == incr_rows.len() { "" } else { "," };
        let speedup = row.scratch_ns / row.incr_ns;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"family\": \"{}\",", row.family);
        let _ = writeln!(out, "      \"stmts\": {},", row.stmts);
        let _ = writeln!(out, "      \"criteria\": {},", row.criteria);
        let _ = writeln!(out, "      \"edit\": \"{}\",", row.edit);
        let _ = writeln!(out, "      \"available_parallelism\": {threads},");
        let _ = writeln!(
            out,
            "      \"scratch_reanalysis_ns\": {:.1},",
            row.scratch_ns
        );
        let _ = writeln!(out, "      \"incremental_ns\": {:.1},", row.incr_ns);
        let _ = writeln!(
            out,
            "      \"speedup_incremental_vs_scratch\": {speedup:.2}"
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ],\n");
    out.push_str("  \"per_phase_ns\": {\n");
    for (i, (corpus, phases)) in per_phase.iter().enumerate() {
        let comma = if i + 1 == per_phase.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {{", json_escape(corpus));
        for (j, (phase, ns)) in phases.iter().enumerate() {
            let c = if j + 1 == phases.len() { "" } else { "," };
            let _ = writeln!(out, "      \"{phase}\": {ns}{c}");
        }
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  }\n}\n");

    std::fs::write("BENCH_slicing.json", &out).expect("write BENCH_slicing.json");
    println!("\nwrote BENCH_slicing.json");
    for row in &rows {
        println!(
            "  {:<12} {:>5} stmts x {} criteria: {:.2}x batch speedup vs per-criterion analysis ({} thread(s))",
            row.family,
            row.stmts,
            row.criteria,
            row.cold_ns / row.warm_threads_ns.unwrap_or(row.warm_seq_ns),
            row.threads_used
        );
    }
    for row in &sparse_rows {
        println!(
            "  {:<12} {:>5} stmts x {} criteria: {:.2}x sparse-kernel speedup vs dense reference",
            row.family,
            row.stmts,
            row.criteria,
            row.dense_ns / row.sparse_ns
        );
    }
    for row in &cold_rows {
        match row.warm_parallel_ns {
            Some(ns) => println!(
                "  {:<12} {:>5} stmts: {:.2}x parallel cold-warm speedup vs sequential ({} threads)",
                row.family,
                row.stmts,
                row.warm_seq_ns / ns,
                row.threads_used
            ),
            None => println!(
                "  {:<12} {:>5} stmts: cold warm {:.1}ms sequential (single core; parallel arm skipped)",
                row.family,
                row.stmts,
                row.warm_seq_ns / 1e6
            ),
        }
    }
    for row in &closure_rows {
        println!(
            "  {:<12} {:>5} stmts x {} criteria: {:.2}x condensed-closure speedup vs direct walk",
            row.family,
            row.stmts,
            row.criteria,
            row.direct_ns / row.condensed_ns
        );
    }
    for row in &incr_rows {
        println!(
            "  {:<12} {:>5} stmts, {:<13} edit: {:.2}x incremental speedup vs scratch re-analysis",
            row.family,
            row.stmts,
            row.edit,
            row.scratch_ns / row.incr_ns
        );
    }
    for row in &store_rows {
        println!(
            "  {:<12} {:>5} stmts: {:.2}x snapshot-restore speedup vs cold start ({} record bytes)",
            row.family,
            row.stmts,
            row.cold_ns / row.restore_ns,
            row.record_bytes
        );
    }
    println!(
        "  serve: {:.1}us/request over a warm 2-program cache ({} mixed requests)",
        serve_sweep.2 / 1e3,
        serve_sweep.1
    );
}
