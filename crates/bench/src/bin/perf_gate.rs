//! CI perf-regression gate over `BENCH_slicing.json`.
//!
//! ```text
//! perf_gate --baseline BENCH_slicing.json --current bench-current.json \
//!           [--tolerance 0.25] [--inject-slowdown 2.0]
//! ```
//!
//! Exits 0 when every gated batch-sweep metric in `current` is within
//! `baseline × (1 + tolerance)`, 1 on any regression (or baseline row the
//! current run failed to measure), 2 on usage or parse errors.
//! `--inject-slowdown F` multiplies the current metrics by `F` first — CI
//! runs the gate once for real and once inverted with a 2× injection to
//! prove the gate still trips.

use jumpslice_bench::perfgate;
use jumpslice_obs::Json;
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    tolerance: f64,
    inject_slowdown: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.25;
    let mut inject_slowdown = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?
            }
            "--inject-slowdown" => {
                inject_slowdown = Some(
                    value("--inject-slowdown")?
                        .parse()
                        .map_err(|e| format!("bad --inject-slowdown: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        tolerance,
        inject_slowdown,
    })
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = load(&args.baseline)?;
    let mut current = load(&args.current)?;
    if let Some(factor) = args.inject_slowdown {
        println!("injecting a {factor}x slowdown into current metrics (self-test)");
        perfgate::inject_slowdown(&mut current, factor);
    }
    let report = perfgate::compare(&baseline, &current, args.tolerance)?;
    println!(
        "perf gate: {} comparisons at tolerance {:.0}%",
        report.compared,
        args.tolerance * 100.0
    );
    for m in &report.missing {
        println!("  MISSING  {m}: baseline row absent from current measurement");
    }
    for s in &report.skipped {
        println!("  SKIPPED  {s}");
    }
    for r in &report.regressions {
        println!(
            "  REGRESSED  {}-{} {}: {:.2}ms -> {:.2}ms ({:.2}x, limit {:.2}x)",
            r.family,
            r.stmts,
            r.metric,
            r.baseline_ns / 1e6,
            r.current_ns / 1e6,
            r.ratio(),
            1.0 + args.tolerance
        );
    }
    if report.passes() {
        println!("  OK: no wall-clock regressions beyond the tolerance band");
    }
    Ok(report.passes())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
    }
}
