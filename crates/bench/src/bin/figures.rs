//! Regenerates every figure of the paper and prints a paper-vs-measured
//! report (the data behind EXPERIMENTS.md).
//!
//! Run with `cargo run --release -p jumpslice-bench --bin figures`.

use jumpslice_cfg::{cfg_dot, Cfg};
use jumpslice_core::baselines::{ball_horwitz_slice, gallagher_slice, jzr_slice, lyle_slice};
use jumpslice_core::{
    agrawal_slice, conservative_slice, conventional_slice, corpus, is_structured, structured_slice,
    Analysis, Criterion, Slice,
};
use jumpslice_interp::{check_projection, Input};
use jumpslice_lang::Program;
use jumpslice_pdg::{pdg_dot, Pdg};

struct Report {
    pass: usize,
    fail: usize,
}

impl Report {
    fn check(&mut self, what: &str, expected: &[usize], got: &Slice, p: &Program) {
        let lines = got.lines(p);
        if lines == expected {
            println!("  [ok]   {what}: {lines:?}");
            self.pass += 1;
        } else {
            println!("  [FAIL] {what}: expected {expected:?}, got {lines:?}");
            self.fail += 1;
        }
    }

    fn check_flag(&mut self, what: &str, ok: bool) {
        if ok {
            println!("  [ok]   {what}");
            self.pass += 1;
        } else {
            println!("  [FAIL] {what}");
            self.fail += 1;
        }
    }
}

fn main() {
    let mut r = Report { pass: 0, fail: 0 };
    let oracle_inputs = Input::family(10);

    println!("== F1/F2: Figure 1 (jump-free) ==");
    {
        let p = corpus::fig1();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(12));
        r.check(
            "conventional slice on positives@12 (Fig. 1-b)",
            &[2, 3, 4, 5, 7, 12],
            &conventional_slice(&a, &crit),
            &p,
        );
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        println!(
            "  graphs: flowgraph {} nodes / {} edges; DDG {} edges; CDG {} edges (Fig. 2)",
            cfg.graph().len(),
            cfg.graph().num_edges(),
            pdg.data().num_edges(),
            pdg.control().edges().count(),
        );
        // Machine-readable dumps, should anyone want to diff the drawings.
        let _ = (cfg_dot(&cfg, &p), pdg_dot(&pdg, &p));
    }

    println!("== F3/F4: Figure 3 (goto version) ==");
    {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        r.check(
            "conventional slice (Fig. 3-b)",
            &[2, 3, 4, 5, 8, 15],
            &conventional_slice(&a, &crit),
            &p,
        );
        let s = agrawal_slice(&a, &crit);
        r.check(
            "Figure 7 slice (Fig. 3-c)",
            &[2, 3, 4, 5, 7, 8, 13, 15],
            &s,
            &p,
        );
        r.check_flag("single traversal (§3)", s.traversals == 1);
        r.check_flag(
            "L14 re-associated to write(positives)",
            s.moved_labels == vec![(p.label("L14").unwrap(), Some(p.at_line(15)))],
        );
        r.check_flag(
            "oracle: Fig. 3-c replays the program",
            check_projection(&p, &s.stmts, &s.moved_labels, &oracle_inputs).is_ok(),
        );
        let c = conventional_slice(&a, &crit);
        r.check_flag(
            "oracle: Fig. 3-b does NOT",
            check_projection(&p, &c.stmts, &c.moved_labels, &oracle_inputs).is_err(),
        );
    }

    println!("== F5/F6: Figure 5 (continue version) ==");
    {
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(14));
        r.check(
            "conventional slice (Fig. 5-b)",
            &[2, 3, 4, 5, 8, 14],
            &conventional_slice(&a, &crit),
            &p,
        );
        r.check(
            "Figure 7 slice (Fig. 5-c)",
            &[2, 3, 4, 5, 7, 8, 14],
            &agrawal_slice(&a, &crit),
            &p,
        );
        r.check_flag("program is structured (§4)", is_structured(&a));
        r.check(
            "Figure 12 slice agrees",
            &[2, 3, 4, 5, 7, 8, 14],
            &structured_slice(&a, &crit),
            &p,
        );
        r.check(
            "Figure 13 slice agrees here too",
            &[2, 3, 4, 5, 7, 8, 14],
            &conservative_slice(&a, &crit),
            &p,
        );
    }

    println!("== F8/F9: Figure 8 (direct gotos) ==");
    {
        let p = corpus::fig8();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        let s = agrawal_slice(&a, &crit);
        r.check(
            "Figure 7 slice (Fig. 8-c): jumps 7/11/13 + predicate 9",
            &[2, 3, 4, 5, 7, 8, 9, 11, 13, 15],
            &s,
            &p,
        );
        r.check_flag("single traversal (§3)", s.traversals == 1);
    }

    println!("== F10/F11: Figure 10 (two traversals) ==");
    {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(9));
        let s = agrawal_slice(&a, &crit);
        r.check("Figure 7 slice (Fig. 10-b)", &[1, 2, 3, 4, 7, 9], &s, &p);
        r.check_flag("needs exactly two traversals (§3)", s.traversals == 2);
        r.check_flag(
            "contains the (4, 7) pdom/lexsucc pair (Fig. 11)",
            jumpslice_core::has_pdom_lexsucc_pair(&a),
        );
    }

    println!("== F14/F15: Figure 14 (switch; Fig. 12 vs Fig. 13) ==");
    {
        let p = corpus::fig14();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(9));
        r.check(
            "Figure 12 slice (Fig. 14-b)",
            &[1, 3, 4, 9],
            &structured_slice(&a, &crit),
            &p,
        );
        r.check(
            "Figure 13 slice (Fig. 14-c): extra breaks 5 and 7",
            &[1, 3, 4, 5, 7, 9],
            &conservative_slice(&a, &crit),
            &p,
        );
    }

    println!("== F16: Figure 16 (Gallagher counterexample) ==");
    {
        let p = corpus::fig16();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(10));
        r.check(
            "Gallagher slice (Fig. 16-b, misses goto 4)",
            &[1, 2, 3, 5, 10],
            &gallagher_slice(&a, &crit),
            &p,
        );
        let s = agrawal_slice(&a, &crit);
        r.check("correct slice (Fig. 16-c)", &[1, 2, 3, 4, 5, 10], &s, &p);
        r.check_flag(
            "L6 re-associated to write(y)",
            s.moved_labels == vec![(p.label("L6").unwrap(), Some(p.at_line(10)))],
        );
    }

    println!("== RW: §5 related-work claims ==");
    {
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(14));
        r.check(
            "Lyle on Fig. 5 keeps continue 11 and predicate 9",
            &[2, 3, 4, 5, 7, 8, 9, 11, 14],
            &lyle_slice(&a, &crit),
            &p,
        );
        r.check(
            "Gallagher correct on Fig. 5",
            &[2, 3, 4, 5, 7, 8, 14],
            &gallagher_slice(&a, &crit),
            &p,
        );
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        let ly = lyle_slice(&a, &crit);
        r.check_flag(
            "Lyle on Fig. 3 keeps all gotos and predicates",
            [3, 5, 7, 9, 11, 13]
                .iter()
                .all(|l| ly.lines(&p).contains(l)),
        );
        let p = corpus::fig8();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        r.check(
            "Jiang–Zhou–Robson on Fig. 8 misses gotos 11 and 13",
            &[2, 3, 4, 5, 7, 8, 15],
            &jzr_slice(&a, &crit),
            &p,
        );
    }

    println!("== EQ: §3 equivalence with Ball–Horwitz ==");
    {
        let mut all_eq = true;
        for (_, p, _) in corpus::all() {
            let a = Analysis::new(&p);
            for line in 1..=p.lexical_order().len() {
                let crit = Criterion::at_stmt(p.at_line(line));
                all_eq &= agrawal_slice(&a, &crit).stmts == ball_horwitz_slice(&a, &crit).stmts;
            }
        }
        r.check_flag(
            "Figure 7 ≡ Ball–Horwitz on every criterion of every figure",
            all_eq,
        );
        println!(
            "  note: on adversarial generated goto programs the equivalence weakens to\n\
             \u{20}  Ball–Horwitz ⊆ Figure 7 (sound over-approximation) — see\n\
             \u{20}  tests/extension_gaps.rs and EXPERIMENTS.md, finding 3."
        );
    }

    println!("\n{} checks passed, {} failed", r.pass, r.fail);
    if r.fail > 0 {
        std::process::exit(1);
    }
}
