//! Chaos harness CLI: deterministic fault injection against the daemon.
//!
//! Samples seeded [`jumpslice_chaos::FaultPlan`]s, replays
//! difftest-generated corpora
//! through a real daemon (worker pool, bounded queue, snapshot store on a
//! scratch directory) under each plan, and checks every response against a
//! pristine engine. Violating plans are shrunk to 1-minimal schedules and
//! written out as ready-to-paste regression tests. Exits non-zero on any
//! violation, so CI can gate on it.
//!
//! ```text
//! chaos --smoke                  # fixed-seed CI configuration
//! chaos --plans 200 --size 25    # a longer hunt (the acceptance sweep)
//! chaos --start 4000 --plans 400 --out findings/   # nightly window
//! chaos --inject-known-bug       # self-test: prove the detectors fire
//! ```

use jumpslice_chaos::{
    run_chaos, self_test_forged_snapshot_detected, self_test_lease_eviction_detected, ChaosConfig,
    ChaosFinding,
};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: chaos [options]
  --smoke              fixed-seed smoke configuration (CI)
  --plans N            number of fault plans (default 8; one corpus each)
  --start N            first plan seed (default 0)
  --size N             target statements per generated program (default 20)
  --programs N         programs per plan (default 3)
  --workers N          daemon worker threads (default 2)
  --stress N           concurrent stress clients (default 3; 0 disables)
  --no-shrink          report violating plans without minimizing
  --max-findings N     stop after N violating plans (default 4)
  --out DIR            write per-finding artifacts (.plan.txt / .test.rs)
  --inject-known-bug   run the detector self-tests (lease eviction and
                       forged snapshot) instead of a sweep; exits non-zero
                       if either class goes undetected"
    );
    std::process::exit(2)
}

fn write_finding(dir: &Path, idx: usize, f: &ChaosFinding) -> std::io::Result<()> {
    let stem = format!("{idx:03}-chaos-seed{}", f.program_seed);
    let mut plan = String::new();
    plan.push_str(&f.plan.describe());
    plan.push('\n');
    plan.push_str(&f.shrunk.describe());
    plan.push('\n');
    for v in &f.violations {
        plan.push_str(v);
        plan.push('\n');
    }
    std::fs::write(dir.join(format!("{stem}.plan.txt")), plan)?;
    std::fs::write(dir.join(format!("{stem}.test.rs")), &f.regression_test)?;
    Ok(())
}

fn self_test() -> ! {
    let mut failed = false;
    match self_test_lease_eviction_detected() {
        Ok(()) => println!("self-test lease-eviction: detected (tracker flags the known bug)"),
        Err(e) => {
            eprintln!("self-test lease-eviction FAILED: {e}");
            failed = true;
        }
    }
    let scratch =
        std::env::temp_dir().join(format!("jumpslice-chaos-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).ok();
    match self_test_forged_snapshot_detected(&scratch) {
        Ok(()) => {
            println!("self-test forged-snapshot: detected (slice identity flags the forgery)")
        }
        Err(e) => {
            eprintln!("self-test forged-snapshot FAILED: {e}");
            failed = true;
        }
    }
    std::fs::remove_dir_all(&scratch).ok();
    std::process::exit(if failed { 1 } else { 0 })
}

fn main() {
    let mut cfg = ChaosConfig::smoke();
    let mut out_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    let next_num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("missing/invalid value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = ChaosConfig::smoke(),
            "--plans" => cfg.plans = next_num(&mut args, "--plans"),
            "--start" => cfg.start_seed = next_num(&mut args, "--start"),
            "--size" => cfg.target_stmts = next_num(&mut args, "--size") as usize,
            "--programs" => cfg.programs_per_plan = next_num(&mut args, "--programs") as usize,
            "--workers" => cfg.workers = next_num(&mut args, "--workers") as usize,
            "--stress" => cfg.stress_clients = next_num(&mut args, "--stress") as usize,
            "--max-findings" => cfg.max_findings = next_num(&mut args, "--max-findings") as usize,
            "--no-shrink" => cfg.shrink = false,
            "--inject-known-bug" => self_test(),
            "--out" => {
                out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    usage()
                })));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option `{other}`");
                usage();
            }
        }
    }

    let report = run_chaos(&cfg);
    println!("{}", report.summary());
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out dir");
        for (i, f) in report.findings.iter().enumerate() {
            write_finding(dir, i, f).expect("write finding artifacts");
        }
        if !report.findings.is_empty() {
            println!(
                "wrote {} finding(s) to {}",
                report.findings.len(),
                dir.display()
            );
        }
    }
    for f in &report.findings {
        eprintln!("--- violating plan (seed {}) ---", f.program_seed);
        eprintln!("  sampled: {}", f.plan.describe());
        eprintln!("  shrunk:  {}", f.shrunk.describe());
        for v in &f.violations {
            eprintln!("  violation: {v}");
        }
        eprintln!("{}", f.regression_test);
    }
    std::process::exit(if report.findings.is_empty() { 0 } else { 1 })
}
