//! `explain`: why is each statement in the slice?
//!
//! ```text
//! cargo run --release -p jumpslice-bench --bin explain -- fig1 12
//! cargo run --release -p jumpslice-bench --bin explain -- path/to/prog.txt 7
//! ```
//!
//! The first argument is a paper corpus name (`fig1`, `fig3`, `fig5`,
//! `fig8`, `fig10`, `fig14`, `fig16`) or a file containing a program in the
//! paper language; the second is the 1-based criterion line. Prints the
//! residual slice, then a witness chain for every sliced statement — data
//! and control dependence hops back to the criterion, with Figure-7 jump
//! admissions annotated by the postdominator/lexical-successor disagreement
//! that admitted them — and finally the Figure-7 round trace.

use jumpslice_core::{agrawal_slice_traced, corpus, Analysis, Criterion};
use jumpslice_lang::{parse, Program};
use jumpslice_obs as obs;
use std::process::ExitCode;

fn load_program(name: &str) -> Result<Program, String> {
    match name {
        "fig1" => Ok(corpus::fig1()),
        "fig3" => Ok(corpus::fig3()),
        "fig5" => Ok(corpus::fig5()),
        "fig8" => Ok(corpus::fig8()),
        "fig10" => Ok(corpus::fig10()),
        "fig14" => Ok(corpus::fig14()),
        "fig16" => Ok(corpus::fig16()),
        path => {
            let src = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            parse(&src).map_err(|e| format!("parse {path}: {e}"))
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let (Some(name), Some(line)) = (args.next(), args.next()) else {
        return Err("usage: explain <fig1|fig3|fig5|fig8|fig10|fig14|fig16|FILE> <line>".into());
    };
    let line: usize = line.parse().map_err(|e| format!("bad line number: {e}"))?;
    let p = load_program(&name)?;
    let n = p.lexical_order().len();
    if line == 0 || line > n {
        return Err(format!("line {line} out of range (program has {n} lines)"));
    }
    let a = Analysis::new(&p);
    let crit = Criterion::at_stmt(p.at_line(line));

    let ((slice, prov), events) = obs::capture(|| agrawal_slice_traced(&a, &crit));

    println!("== slice of {name} at line {line} (Figure 7) ==");
    print!("{}", slice.render(&p));
    println!();
    println!("== provenance ({} statements) ==", slice.len());
    print!("{}", prov.report(&p, &slice));

    let rounds: Vec<_> = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                obs::Event::Round { .. } | obs::Event::JumpAdmitted { .. }
            )
        })
        .collect();
    if !rounds.is_empty() {
        println!();
        println!("== figure-7 trace ==");
        for ev in rounds {
            match ev {
                obs::Event::JumpAdmitted {
                    line: l,
                    round,
                    reason,
                    ..
                } => {
                    let why = match reason {
                        obs::AdmitReason::PdomLexsuccDisagree { npd_line, nls_line } => {
                            let pt = |x: &Option<u32>| match x {
                                Some(n) => format!("line {n}"),
                                None => "exit".to_owned(),
                            };
                            format!(
                                "nearest in-slice postdominator {} != nearest in-slice lexical successor {}",
                                pt(npd_line),
                                pt(nls_line)
                            )
                        }
                        obs::AdmitReason::OnIncludedPredicate { predicate_line } => {
                            format!("control dependent on in-slice predicate line {predicate_line}")
                        }
                        obs::AdmitReason::DoWhileHazard => {
                            "do-while hazard on the lexical-successor path".to_owned()
                        }
                    };
                    println!("  round {round}: admit jump at line {l} ({why})");
                }
                obs::Event::Round {
                    round, admitted, ..
                } => {
                    println!("  round {round}: {admitted} jump(s) admitted");
                }
                _ => {}
            }
        }
    }
    if !slice.moved_labels.is_empty() {
        println!();
        println!("== re-associated labels ==");
        for (l, dest) in &slice.moved_labels {
            let to = match dest {
                Some(s) => format!("line {}", p.line_of(*s)),
                None => "program exit".to_owned(),
            };
            println!("  {}: moved to {to}", p.label_str(*l));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("explain: {e}");
            ExitCode::FAILURE
        }
    }
}
