//! A small self-contained benchmark harness (criterion-style calibration,
//! no external dependencies): each benchmark is auto-calibrated to a target
//! sample duration, timed over several samples, and reported by its median
//! per-iteration time. Results are kept so binaries like `bench_json` can
//! post-process them (speedup ratios, JSON emission).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Group-qualified benchmark name, e.g. `scaling/structured/fig7/400`.
    pub name: String,
    /// Median per-iteration time over the samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time observed (lower bound on cost).
    pub min_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// Collects benchmarks, printing each as it completes.
pub struct Runner {
    filter: Option<String>,
    samples_per_bench: u32,
    target_sample: Duration,
    results: Vec<Sample>,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::from_args()
    }
}

impl Runner {
    /// A runner configured from the command line: the first non-flag
    /// argument is a substring filter (cargo's `--bench`-style flags are
    /// ignored, so `cargo bench -p jumpslice-bench scaling` works).
    pub fn from_args() -> Runner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner {
            filter,
            samples_per_bench: 7,
            target_sample: Duration::from_millis(25),
            results: Vec::new(),
        }
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn samples(mut self, n: u32) -> Runner {
        self.samples_per_bench = n.max(1);
        self
    }

    /// Runs one benchmark: calibrates an iteration count so a sample takes
    /// roughly the target duration, then times `samples_per_bench` samples
    /// and records the median. Returns the median ns/iter (0.0 when the
    /// benchmark is filtered out).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        if let Some(filt) = &self.filter {
            if !name.contains(filt.as_str()) {
                return 0.0;
            }
        }
        // Calibration: one untimed warmup, then grow the iteration count
        // until a sample is long enough to time reliably.
        black_box(f());
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        iters = ((self.target_sample.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64)
            .clamp(1, 1 << 24);

        let mut timings: Vec<f64> = (0..self.samples_per_bench)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        timings.sort_by(|a, b| a.total_cmp(b));
        let median = timings[timings.len() / 2];
        let min = timings[0];
        println!("{name:<60} {:>14} /iter (x{iters})", fmt_ns(median));
        self.results.push(Sample {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            iters,
        });
        median
    }

    /// All samples measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Prints a footer and hands back the samples.
    pub fn finish(self) -> Vec<Sample> {
        println!("\n{} benchmarks measured", self.results.len());
        self.results
    }
}

/// Human formatting for a nanosecond count.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut r = Runner {
            filter: None,
            samples_per_bench: 3,
            target_sample: Duration::from_micros(200),
            results: Vec::new(),
        };
        let ns = r.bench("noop-ish", || std::hint::black_box(1 + 1));
        assert!(ns > 0.0);
        let results = r.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "noop-ish");
        assert!(results[0].min_ns <= results[0].median_ns);
    }

    #[test]
    fn filter_skips() {
        let mut r = Runner {
            filter: Some("wanted".into()),
            samples_per_bench: 1,
            target_sample: Duration::from_micros(100),
            results: Vec::new(),
        };
        assert_eq!(r.bench("other", || 0), 0.0);
        assert!(r.bench("wanted/yes", || 0) > 0.0);
        assert_eq!(r.results().len(), 1);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with(" s"));
    }
}
