//! The CI perf-regression gate: compares a freshly measured
//! `BENCH_slicing.json` against the committed baseline and fails on
//! wall-clock regressions beyond a tolerance band.
//!
//! The `batch_sweeps`, `incr_sweeps`, `sparse_sweeps`, `serve_sweeps`,
//! `store_sweeps`, `cold_analysis_sweeps`, and `closure_sweeps` sections
//! are compared —
//! single-slice latencies at figure scale are nanosecond-noisy, while the
//! sweeps integrate enough work (a full criterion pool per measurement) to
//! be stable across runs on the same machine. Rows are matched by
//! `(family, stmts)` plus the edit shape for incremental rows; a row
//! present in the baseline but missing from the current run is reported
//! rather than silently skipped. A baseline predating the `incr_sweeps`
//! schema simply skips that section.

use jumpslice_obs::Json;

/// Metrics compared per batch-sweep row. `sequential_per_criterion_analysis`
/// is deliberately absent: it measures the *naive* strategy the batch engine
/// exists to beat, so regressing it is not a product regression.
const GATED_METRICS: &[&str] = &[
    "batch_shared_analysis_sequential_ns",
    "batch_shared_analysis_threads_ns",
];

/// Metrics compared per incremental-sweep row. `scratch_reanalysis_ns` is
/// the naive strategy the edit session exists to beat, so it is not gated.
const INCR_GATED_METRICS: &[&str] = &["incremental_ns"];

/// Metrics compared per sparse-sweep row. `dense_reference_ns` measures the
/// retired dense loop kept only as a differential oracle, so it is not gated.
const SPARSE_GATED_METRICS: &[&str] = &["sparse_kernel_ns"];

/// Metrics compared per serve-sweep row (in-process daemon throughput).
const SERVE_GATED_METRICS: &[&str] = &["serve_ns_per_request"];

/// Metrics compared per store-sweep row. `cold_start_ns` measures the
/// from-source build the snapshot store exists to beat, so it is not
/// gated — only the restore path is a product promise.
const STORE_GATED_METRICS: &[&str] = &["snapshot_restore_ns"];

/// Metrics compared per cold-analysis-sweep row. Both warm strategies are
/// product paths: the sequential chain serves lazy single-slice callers,
/// the parallel warm serves the daemon's cold misses and the batch engine.
const COLD_GATED_METRICS: &[&str] = &["cold_warm_sequential_ns", "cold_warm_parallel_ns"];

/// Metrics compared per closure-microsweep row. `direct_closure_ns`
/// measures the walk the condensation exists to beat (and the fallback
/// kept for index-free analyses), so only the condensed path is gated.
const CLOSURE_GATED_METRICS: &[&str] = &["condensed_closure_ns"];

/// Row keys naming the worker-thread count a sweep actually ran with, plus
/// the machine parallelism the run recorded (`available_parallelism`).
/// Wall-clocks measured with different counts answer different questions
/// (e.g. a 1-thread baseline machine vs a 4-thread current one), so rows
/// whose counts differ are incomparable and skipped with a logged reason
/// instead of being allowed to pass or fail the gate spuriously.
const THREADS_USED_KEYS: &[&str] = &[
    "batch_threads_used",
    "threads_used",
    "serve_workers_used",
    "warm_threads_used",
    "available_parallelism",
];

/// One comparable section of `BENCH_slicing.json`.
struct Section {
    name: &'static str,
    metrics: &'static [&'static str],
    /// Required sections fail the gate when absent; optional ones are
    /// skipped (older baseline schema).
    required: bool,
}

const SECTIONS: &[Section] = &[
    Section {
        name: "batch_sweeps",
        metrics: GATED_METRICS,
        required: true,
    },
    Section {
        name: "incr_sweeps",
        metrics: INCR_GATED_METRICS,
        required: false,
    },
    Section {
        name: "sparse_sweeps",
        metrics: SPARSE_GATED_METRICS,
        required: false,
    },
    Section {
        name: "serve_sweeps",
        metrics: SERVE_GATED_METRICS,
        required: false,
    },
    Section {
        name: "store_sweeps",
        metrics: STORE_GATED_METRICS,
        required: false,
    },
    Section {
        name: "cold_analysis_sweeps",
        metrics: COLD_GATED_METRICS,
        required: false,
    },
    Section {
        name: "closure_sweeps",
        metrics: CLOSURE_GATED_METRICS,
        required: false,
    },
];

/// One gated metric that regressed beyond the tolerance band.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Corpus family of the offending row (`structured`/`unstructured`).
    pub family: String,
    /// Program size of the offending row.
    pub stmts: u64,
    /// The regressed metric name.
    pub metric: &'static str,
    /// Baseline nanoseconds.
    pub baseline_ns: f64,
    /// Currently measured nanoseconds.
    pub current_ns: f64,
}

impl Regression {
    /// `current / baseline` slowdown factor.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// Outcome of one gate run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// Metric comparisons performed.
    pub compared: usize,
    /// Comparisons beyond the tolerance band, worst first.
    pub regressions: Vec<Regression>,
    /// Baseline rows with no matching `(family, stmts)` row in the current
    /// measurement.
    pub missing: Vec<String>,
    /// Rows skipped as incomparable (e.g. the two measurements ran with
    /// different worker-thread counts), with the reason — surfaced in the
    /// gate's output, not silently dropped.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regressions *and* full row coverage).
    pub fn passes(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

fn sweep_rows<'a>(doc: &'a Json, section: &Section) -> Result<Option<Vec<&'a Json>>, String> {
    match doc.get(section.name).map(|v| v.as_arr()) {
        Some(Some(rows)) => Ok(Some(rows.iter().collect())),
        Some(None) => Err(format!("`{}` is not an array", section.name)),
        None if section.required => Err(format!("document has no `{}` array", section.name)),
        None => Ok(None),
    }
}

/// A row's identity: `family`, `stmts`, and — for incremental rows — the
/// edit shape, folded into the family string.
fn row_key(row: &Json) -> Result<(String, u64), String> {
    let family = row
        .get("family")
        .and_then(Json::as_str)
        .ok_or("sweep row missing `family`")?;
    let stmts = row
        .get("stmts")
        .and_then(Json::as_num)
        .ok_or("sweep row missing `stmts`")?;
    let family = match row.get("edit").and_then(Json::as_str) {
        Some(edit) => format!("{family}/{edit}"),
        None => family.to_owned(),
    };
    Ok((family, stmts as u64))
}

/// Compares `current` against `baseline`: every gated metric of every
/// baseline sweep row (batch and incremental) must satisfy
/// `current ≤ baseline × (1 + tolerance)`.
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateReport, String> {
    let mut report = GateReport::default();
    for section in SECTIONS {
        let Some(base_rows) = sweep_rows(baseline, section)? else {
            continue; // baseline predates this section
        };
        let cur_rows = sweep_rows(current, section)?.unwrap_or_default();
        for base in base_rows {
            let key = row_key(base)?;
            let Some(cur) = cur_rows
                .iter()
                .find(|r| row_key(r).as_ref() == Ok(&key))
                .copied()
            else {
                report.missing.push(format!("{}-{}", key.0, key.1));
                continue;
            };
            if let Some((tk, b, c)) = THREADS_USED_KEYS.iter().find_map(|&tk| {
                let b = base.get(tk).and_then(Json::as_num)?;
                let c = cur.get(tk).and_then(Json::as_num)?;
                (b != c).then_some((tk, b, c))
            }) {
                report.skipped.push(format!(
                    "{}-{}: {tk} differs (baseline {}, current {}) — wall-clocks not comparable",
                    key.0, key.1, b as u64, c as u64
                ));
                continue;
            }
            for &metric in section.metrics {
                let (Some(b), Some(c)) = (
                    base.get(metric).and_then(Json::as_num),
                    cur.get(metric).and_then(Json::as_num),
                ) else {
                    // A metric absent on either side (e.g. an older baseline
                    // schema) is not comparable; skip rather than fail
                    // spuriously.
                    continue;
                };
                report.compared += 1;
                if b > 0.0 && c > b * (1.0 + tolerance) {
                    report.regressions.push(Regression {
                        family: key.0.clone(),
                        stmts: key.1,
                        metric,
                        baseline_ns: b,
                        current_ns: c,
                    });
                }
            }
        }
    }
    report
        .regressions
        .sort_by(|x, y| y.ratio().total_cmp(&x.ratio()));
    Ok(report)
}

/// Multiplies every gated metric in `doc` by `factor` in place — the
/// self-test hook `perf_gate --inject-slowdown` uses to prove the gate
/// actually trips.
pub fn inject_slowdown(doc: &mut Json, factor: f64) {
    let Json::Obj(fields) = doc else { return };
    for section in SECTIONS {
        let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == section.name) else {
            continue;
        };
        for row in rows {
            let Json::Obj(cells) = row else { continue };
            for (k, v) in cells {
                if section.metrics.contains(&k.as_str()) {
                    if let Json::Num(n) = v {
                        *n *= factor;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(seq: f64, thr: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_shared_analysis_sequential_ns": {seq},
                  "batch_shared_analysis_threads_ns": {thr}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_measurements_pass() {
        let base = doc(1e6, 5e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn within_tolerance_passes() {
        let report = compare(&doc(1e6, 5e5), &doc(1.2e6, 6e5), 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
    }

    #[test]
    fn two_x_slowdown_fails() {
        let report = compare(&doc(1e6, 5e5), &doc(2e6, 1e6), 0.25).unwrap();
        assert_eq!(report.regressions.len(), 2);
        assert!(!report.passes());
        assert!((report.regressions[0].ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        let base = doc(1e6, 5e5);
        let mut cur = base.clone();
        inject_slowdown(&mut cur, 2.0);
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(!report.passes(), "2x injection must trip the gate");
        // And the untouched metrics still match the baseline document.
        assert!(compare(&base, &base, 0.25).unwrap().passes());
    }

    #[test]
    fn missing_row_is_reported() {
        let base = doc(1e6, 5e5);
        let empty = Json::parse(r#"{"batch_sweeps": []}"#).unwrap();
        let report = compare(&base, &empty, 0.25).unwrap();
        assert_eq!(report.missing, vec!["structured-954".to_owned()]);
        assert!(!report.passes());
    }

    #[test]
    fn speedups_never_fail() {
        let report = compare(&doc(1e6, 5e5), &doc(1e5, 5e4), 0.25).unwrap();
        assert!(report.passes());
    }

    fn doc_with_incr(incr: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_shared_analysis_sequential_ns": 1e6,
                  "batch_shared_analysis_threads_ns": 5e5}}
            ],
            "incr_sweeps": [
                {{"family": "structured", "stmts": 954, "edit": "replace-expr",
                  "scratch_reanalysis_ns": 1e6,
                  "incremental_ns": {incr}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn incr_rows_are_gated() {
        let base = doc_with_incr(1e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 3, "two batch metrics + one incr metric");

        let slow = compare(&base, &doc_with_incr(3e5), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "incremental_ns");
        assert_eq!(slow.regressions[0].family, "structured/replace-expr");
    }

    #[test]
    fn baseline_without_incr_section_skips_it() {
        // An old baseline gates only the batch section, even when the
        // current measurement carries incr rows.
        let report = compare(&doc(1e6, 5e5), &doc_with_incr(1e5), 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn missing_incr_row_is_reported() {
        let report = compare(&doc_with_incr(1e5), &doc(1e6, 5e5), 0.25).unwrap();
        assert!(!report.passes());
        assert_eq!(
            report.missing,
            vec!["structured/replace-expr-954".to_owned()]
        );
    }

    fn doc_with_sparse(sparse: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_shared_analysis_sequential_ns": 1e6}}
            ],
            "sparse_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "dense_reference_ns": 1e6,
                  "sparse_kernel_ns": {sparse}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn sparse_rows_are_gated_and_dense_reference_is_not() {
        let base = doc_with_sparse(1e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2, "one batch metric + one sparse metric");

        let slow = compare(&base, &doc_with_sparse(3e5), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "sparse_kernel_ns");
        assert_eq!(slow.regressions[0].family, "structured");
    }

    #[test]
    fn baseline_without_sparse_section_skips_it() {
        let report = compare(&doc(1e6, 5e5), &doc_with_sparse(1e5), 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        // The sequential batch metric compares; the threads metric is absent
        // from the sparse doc's batch row and the sparse section has no
        // baseline counterpart, so neither contributes.
        assert_eq!(report.compared, 1);
    }

    /// A batch row as a single-core `bench_json` run writes it: no
    /// `batch_shared_analysis_threads_ns` key at all.
    fn doc_single_core(seq: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_threads_used": 1,
                  "batch_shared_analysis_sequential_ns": {seq}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn absent_threads_metric_is_tolerated_on_either_side() {
        // A single-core run omits `batch_shared_analysis_threads_ns`; the
        // gate compares the remaining metrics instead of failing.
        let multicore = doc(1e6, 5e5);
        let singlecore = doc_single_core(1e6);
        let report = compare(&multicore, &singlecore, 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 1, "only the sequential metric matches up");
        let report = compare(&singlecore, &multicore, 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 1);
    }

    /// A batch row stamped with the thread count it actually used.
    fn doc_threads_used(threads: u64, seq: f64, thr: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_threads_used": {threads},
                  "batch_shared_analysis_sequential_ns": {seq},
                  "batch_shared_analysis_threads_ns": {thr}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn mismatched_threads_used_skips_the_row_with_a_reason() {
        // Baseline from a 4-thread machine, current from a 1-thread one: a
        // 3x "slowdown" in the threaded metric is expected, not a
        // regression — and a 3x speedup must not mask one either.
        let base = doc_threads_used(4, 1e6, 3e5);
        let cur = doc_threads_used(1, 1e6, 9e5);
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 0, "nothing compared across the mismatch");
        assert_eq!(report.skipped.len(), 1);
        assert!(
            report.skipped[0].contains("batch_threads_used differs"),
            "{:?}",
            report.skipped
        );
    }

    #[test]
    fn matching_threads_used_still_compares() {
        let base = doc_threads_used(2, 1e6, 5e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2);
        assert!(report.skipped.is_empty());
        let slow = compare(&base, &doc_threads_used(2, 3e6, 5e5), 0.25).unwrap();
        assert!(!slow.passes(), "same thread count still gates");
    }

    #[test]
    fn serve_rows_are_gated() {
        let doc_serve = |ns: f64| {
            Json::parse(&format!(
                r#"{{"batch_sweeps": [],
                "serve_sweeps": [
                    {{"family": "mixed", "stmts": 120, "serve_ns_per_request": {ns}}}
                ]}}"#
            ))
            .unwrap()
        };
        let base = doc_serve(1e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 1);
        let slow = compare(&base, &doc_serve(5e5), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "serve_ns_per_request");
    }

    fn doc_with_store(restore: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_shared_analysis_sequential_ns": 1e6}}
            ],
            "store_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "cold_start_ns": 1e6,
                  "snapshot_restore_ns": {restore}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn store_restore_is_gated_and_cold_start_is_not() {
        let base = doc_with_store(1e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2, "one batch metric + one store metric");

        // A slower cold start alone never trips the gate...
        let mut slow_cold = base.clone();
        if let Json::Obj(fields) = &mut slow_cold {
            let rows = fields
                .iter_mut()
                .find(|(k, _)| k == "store_sweeps")
                .and_then(|(_, v)| match v {
                    Json::Arr(rows) => Some(rows),
                    _ => None,
                })
                .unwrap();
            if let Json::Obj(cells) = &mut rows[0] {
                for (k, v) in cells {
                    if k == "cold_start_ns" {
                        *v = Json::Num(9e6);
                    }
                }
            }
        }
        assert!(compare(&base, &slow_cold, 0.25).unwrap().passes());

        // ...but a slower restore does.
        let slow = compare(&base, &doc_with_store(3e5), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "snapshot_restore_ns");
    }

    #[test]
    fn baseline_without_store_section_skips_it() {
        let report = compare(&doc(1e6, 5e5), &doc_with_store(1e5), 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 1);
    }

    fn doc_with_cold(seq: f64, par: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [],
            "cold_analysis_sweeps": [
                {{"family": "unstructured", "stmts": 4821,
                  "warm_threads_used": 2, "available_parallelism": 2,
                  "cold_warm_sequential_ns": {seq},
                  "cold_warm_parallel_ns": {par}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn cold_analysis_rows_are_gated() {
        let base = doc_with_cold(1e7, 4e6);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2, "both warm strategies gate");

        let slow = compare(&base, &doc_with_cold(1e7, 9e6), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "cold_warm_parallel_ns");
    }

    #[test]
    fn mismatched_available_parallelism_skips_the_row_with_a_reason() {
        // Baseline from a 2-core machine, current from a single-core one:
        // even with identical recorded worker counts, the wall-clocks come
        // from different machines and must not gate against each other.
        let base = doc_with_cold(1e7, 4e6);
        let cur = Json::parse(
            r#"{"batch_sweeps": [],
            "cold_analysis_sweeps": [
                {"family": "unstructured", "stmts": 4821,
                  "warm_threads_used": 2, "available_parallelism": 1,
                  "cold_warm_sequential_ns": 1e7,
                  "cold_warm_parallel_ns": 1.2e7}
            ]}"#,
        )
        .unwrap();
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
        assert_eq!(report.compared, 0, "nothing compared across the mismatch");
        assert_eq!(report.skipped.len(), 1);
        assert!(
            report.skipped[0].contains("available_parallelism differs"),
            "{:?}",
            report.skipped
        );
    }

    fn doc_with_closure(condensed: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [],
            "closure_sweeps": [
                {{"family": "structured", "stmts": 4821, "criteria": 120,
                  "available_parallelism": 1,
                  "direct_closure_ns": 1e6,
                  "condensed_closure_ns": {condensed}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn closure_rows_gate_the_condensed_path_only() {
        let base = doc_with_closure(2e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 1, "only the condensed metric gates");

        // A slower direct walk never trips the gate...
        let mut slow_direct = base.clone();
        inject_slowdown(&mut slow_direct, 1.0); // no-op; direct is ungated anyway
        assert!(compare(&base, &slow_direct, 0.25).unwrap().passes());

        // ...but a slower condensed lookup does.
        let slow = compare(&base, &doc_with_closure(6e5), 0.25).unwrap();
        assert_eq!(slow.regressions.len(), 1);
        assert_eq!(slow.regressions[0].metric, "condensed_closure_ns");
    }

    #[test]
    fn injected_slowdown_trips_cold_and_closure_metrics_too() {
        for base in [doc_with_cold(1e7, 4e6), doc_with_closure(2e5)] {
            let mut cur = base.clone();
            inject_slowdown(&mut cur, 2.0);
            let report = compare(&base, &cur, 0.25).unwrap();
            assert!(!report.passes(), "2x injection must trip the gate");
        }
    }

    #[test]
    fn injected_slowdown_trips_sparse_metrics_too() {
        let base = doc_with_sparse(1e5);
        let mut cur = base.clone();
        inject_slowdown(&mut cur, 2.0);
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(report
            .regressions
            .iter()
            .any(|r| r.metric == "sparse_kernel_ns"));
    }

    #[test]
    fn injected_slowdown_trips_incr_metrics_too() {
        let base = doc_with_incr(1e5);
        let mut cur = base.clone();
        inject_slowdown(&mut cur, 2.0);
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(report
            .regressions
            .iter()
            .any(|r| r.metric == "incremental_ns"));
    }
}
