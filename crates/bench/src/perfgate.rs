//! The CI perf-regression gate: compares a freshly measured
//! `BENCH_slicing.json` against the committed baseline and fails on
//! wall-clock regressions beyond a tolerance band.
//!
//! Only the `batch_sweeps` section is compared — single-slice latencies at
//! figure scale are nanosecond-noisy, while the batch sweeps integrate
//! enough work (120 criteria per program) to be stable across runs on the
//! same machine. Rows are matched by `(family, stmts)`; a row present in
//! the baseline but missing from the current run is reported rather than
//! silently skipped.

use jumpslice_obs::Json;

/// Metrics compared per batch-sweep row. `sequential_per_criterion_analysis`
/// is deliberately absent: it measures the *naive* strategy the batch engine
/// exists to beat, so regressing it is not a product regression.
const GATED_METRICS: &[&str] = &[
    "batch_shared_analysis_sequential_ns",
    "batch_shared_analysis_threads_ns",
];

/// One gated metric that regressed beyond the tolerance band.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Corpus family of the offending row (`structured`/`unstructured`).
    pub family: String,
    /// Program size of the offending row.
    pub stmts: u64,
    /// The regressed metric name.
    pub metric: &'static str,
    /// Baseline nanoseconds.
    pub baseline_ns: f64,
    /// Currently measured nanoseconds.
    pub current_ns: f64,
}

impl Regression {
    /// `current / baseline` slowdown factor.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// Outcome of one gate run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// Metric comparisons performed.
    pub compared: usize,
    /// Comparisons beyond the tolerance band, worst first.
    pub regressions: Vec<Regression>,
    /// Baseline rows with no matching `(family, stmts)` row in the current
    /// measurement.
    pub missing: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regressions *and* full row coverage).
    pub fn passes(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

fn sweep_rows(doc: &Json) -> Result<Vec<&Json>, String> {
    doc.get("batch_sweeps")
        .and_then(Json::as_arr)
        .map(|rows| rows.iter().collect())
        .ok_or_else(|| "document has no `batch_sweeps` array".to_owned())
}

fn row_key(row: &Json) -> Result<(String, u64), String> {
    let family = row
        .get("family")
        .and_then(Json::as_str)
        .ok_or("sweep row missing `family`")?;
    let stmts = row
        .get("stmts")
        .and_then(Json::as_num)
        .ok_or("sweep row missing `stmts`")?;
    Ok((family.to_owned(), stmts as u64))
}

/// Compares `current` against `baseline`: every gated metric of every
/// baseline batch-sweep row must satisfy
/// `current ≤ baseline × (1 + tolerance)`.
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> Result<GateReport, String> {
    let base_rows = sweep_rows(baseline)?;
    let cur_rows = sweep_rows(current)?;
    let mut report = GateReport::default();
    for base in base_rows {
        let key = row_key(base)?;
        let Some(cur) = cur_rows
            .iter()
            .find(|r| row_key(r).as_ref() == Ok(&key))
            .copied()
        else {
            report.missing.push(format!("{}-{}", key.0, key.1));
            continue;
        };
        for &metric in GATED_METRICS {
            let (Some(b), Some(c)) = (
                base.get(metric).and_then(Json::as_num),
                cur.get(metric).and_then(Json::as_num),
            ) else {
                // A metric absent on either side (e.g. an older baseline
                // schema) is not comparable; skip rather than fail spuriously.
                continue;
            };
            report.compared += 1;
            if b > 0.0 && c > b * (1.0 + tolerance) {
                report.regressions.push(Regression {
                    family: key.0.clone(),
                    stmts: key.1,
                    metric,
                    baseline_ns: b,
                    current_ns: c,
                });
            }
        }
    }
    report
        .regressions
        .sort_by(|x, y| y.ratio().total_cmp(&x.ratio()));
    Ok(report)
}

/// Multiplies every gated metric in `doc` by `factor` in place — the
/// self-test hook `perf_gate --inject-slowdown` uses to prove the gate
/// actually trips.
pub fn inject_slowdown(doc: &mut Json, factor: f64) {
    let Json::Obj(fields) = doc else { return };
    let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == "batch_sweeps") else {
        return;
    };
    for row in rows {
        let Json::Obj(cells) = row else { continue };
        for (k, v) in cells {
            if GATED_METRICS.contains(&k.as_str()) {
                if let Json::Num(n) = v {
                    *n *= factor;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(seq: f64, thr: f64) -> Json {
        Json::parse(&format!(
            r#"{{"batch_sweeps": [
                {{"family": "structured", "stmts": 954,
                  "batch_shared_analysis_sequential_ns": {seq},
                  "batch_shared_analysis_threads_ns": {thr}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_measurements_pass() {
        let base = doc(1e6, 5e5);
        let report = compare(&base, &base, 0.25).unwrap();
        assert!(report.passes());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn within_tolerance_passes() {
        let report = compare(&doc(1e6, 5e5), &doc(1.2e6, 6e5), 0.25).unwrap();
        assert!(report.passes(), "{report:?}");
    }

    #[test]
    fn two_x_slowdown_fails() {
        let report = compare(&doc(1e6, 5e5), &doc(2e6, 1e6), 0.25).unwrap();
        assert_eq!(report.regressions.len(), 2);
        assert!(!report.passes());
        assert!((report.regressions[0].ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        let base = doc(1e6, 5e5);
        let mut cur = base.clone();
        inject_slowdown(&mut cur, 2.0);
        let report = compare(&base, &cur, 0.25).unwrap();
        assert!(!report.passes(), "2x injection must trip the gate");
        // And the untouched metrics still match the baseline document.
        assert!(compare(&base, &base, 0.25).unwrap().passes());
    }

    #[test]
    fn missing_row_is_reported() {
        let base = doc(1e6, 5e5);
        let empty = Json::parse(r#"{"batch_sweeps": []}"#).unwrap();
        let report = compare(&base, &empty, 0.25).unwrap();
        assert_eq!(report.missing, vec!["structured-954".to_owned()]);
        assert!(!report.passes());
    }

    #[test]
    fn speedups_never_fail() {
        let report = compare(&doc(1e6, 5e5), &doc(1e5, 5e4), 0.25).unwrap();
        assert!(report.passes());
    }
}
