//! Reaching definitions and the data-dependence edges derived from them.

use crate::BitSet;
use jumpslice_cfg::Cfg;
use jumpslice_graph::NodeId;
use jumpslice_lang::{Name, Program, StmtId};
use std::collections::HashMap;

/// Dense numbering of the variables a program defines or uses.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    vars: Vec<Name>,
    index: HashMap<Name, usize>,
}

impl VarTable {
    /// Collects every variable defined or used anywhere in `prog`.
    pub fn of(prog: &Program) -> VarTable {
        let mut t = VarTable::default();
        for s in prog.stmt_ids() {
            if let Some(d) = prog.defs(s) {
                t.add(d);
            }
            for u in prog.uses(s) {
                t.add(u);
            }
        }
        t
    }

    fn add(&mut self, n: Name) {
        if !self.index.contains_key(&n) {
            self.index.insert(n, self.vars.len());
            self.vars.push(n);
        }
    }

    /// Number of distinct variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the program mentions no variables at all.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Dense index of a variable.
    pub fn index_of(&self, n: Name) -> Option<usize> {
        self.index.get(&n).copied()
    }

    /// Variable at a dense index.
    pub fn var(&self, i: usize) -> Name {
        self.vars[i]
    }
}

/// The classic forward may-analysis: which definition sites reach each node.
///
/// Definition sites are the statements with a def (`x = e;`, `read(x);`),
/// numbered densely.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// Definition sites, in discovery order.
    def_sites: Vec<StmtId>,
    /// IN set per CFG node, over def-site indices.
    in_sets: Vec<BitSet>,
    vars: VarTable,
}

impl ReachingDefs {
    /// Runs the fixpoint on `prog`'s flowgraph.
    pub fn compute(prog: &Program, cfg: &Cfg) -> ReachingDefs {
        let vars = VarTable::of(prog);
        let mut def_sites = Vec::new();
        let mut site_of_stmt: Vec<Option<usize>> = vec![None; prog.len()];
        let mut sites_of_var: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
        for s in prog.stmt_ids() {
            if let Some(v) = prog.defs(s) {
                let idx = def_sites.len();
                def_sites.push(s);
                site_of_stmt[s.index()] = Some(idx);
                sites_of_var[vars.index_of(v).expect("collected")].push(idx);
            }
        }

        let n = cfg.graph().len();
        let nsites = def_sites.len();
        let mut in_sets = vec![BitSet::new(nsites); n];
        let mut out_sets = vec![BitSet::new(nsites); n];

        // gen/kill per node.
        let mut gen = vec![BitSet::new(nsites); n];
        let mut kill = vec![BitSet::new(nsites); n];
        for s in prog.stmt_ids() {
            if let Some(idx) = site_of_stmt[s.index()] {
                let node = cfg.node(s);
                gen[node.index()].insert(idx);
                let v = prog.defs(s).expect("site has def");
                for &other in &sites_of_var[vars.index_of(v).expect("collected")] {
                    if other != idx {
                        kill[node.index()].insert(other);
                    }
                }
            }
        }

        // Worklist in reverse postorder from entry for fast convergence.
        let order = jumpslice_graph::reverse_postorder(cfg.graph(), cfg.entry());
        let mut changed = true;
        let mut passes = 0u64;
        while changed {
            changed = false;
            passes += 1;
            for &node in &order {
                let i = node.index();
                let mut new_in = BitSet::new(nsites);
                for &p in cfg.graph().preds(node) {
                    new_in.union_with(&out_sets[p.index()]);
                }
                let mut new_out = new_in.clone();
                new_out.subtract(&kill[i]);
                new_out.union_with(&gen[i]);
                if new_in != in_sets[i] || new_out != out_sets[i] {
                    in_sets[i] = new_in;
                    out_sets[i] = new_out;
                    changed = true;
                }
            }
        }

        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "reaching.fixpoint_passes",
            value: passes,
        });
        ReachingDefs {
            def_sites,
            in_sets,
            vars,
        }
    }

    /// The variable table used by this analysis.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// The definition statements reaching the *entry* of `node`.
    pub fn reaching_in(&self, node: NodeId) -> impl Iterator<Item = StmtId> + '_ {
        self.in_sets[node.index()].iter().map(|i| self.def_sites[i])
    }
}

/// Data-dependence edges: `u` depends on `d` when a definition at `d`
/// reaches a use of the same variable at `u`.
#[derive(Clone, Debug)]
pub struct DataDeps {
    /// For each statement, the definition statements it depends on (sorted).
    deps: Vec<Vec<StmtId>>,
    /// Reverse direction: statements depending on each statement (sorted).
    dependents: Vec<Vec<StmtId>>,
}

impl DataDeps {
    /// Computes data dependence from reaching definitions over the
    /// (unaugmented) flowgraph — the paper is explicit that data dependence
    /// always comes from the standard flowgraph.
    pub fn compute(prog: &Program, cfg: &Cfg) -> DataDeps {
        let rd = ReachingDefs::compute(prog, cfg);
        Self::from_reaching(prog, cfg, &rd)
    }

    /// Derives the edges from a precomputed [`ReachingDefs`].
    pub fn from_reaching(prog: &Program, cfg: &Cfg, rd: &ReachingDefs) -> DataDeps {
        let n = prog.len();
        let mut deps = vec![Vec::new(); n];
        let mut dependents = vec![Vec::new(); n];
        for u in prog.stmt_ids() {
            let used = prog.uses(u);
            if used.is_empty() {
                continue;
            }
            let node = cfg.node(u);
            for d in rd.reaching_in(node) {
                let v = prog.defs(d).expect("def site");
                if used.contains(&v) {
                    deps[u.index()].push(d);
                    dependents[d.index()].push(u);
                }
            }
        }
        for v in deps.iter_mut().chain(dependents.iter_mut()) {
            v.sort();
            v.dedup();
        }
        DataDeps { deps, dependents }
    }

    /// The definitions statement `s` depends on.
    pub fn deps(&self, s: StmtId) -> &[StmtId] {
        &self.deps[s.index()]
    }

    /// The statements that depend on `s`.
    pub fn dependents(&self, s: StmtId) -> &[StmtId] {
        &self.dependents[s.index()]
    }

    /// All edges as `(def, use)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (StmtId, StmtId)> + '_ {
        self.deps
            .iter()
            .enumerate()
            .flat_map(|(u, ds)| ds.iter().map(move |&d| (d, StmtId::from_index(u))))
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    fn deps_of(src: &str, line: usize) -> Vec<usize> {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let dd = DataDeps::compute(&p, &cfg);
        dd.deps(p.at_line(line))
            .iter()
            .map(|&s| p.line_of(s))
            .collect()
    }

    #[test]
    fn straight_line_chain() {
        assert_eq!(deps_of("x = 1; y = x; write(y);", 3), vec![2]);
        assert_eq!(deps_of("x = 1; y = x; write(y);", 2), vec![1]);
    }

    #[test]
    fn redefinition_kills() {
        // write(x) sees only the second definition.
        assert_eq!(deps_of("x = 1; x = 2; write(x);", 3), vec![2]);
    }

    #[test]
    fn both_branches_reach() {
        let src = "read(c); if (c) { x = 1; } else { x = 2; } write(x);";
        assert_eq!(deps_of(src, 5), vec![3, 4]);
    }

    #[test]
    fn loop_carried_dependence() {
        let src = "x = 0; while (x < 3) { x = x + 1; } write(x);";
        // The loop body's use of x sees the initial def and itself.
        assert_eq!(deps_of(src, 3), vec![1, 3]);
        assert_eq!(deps_of(src, 4), vec![1, 3]);
    }

    #[test]
    fn read_redefines() {
        let src = "x = 1; read(x); write(x);";
        assert_eq!(deps_of(src, 3), vec![2]);
    }

    #[test]
    fn predicate_uses_count() {
        let src = "read(x); if (x > 0) { y = 1; } write(y);";
        assert_eq!(deps_of(src, 2), vec![1]);
    }

    #[test]
    fn paper_figure_2b_data_dependence() {
        // Figure 1-a / 2-b: write(positives) on line 12 is data dependent on
        // lines 2 and 7.
        let src = "sum = 0;
                   positives = 0;
                   while (!eof()) {
                     read(x);
                     if (x <= 0)
                       sum = sum + f1(x);
                     else {
                       positives = positives + 1;
                       if (x % 2 == 0)
                         sum = sum + f2(x);
                       else
                         sum = sum + f3(x);
                     }
                   }
                   write(sum);
                   write(positives);";
        assert_eq!(deps_of(src, 12), vec![2, 7]);
        // And positives = positives + 1 (line 7) sees lines 2 and 7.
        assert_eq!(deps_of(src, 7), vec![2, 7]);
        // write(sum) sees every sum definition.
        assert_eq!(deps_of(src, 11), vec![1, 6, 9, 10]);
    }

    #[test]
    fn goto_paths_carry_defs() {
        let src = "x = 1; goto L; x = 2; L: write(x);";
        // x = 2 is unreachable: only the first def reaches the write.
        assert_eq!(deps_of(src, 4), vec![1]);
    }

    #[test]
    fn dependents_is_inverse() {
        let p = parse("x = 1; y = x; z = x + y;").unwrap();
        let cfg = Cfg::build(&p);
        let dd = DataDeps::compute(&p, &cfg);
        let x = p.at_line(1);
        let dep_lines: Vec<usize> = dd.dependents(x).iter().map(|&s| p.line_of(s)).collect();
        assert_eq!(dep_lines, vec![2, 3]);
        for (d, u) in dd.edges() {
            assert!(dd.deps(u).contains(&d));
            assert!(dd.dependents(d).contains(&u));
        }
        assert_eq!(dd.num_edges(), 3);
    }

    #[test]
    fn var_table_counts() {
        let p = parse("x = 1; y = x + z;").unwrap();
        let vt = VarTable::of(&p);
        assert_eq!(vt.len(), 3); // x, y, z
        assert!(!vt.is_empty());
        let x = p.name("x").unwrap();
        assert_eq!(vt.var(vt.index_of(x).unwrap()), x);
    }

    #[test]
    fn switch_fallthrough_reaches() {
        let src = "read(c); switch (c) { case 1: x = 1; case 2: y = x; break; } write(y);";
        // y = x (line 4) must see x = 1 via fall-through.
        assert_eq!(deps_of(src, 4), vec![3]);
    }
}
